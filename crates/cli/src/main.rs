//! `circ` — the command-line race checker.
//!
//! ```text
//! circ check <file.nesl> [--mode circ|omega] [--k N] [--jobs N] [--print-acfa]
//!                        [--trace] [--stats] [--json] [--no-cache] [--row-json]
//!                        [--timeout-secs N | --timeout-millis N]
//!                        [--mem-limit-mb N | --mem-limit-bytes N] [--cache-dir DIR]
//! circ batch <dir|manifest.json|file.nesl> [--mode circ|omega] [--k N] [--jobs N]
//!                        [--json] [--no-cache] [--timeout-secs N]
//!                        [--mem-limit-mb N] [--cache-dir DIR]
//!                        [--journal FILE] [--resume] [--isolate] [--retries N]
//! circ serve --socket PATH | --port N [--jobs N] [--max-inflight N]
//!                        [--queue-depth N] [--timeout-secs N] [--mem-limit-mb N]
//!                        [--cache-dir DIR] [--no-cache] [--mode circ|omega] [--k N]
//!                        [--pred-store | --no-pred-store] [--triage | --no-triage]
//!                        [--retries N]
//! circ client --socket PATH | --port N [--stats] [--health] [paths...]
//! circ compile <file.nesl> [--dot]
//! circ baselines <file.nesl>
//! ```
//!
//! Exit codes: 0 = all checked variables race-free, 1 = a race was
//! found, 2 = inconclusive (the analysis gave up within its own
//! bounds), 3 = inconclusive because a resource budget ran out
//! (`--timeout-secs` / `--mem-limit-mb` / cancellation), 64 = usage
//! error, 65 = compile error. A race (1) dominates; among inconclusive
//! variables, budget exhaustion (3) dominates plain inconclusive (2).
//! For `batch`, a compile error in any file (65) dominates budget
//! exhaustion and inconclusive rows, and a race still dominates all.
//! `serve` exits 3 after a clean drain and 74 when it cannot bind its
//! socket or port; `client` exits with the worst `exit` field across
//! its check responses, 75 when the service shed a request
//! (overloaded or shutting down), and 74 when it cannot connect.
//!
//! `batch` runs under crash-safe supervision: `--journal FILE` records
//! every completed row, `--resume` replays journaled rows for
//! unchanged inputs, SIGINT/SIGTERM drain the run gracefully (the
//! partial report and cache files are still written; a second signal
//! force-kills), `--isolate` re-execs this binary per file so one
//! crashing input degrades to a single `internal-error` row, and
//! `--retries N` re-runs transient internal errors with deterministic
//! backoff. `--row-json` is the isolation protocol's child mode: check
//! one file with batch-style budget carving and print the report row
//! as one JSON line (exit code as above).

use circ_core::{
    circ, circ_with_caches, pred_store, AbsCache, AbsSeed, CircConfig, CircEvent, CircOutcome,
    PredStore, Property, SolverPersist,
};
use circ_ir::{dot, structural_digest, Cfa, MtProgram};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "compile" => cmd_compile(&args[1..]),
        "baselines" => cmd_baselines(&args[1..]),
        "--help" | "-h" | "help" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}

fn print_help() {
    println!(
        "circ — race checking by context inference (PLDI 2004 reproduction)\n\n\
         USAGE:\n  circ check <file.nesl> [--mode circ|omega] [--asserts] [--k N] [--jobs N] [--print-acfa]\n\
         \x20                        [--trace] [--stats] [--json] [--no-cache] [--row-json]\n\
         \x20                        [--timeout-secs N | --timeout-millis N]\n\
         \x20                        [--mem-limit-mb N | --mem-limit-bytes N] [--cache-dir DIR]\n\
         \x20                        [--pred-store | --no-pred-store] [--triage | --no-triage]\n\
         \x20 circ batch <dir|manifest.json|file.nesl> [--mode circ|omega] [--k N] [--jobs N]\n\
         \x20                        [--json] [--no-cache] [--timeout-secs N]\n\
         \x20                        [--mem-limit-mb N] [--cache-dir DIR]\n\
         \x20                        [--pred-store | --no-pred-store] [--triage | --no-triage]\n\
         \x20                        [--journal FILE] [--resume] [--isolate] [--retries N]\n\
         \x20 circ serve --socket PATH | --port N [--jobs N] [--max-inflight N] [--queue-depth N]\n\
         \x20                        [--timeout-secs N] [--mem-limit-mb N] [--cache-dir DIR]\n\
         \x20                        [--no-cache] [--mode circ|omega] [--k N] [--retries N]\n\
         \x20                        [--pred-store | --no-pred-store] [--triage | --no-triage]\n\
         \x20 circ client --socket PATH | --port N [--stats] [--health] [paths...]\n\
         \x20 circ compile <file.nesl> [--dot]\n\
         \x20 circ baselines <file.nesl>\n\n\
         The input file declares globals, `#race` variables, and one `thread`.\n\
         `check` proves the absence of data races for UNBOUNDEDLY many copies\n\
         of the thread, or returns a concrete racy schedule. `batch` checks a\n\
         whole corpus (a directory of .nesl files, a JSON manifest listing\n\
         paths, or one file) on a worker pool and prints one aggregate\n\
         report; its exit code is worst-wins across files.\n\n\
         `--stats` prints per-phase counters, cache hit rates, and wall-time\n\
         spans after each verdict; `--json` prints them as one JSON line\n\
         instead (implies `--stats`); `--no-cache` disables the entailment\n\
         and solver caches (same verdict, useful for timing differentials);\n\
         `--jobs N` runs on N worker threads (0 = all cores, default 1) —\n\
         pipeline phases for `check`, whole files for `batch` — with\n\
         bit-identical verdicts and statistics at any setting;\n\
         `--timeout-secs N` / `--mem-limit-mb N` bound the run's wall clock /\n\
         accounted memory (split evenly across files for `batch`) — on\n\
         exhaustion the verdict is INCONCLUSIVE with partial statistics and\n\
         exit code 3; `--cache-dir DIR` persists the entailment and solver\n\
         caches across runs: loaded on start (a damaged file degrades to a\n\
         logged cold start), written back on exit. `--k N` (N >= 1) sets the\n\
         initial thread-counter parameter.\n\n\
         Incremental re-checking: with `--cache-dir`, each check's discovered\n\
         predicate set and final k are persisted to a predicate store\n\
         (preds.store) keyed by a structural digest of the lowered automaton\n\
         plus a config fingerprint, and future checks of the same program are\n\
         seeded from it — skipping rediscovery while still running the full\n\
         algorithm (stale seeds degrade to ordinary refinement; verdicts are\n\
         never replayed). On by default with a cache dir; `--no-pred-store`\n\
         disables it, `--pred-store` asserts it (usage error without\n\
         `--cache-dir`). `--stats` reports `preds seeded` and\n\
         `refine rounds saved`.\n\n\
         Tiered triage: `--triage` runs two cheap stages before the engine.\n\
         Stage 0 (flow) certifies a race variable SAFE when the sound static\n\
         flow check draws zero findings for it; stage 1 (sched) certifies\n\
         RACE when a bounded, seeded random schedule reaches a race state —\n\
         the concrete trace is replay-validated before it is trusted.\n\
         Everything else falls through to full CIRC, so verdicts are\n\
         identical with or without `--triage`; only the number of engine\n\
         runs changes. Batch rows carry a `stage` attribution column\n\
         (flow/sched/circ) and the stats gain `triage_*` counters.\n\
         `--no-triage` forces every variable to stage 2 (the default).\n\n\
         Crash safety (batch): `--journal FILE` appends every completed row to\n\
         a JSONL journal keyed by a digest of the input bytes; `--resume`\n\
         replays journaled rows for unchanged inputs and re-checks the rest\n\
         (torn or stale journal lines degrade to re-checks). SIGINT/SIGTERM\n\
         shut down gracefully: in-flight files drain at their next budget\n\
         poll, the partial report and cache files are still written, and a\n\
         second signal force-kills. `--isolate` checks each file in a child\n\
         process (`circ check --row-json`) so a crash or OOM kill in one\n\
         input becomes a single internal-error row carrying the child's\n\
         stderr; `--retries N` re-runs transient internal errors up to N\n\
         extra times with deterministic, budget-bounded backoff, and files\n\
         that still fail are listed under `quarantine` in the report.\n\
         `--timeout-millis` / `--mem-limit-bytes` are fine-grained budget\n\
         variants (used by the isolation protocol to forward carved\n\
         per-file slices).\n\n\
         Service mode: `serve` keeps one process resident with warm caches\n\
         behind a line-delimited JSON protocol (one request object per line\n\
         in, one response per line out) on a unix socket or localhost TCP\n\
         port. Requests: {{\"op\":\"check\",\"source\":...|\"path\":...}},\n\
         {{\"op\":\"stats\"}}, {{\"op\":\"health\"}}. `--max-inflight` bounds\n\
         concurrent checks, `--queue-depth` bounds waiters, and anything\n\
         beyond both is shed with a structured `overloaded` response; the\n\
         `--timeout-secs` / `--mem-limit-mb` envelope is carved per admitted\n\
         request. SIGINT/SIGTERM drain gracefully (in-flight requests finish\n\
         or degrade to cancelled rows, queued ones get `shutting-down`,\n\
         caches flush, exit 3); SIGHUP flushes the caches without draining.\n\
         A stale socket file left by a crash is detected by a connect probe\n\
         and reclaimed; a live one is refused with exit 74. `client` submits\n\
         server-side paths (or `--stats` / `--health` probes) and exits\n\
         worst-wins across the responses."
    );
}

fn usage() -> ExitCode {
    print_help();
    ExitCode::from(64)
}

#[derive(Debug)]
struct Parsed {
    source_path: String,
    mode_omega: bool,
    asserts: bool,
    initial_k: u32,
    print_acfa: bool,
    trace: bool,
    dot: bool,
    stats: bool,
    stats_json: bool,
    no_cache: bool,
    jobs: usize,
    timeout_secs: Option<u64>,
    timeout_millis: Option<u64>,
    mem_limit_mb: Option<u64>,
    mem_limit_bytes: Option<u64>,
    cache_dir: Option<PathBuf>,
    /// Tri-state: `--pred-store` forces on (usage error without a
    /// cache dir), `--no-pred-store` forces off, unset follows the
    /// default (on whenever `--cache-dir` is set).
    pred_store: Option<bool>,
    /// Tri-state: `--triage` runs the cheap-stage pipeline in front
    /// of the engine, `--no-triage` forces every variable straight to
    /// stage 2 (full CIRC), unset follows the default (off).
    triage: Option<bool>,
    row_json: bool,
    journal: Option<PathBuf>,
    resume: bool,
    isolate: bool,
    retries: u32,
}

impl Parsed {
    /// The effective wall-clock budget (`--timeout-secs` or its
    /// millisecond-granularity variant; the parser rejects both at
    /// once).
    fn timeout(&self) -> Option<Duration> {
        self.timeout_secs
            .map(Duration::from_secs)
            .or(self.timeout_millis.map(Duration::from_millis))
    }

    /// The effective memory ceiling in bytes.
    fn mem_limit(&self) -> Option<u64> {
        self.mem_limit_mb.map(|mb| mb * 1024 * 1024).or(self.mem_limit_bytes)
    }
}

fn parse_flags(args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        source_path: String::new(),
        mode_omega: true,
        asserts: false,
        initial_k: 1,
        print_acfa: false,
        trace: false,
        dot: false,
        stats: false,
        stats_json: false,
        no_cache: false,
        jobs: 1,
        timeout_secs: None,
        timeout_millis: None,
        mem_limit_mb: None,
        mem_limit_bytes: None,
        cache_dir: None,
        pred_store: None,
        triage: None,
        row_json: false,
        journal: None,
        resume: false,
        isolate: false,
        retries: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next().map(String::as_str) {
                Some("circ") => parsed.mode_omega = false,
                Some("omega") => parsed.mode_omega = true,
                other => return Err(format!("--mode expects circ|omega, got {other:?}")),
            },
            "--k" => {
                let v = it.next().ok_or("--k expects a number")?;
                parsed.initial_k =
                    v.parse().map_err(|_| format!("--k expects a number, got `{v}`"))?;
                // k counts context threads; the abstraction is only
                // defined for k >= 1 (§3.2's counter domain starts at
                // "one context thread"), so 0 is a usage error, not a
                // config we can silently run with.
                if parsed.initial_k == 0 {
                    return Err("--k must be at least 1 (0 context threads is not a valid counter abstraction)".into());
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs expects a number")?;
                parsed.jobs =
                    v.parse().map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs expects a number")?;
                parsed.timeout_secs = Some(
                    v.parse().map_err(|_| format!("--timeout-secs expects a number, got `{v}`"))?,
                );
            }
            "--timeout-millis" => {
                let v = it.next().ok_or("--timeout-millis expects a number")?;
                parsed.timeout_millis = Some(
                    v.parse()
                        .map_err(|_| format!("--timeout-millis expects a number, got `{v}`"))?,
                );
            }
            "--mem-limit-mb" => {
                let v = it.next().ok_or("--mem-limit-mb expects a number")?;
                parsed.mem_limit_mb = Some(
                    v.parse().map_err(|_| format!("--mem-limit-mb expects a number, got `{v}`"))?,
                );
            }
            "--mem-limit-bytes" => {
                let v = it.next().ok_or("--mem-limit-bytes expects a number")?;
                parsed.mem_limit_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("--mem-limit-bytes expects a number, got `{v}`"))?,
                );
            }
            "--journal" => {
                let v = it.next().ok_or("--journal expects a file path")?;
                parsed.journal = Some(PathBuf::from(v));
            }
            "--retries" => {
                let v = it.next().ok_or("--retries expects a number")?;
                parsed.retries =
                    v.parse().map_err(|_| format!("--retries expects a number, got `{v}`"))?;
            }
            "--resume" => parsed.resume = true,
            "--isolate" => parsed.isolate = true,
            "--row-json" => parsed.row_json = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir expects a directory")?;
                parsed.cache_dir = Some(PathBuf::from(v));
            }
            "--pred-store" => {
                if parsed.pred_store == Some(false) {
                    return Err("--pred-store and --no-pred-store are contradictory".into());
                }
                parsed.pred_store = Some(true);
            }
            "--no-pred-store" => {
                if parsed.pred_store == Some(true) {
                    return Err("--pred-store and --no-pred-store are contradictory".into());
                }
                parsed.pred_store = Some(false);
            }
            "--triage" => {
                if parsed.triage == Some(false) {
                    return Err("--triage and --no-triage are contradictory".into());
                }
                parsed.triage = Some(true);
            }
            "--no-triage" => {
                if parsed.triage == Some(true) {
                    return Err("--triage and --no-triage are contradictory".into());
                }
                parsed.triage = Some(false);
            }
            "--asserts" => parsed.asserts = true,
            "--print-acfa" => parsed.print_acfa = true,
            "--trace" => parsed.trace = true,
            "--dot" => parsed.dot = true,
            "--stats" => parsed.stats = true,
            "--json" => parsed.stats_json = true,
            "--no-cache" => parsed.no_cache = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if !parsed.source_path.is_empty() {
                    return Err("multiple input files".into());
                }
                parsed.source_path = path.to_string();
            }
        }
    }
    if parsed.source_path.is_empty() {
        return Err("missing input file".into());
    }
    if parsed.cache_dir.is_some() && parsed.no_cache {
        return Err("--cache-dir and --no-cache are contradictory (nothing to persist)".into());
    }
    if parsed.pred_store == Some(true) && parsed.cache_dir.is_none() {
        return Err("--pred-store needs --cache-dir DIR (the store lives there)".into());
    }
    if parsed.triage == Some(true) && parsed.asserts {
        return Err("--triage and --asserts are contradictory (the cheap stages decide the race \
             property only)"
            .into());
    }
    if parsed.timeout_secs.is_some() && parsed.timeout_millis.is_some() {
        return Err(
            "--timeout-secs and --timeout-millis are two spellings of one budget — pass only one"
                .into(),
        );
    }
    if parsed.mem_limit_mb.is_some() && parsed.mem_limit_bytes.is_some() {
        return Err(
            "--mem-limit-mb and --mem-limit-bytes are two spellings of one budget — pass only one"
                .into(),
        );
    }
    if parsed.resume && parsed.journal.is_none() {
        return Err("--resume needs --journal FILE (there is nothing to resume from)".into());
    }
    // `--json` selects the stats *format*; asking for a format is
    // asking for the stats.
    if parsed.stats_json {
        parsed.stats = true;
    }
    Ok(parsed)
}

fn load(path: &str) -> Result<circ_frontend::Compiled, ExitCode> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read `{path}`: {e}");
        ExitCode::from(65)
    })?;
    circ_frontend::compile(&src).map_err(|e| {
        eprintln!("{path}: {e}");
        ExitCode::from(65)
    })
}

/// Substitutes `v<i>` placeholders with source-level variable names.
fn named(cfa: &Cfa, mut s: String) -> String {
    // longest index first so `v10` is not mangled by `v1`
    let mut ixs: Vec<usize> = (0..cfa.vars().len()).collect();
    ixs.sort_by_key(|i| std::cmp::Reverse(*i));
    for ix in ixs {
        s = s.replace(&format!("v{ix}"), &cfa.vars()[ix].name);
    }
    s
}

fn cmd_check(args: &[String]) -> ExitCode {
    let parsed = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if parsed.row_json {
        // Isolation-protocol child mode: check one file exactly the
        // way a batch worker would (same budget semantics, read-only
        // cache seeding) and emit the report row as one JSON line on
        // stdout — the supervising parent parses it back.
        let cfg = circ_batch::BatchConfig {
            omega: parsed.mode_omega,
            initial_k: parsed.initial_k,
            use_cache: !parsed.no_cache,
            jobs: parsed.jobs,
            timeout: parsed.timeout(),
            mem_limit_bytes: parsed.mem_limit(),
            cache_dir: parsed.cache_dir.clone(),
            pred_store: parsed.pred_store.unwrap_or(true),
            triage: parsed.triage.unwrap_or(false),
            ..circ_batch::BatchConfig::default()
        };
        let (row, warnings) = circ_batch::check_single(Path::new(&parsed.source_path), &cfg);
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        println!("{}", circ_batch::render_row_json(&row));
        return ExitCode::from(row.verdict.exit_code());
    }
    let compiled = match load(&parsed.source_path) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if compiled.race_vars.is_empty() {
        eprintln!("{}: no `#race` directive — nothing to check", parsed.source_path);
        return ExitCode::from(65);
    }
    let cfg = CircConfig {
        omega_mode: parsed.mode_omega,
        initial_k: parsed.initial_k,
        use_cache: !parsed.no_cache,
        property: if parsed.asserts { Property::Assertions } else { Property::Race },
        jobs: parsed.jobs,
        timeout: parsed.timeout(),
        mem_limit_bytes: parsed.mem_limit(),
        ..CircConfig::default()
    };
    // With `--cache-dir`, warm-start from disk and share one cache
    // across this invocation's race variables so the file written
    // back holds the union of what they learned. Without it, each
    // variable keeps its own per-run cache as before.
    let io = circ_store::Store::real();
    let (abs_seed, persist) = match &parsed.cache_dir {
        Some(dir) => {
            let (_, sweep_warnings) = io.sweep_stale_tmps(dir);
            for w in &sweep_warnings {
                eprintln!("warning: {w}");
            }
            let loaded = circ_batch::load_caches_in(&io, dir);
            for w in &loaded.warnings {
                eprintln!("warning: {w}");
            }
            (loaded.abs_seed, SolverPersist::with_seed(loaded.solver_seed))
        }
        None => (AbsSeed::empty(), SolverPersist::inert()),
    };
    let shared_cache = parsed.cache_dir.as_ref().map(|_| AbsCache::with_seed(&abs_seed));
    // Predicate store: with a cache dir (unless --no-pred-store), seed
    // each variable's check from what previous runs discovered for the
    // same automaton and config, and record what this run learns.
    let mut preds_store: Option<PredStore> = match &parsed.cache_dir {
        Some(dir) if parsed.pred_store.unwrap_or(true) => {
            let path = dir.join(circ_batch::PRED_STORE_FILE);
            match pred_store::load_pred_store(&path) {
                Ok(Some(store)) => Some(store),
                Ok(None) => Some(PredStore::new()),
                Err(e) => {
                    eprintln!("warning: ignoring predicate store `{}`: {e}", path.display());
                    Some(PredStore::new())
                }
            }
        }
        _ => None,
    };
    let cfa_digest = structural_digest(&compiled.cfa);
    // 1 (race) dominates everything; 3 (budget exhausted) dominates 2
    // (plain inconclusive); 0 only survives if every variable is safe.
    let mut worst: u8 = 0;
    let vars: Vec<_> = if parsed.asserts {
        compiled.race_vars[..1].to_vec() // property is program-wide
    } else {
        compiled.race_vars.clone()
    };
    for &var in &vars {
        let program = MtProgram::new(compiled.cfa.clone(), var);
        let vname = compiled.cfa.var_name(var).to_string();
        if parsed.triage.unwrap_or(false) {
            match circ_triage::triage(&program, &circ_triage::TriageConfig::default()) {
                circ_triage::TriageDecision::Stage0Safe => {
                    println!(
                        "{vname}: SAFE — race-free for any number of threads \
                         (triage stage 0: every access is atomic)"
                    );
                    continue;
                }
                circ_triage::TriageDecision::Stage1Race(w) => {
                    println!(
                        "{vname}: RACE — {} threads, {} steps \
                         (triage stage 1: random schedule, replay validated)",
                        w.n_threads,
                        w.steps.len()
                    );
                    for (i, (tid, eid, _)) in w.steps.iter().enumerate() {
                        let op = named(&compiled.cfa, format!("{}", compiled.cfa.edge(*eid).op));
                        println!("  {i:>3}. T{tid}  {op}");
                    }
                    worst = 1;
                    continue;
                }
                circ_triage::TriageDecision::Fallthrough => {
                    if parsed.trace {
                        eprintln!("[{vname}] triage: undecided, running full CIRC");
                    }
                }
            }
        }
        let property_tag =
            if parsed.asserts { "asserts".to_string() } else { format!("race v{}", var.index()) };
        let config_fp = pred_store::config_fingerprint(
            cfg.initial_k,
            cfg.omega_mode,
            cfg.minimize,
            &cfg.initial_preds,
            &property_tag,
        );
        let mut var_cfg = cfg.clone();
        let prior = preds_store
            .as_ref()
            .and_then(|s| pred_store::seed_config(s, cfa_digest, config_fp, &mut var_cfg));
        let outcome = match &shared_cache {
            Some(cache) => circ_with_caches(&program, &var_cfg, cache, &persist),
            None => circ(&program, &var_cfg),
        };
        let mut run_stats = outcome.stats().clone();
        if let Some(prior_rounds) = prior {
            run_stats.pipeline.preds_seeded = var_cfg.initial_preds.len() as u64;
            run_stats.pipeline.refine_rounds_saved =
                prior_rounds.saturating_sub(run_stats.pipeline.refine_rounds);
        }
        if let Some(store) = preds_store.as_mut() {
            pred_store::record_outcome(store, cfa_digest, config_fp, &outcome, prior.unwrap_or(0));
        }
        if parsed.trace {
            for e in &outcome.log().events {
                match e {
                    CircEvent::OuterStart { preds, k } => {
                        eprintln!("[{vname}] round: P = {{{}}}, k = {k}", preds.join(", "))
                    }
                    CircEvent::ReachDone { arg_locs, .. } => {
                        eprintln!("[{vname}]   reach ok, ARG {arg_locs} locations")
                    }
                    CircEvent::SimChecked { holds } => {
                        eprintln!("[{vname}]   guarantee: {holds}")
                    }
                    CircEvent::Collapsed { size, .. } => {
                        eprintln!("[{vname}]   collapsed to {size} locations")
                    }
                    CircEvent::AbstractRace { trace_len } => {
                        eprintln!("[{vname}]   abstract race ({trace_len} steps)")
                    }
                    CircEvent::Refined { verdict, .. } => {
                        eprintln!("[{vname}]   refine: {verdict}")
                    }
                    CircEvent::OmegaCheck { good } => {
                        eprintln!("[{vname}]   ω-check: {good}")
                    }
                }
            }
        }
        match outcome {
            CircOutcome::Safe(report) => {
                let what = if parsed.asserts { "assertions hold" } else { "race-free" };
                println!(
                    "{vname}: SAFE — {what} for any number of threads \
                     ({} predicates, {}-location context, k = {}, {:.2?})",
                    report.preds.len(),
                    report.acfa.num_locs(),
                    report.k,
                    report.stats.elapsed
                );
                if parsed.print_acfa {
                    let preds = report.preds.clone();
                    let text = report.acfa.display_with(
                        &|i| named(&compiled.cfa, format!("{}", preds[i.index()])),
                        &|v| compiled.cfa.var_name(v).to_string(),
                    );
                    println!("{text}");
                }
            }
            CircOutcome::Unsafe(report) => {
                println!(
                    "{vname}: RACE — {} threads, {} steps (replay validated: {})",
                    report.cex.n_threads,
                    report.cex.steps.len(),
                    report.cex.replay_ok
                );
                for (i, (tid, eid, _)) in report.cex.steps.iter().enumerate() {
                    let op = named(&compiled.cfa, format!("{}", compiled.cfa.edge(*eid).op));
                    println!("  {i:>3}. T{tid}  {op}");
                }
                worst = 1;
            }
            CircOutcome::Unknown(report) => {
                println!("{vname}: INCONCLUSIVE — {:?}", report.reason);
                let code = if report.reason.is_budget_exhausted() { 3 } else { 2 };
                if worst != 1 {
                    worst = worst.max(code);
                }
            }
        }
        if parsed.stats {
            if parsed.stats_json {
                println!("{}", run_stats.pipeline.to_json());
            } else {
                println!("{vname}: statistics ({:.2?} total)", run_stats.elapsed);
                print!("{}", run_stats.pipeline.render_table());
            }
        }
    }
    if let (Some(dir), Some(cache)) = (&parsed.cache_dir, &shared_cache) {
        let outcome = circ_batch::flush_caches_in(
            &io,
            dir,
            &cache.snapshot(),
            &persist,
            preds_store.as_ref(),
        );
        for w in &outcome.warnings {
            eprintln!("warning: {w}");
        }
    }
    ExitCode::from(worst)
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let parsed = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let inputs = match circ_batch::collect_inputs(Path::new(&parsed.source_path)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(65);
        }
    };
    let cancel = circ_governor::CancelToken::new();
    // Graceful shutdown: first SIGINT/SIGTERM trips the batch's cancel
    // token so in-flight files drain at their next budget poll and the
    // partial report + caches still get written; the shim restores the
    // default disposition, so a second signal force-kills. Failure to
    // install (non-Unix, or a double install under test harnesses) is
    // a warning, not an error — the batch just runs without it.
    {
        let token = cancel.clone();
        if let Err(e) = sigshim::install(&[sigshim::SIGINT, sigshim::SIGTERM], move |sig| {
            eprintln!("signal {sig}: draining batch (send again to force-kill)");
            token.cancel();
        }) {
            eprintln!("warning: no graceful shutdown: {e}");
        }
    }
    let cfg = circ_batch::BatchConfig {
        omega: parsed.mode_omega,
        initial_k: parsed.initial_k,
        use_cache: !parsed.no_cache,
        jobs: parsed.jobs,
        timeout: parsed.timeout(),
        mem_limit_bytes: parsed.mem_limit(),
        cache_dir: parsed.cache_dir.clone(),
        pred_store: parsed.pred_store.unwrap_or(true),
        triage: parsed.triage.unwrap_or(false),
        journal: parsed.journal.clone(),
        resume: parsed.resume,
        isolate: parsed.isolate,
        retry: if parsed.retries > 0 {
            circ_governor::RetryPolicy::with_retries(parsed.retries, 0x5eed_c1bc)
        } else {
            circ_governor::RetryPolicy::none()
        },
        cancel,
        ..circ_batch::BatchConfig::default()
    };
    let report = circ_batch::run_batch(&inputs, &cfg);
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    if parsed.stats_json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_table());
    }
    ExitCode::from(report.exit)
}

/// Parsed flags for `serve` and `client` — a separate, smaller parser
/// because the service speaks in addresses and capacities, not input
/// files.
#[derive(Debug)]
struct ServeFlags {
    socket: Option<PathBuf>,
    port: Option<u16>,
    jobs: usize,
    max_inflight: usize,
    queue_depth: usize,
    timeout_secs: Option<u64>,
    timeout_millis: Option<u64>,
    mem_limit_mb: Option<u64>,
    mem_limit_bytes: Option<u64>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    mode_omega: bool,
    initial_k: u32,
    pred_store: Option<bool>,
    triage: Option<bool>,
    retries: u32,
    stats: bool,
    health: bool,
    paths: Vec<String>,
}

fn parse_serve_flags(args: &[String]) -> Result<ServeFlags, String> {
    let mut f = ServeFlags {
        socket: None,
        port: None,
        jobs: 1,
        max_inflight: 2,
        queue_depth: 16,
        timeout_secs: None,
        timeout_millis: None,
        mem_limit_mb: None,
        mem_limit_bytes: None,
        cache_dir: None,
        no_cache: false,
        mode_omega: true,
        initial_k: 1,
        pred_store: None,
        triage: None,
        retries: 0,
        stats: false,
        health: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                let v = it.next().ok_or("--socket expects a path")?;
                f.socket = Some(PathBuf::from(v));
            }
            "--port" => {
                let v = it.next().ok_or("--port expects a number")?;
                f.port =
                    Some(v.parse().map_err(|_| format!("--port expects a number, got `{v}`"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs expects a number")?;
                f.jobs = v.parse().map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--max-inflight" => {
                let v = it.next().ok_or("--max-inflight expects a number")?;
                f.max_inflight =
                    v.parse().map_err(|_| format!("--max-inflight expects a number, got `{v}`"))?;
                if f.max_inflight == 0 {
                    return Err("--max-inflight must be at least 1".into());
                }
            }
            "--queue-depth" => {
                let v = it.next().ok_or("--queue-depth expects a number")?;
                f.queue_depth =
                    v.parse().map_err(|_| format!("--queue-depth expects a number, got `{v}`"))?;
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs expects a number")?;
                f.timeout_secs = Some(
                    v.parse().map_err(|_| format!("--timeout-secs expects a number, got `{v}`"))?,
                );
            }
            "--timeout-millis" => {
                let v = it.next().ok_or("--timeout-millis expects a number")?;
                f.timeout_millis = Some(
                    v.parse()
                        .map_err(|_| format!("--timeout-millis expects a number, got `{v}`"))?,
                );
            }
            "--mem-limit-mb" => {
                let v = it.next().ok_or("--mem-limit-mb expects a number")?;
                f.mem_limit_mb = Some(
                    v.parse().map_err(|_| format!("--mem-limit-mb expects a number, got `{v}`"))?,
                );
            }
            "--mem-limit-bytes" => {
                let v = it.next().ok_or("--mem-limit-bytes expects a number")?;
                f.mem_limit_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("--mem-limit-bytes expects a number, got `{v}`"))?,
                );
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir expects a directory")?;
                f.cache_dir = Some(PathBuf::from(v));
            }
            "--mode" => match it.next().map(String::as_str) {
                Some("circ") => f.mode_omega = false,
                Some("omega") => f.mode_omega = true,
                other => return Err(format!("--mode expects circ|omega, got {other:?}")),
            },
            "--k" => {
                let v = it.next().ok_or("--k expects a number")?;
                f.initial_k = v.parse().map_err(|_| format!("--k expects a number, got `{v}`"))?;
                if f.initial_k == 0 {
                    return Err("--k must be at least 1 (0 context threads is not a valid counter abstraction)".into());
                }
            }
            "--retries" => {
                let v = it.next().ok_or("--retries expects a number")?;
                f.retries =
                    v.parse().map_err(|_| format!("--retries expects a number, got `{v}`"))?;
            }
            "--pred-store" => {
                if f.pred_store == Some(false) {
                    return Err("--pred-store and --no-pred-store are contradictory".into());
                }
                f.pred_store = Some(true);
            }
            "--no-pred-store" => {
                if f.pred_store == Some(true) {
                    return Err("--pred-store and --no-pred-store are contradictory".into());
                }
                f.pred_store = Some(false);
            }
            "--triage" => {
                if f.triage == Some(false) {
                    return Err("--triage and --no-triage are contradictory".into());
                }
                f.triage = Some(true);
            }
            "--no-triage" => {
                if f.triage == Some(true) {
                    return Err("--triage and --no-triage are contradictory".into());
                }
                f.triage = Some(false);
            }
            "--no-cache" => f.no_cache = true,
            "--stats" => f.stats = true,
            "--health" => f.health = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => f.paths.push(path.to_string()),
        }
    }
    match (&f.socket, f.port) {
        (Some(_), Some(_)) => {
            return Err(
                "--socket and --port are two addresses for one listener — pass only one".into()
            );
        }
        (None, None) => return Err("pass --socket PATH or --port N".into()),
        _ => {}
    }
    if f.cache_dir.is_some() && f.no_cache {
        return Err("--cache-dir and --no-cache are contradictory (nothing to persist)".into());
    }
    if f.pred_store == Some(true) && f.cache_dir.is_none() {
        return Err("--pred-store needs --cache-dir DIR (the store lives there)".into());
    }
    if f.timeout_secs.is_some() && f.timeout_millis.is_some() {
        return Err(
            "--timeout-secs and --timeout-millis are two spellings of one budget — pass only one"
                .into(),
        );
    }
    if f.mem_limit_mb.is_some() && f.mem_limit_bytes.is_some() {
        return Err(
            "--mem-limit-mb and --mem-limit-bytes are two spellings of one budget — pass only one"
                .into(),
        );
    }
    Ok(f)
}

impl ServeFlags {
    fn bind_to(&self) -> circ_serve::BindTo {
        match (&self.socket, self.port) {
            (Some(path), _) => circ_serve::BindTo::Socket(path.clone()),
            (None, Some(port)) => circ_serve::BindTo::Port(port),
            (None, None) => unreachable!("parser requires one address"),
        }
    }

    fn timeout(&self) -> Option<Duration> {
        self.timeout_secs
            .map(Duration::from_secs)
            .or(self.timeout_millis.map(Duration::from_millis))
    }

    fn mem_limit(&self) -> Option<u64> {
        self.mem_limit_mb.map(|mb| mb * 1024 * 1024).or(self.mem_limit_bytes)
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let flags = match parse_serve_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if flags.stats || flags.health || !flags.paths.is_empty() {
        eprintln!("`serve` takes no paths or probe flags (those belong to `client`)");
        return usage();
    }
    let cancel = circ_governor::CancelToken::new();
    let flush = circ_serve::FlushTrigger::new();
    // SIGINT/SIGTERM drain the service (one-shot: a second signal
    // force-kills); SIGHUP flushes the warm caches to --cache-dir
    // without draining, and stays installed so it works repeatedly.
    {
        let token = cancel.clone();
        let latch = flush.clone();
        if let Err(e) = sigshim::install_mixed(
            &[sigshim::SIGINT, sigshim::SIGTERM],
            &[sigshim::SIGHUP],
            move |sig| {
                if sig == sigshim::SIGHUP {
                    latch.set();
                } else {
                    eprintln!("signal {sig}: draining service (send again to force-kill)");
                    token.cancel();
                }
            },
        ) {
            eprintln!("warning: no graceful shutdown: {e}");
        }
    }
    let config = circ_serve::ServeConfig {
        bind: flags.bind_to(),
        jobs: flags.jobs,
        max_inflight: flags.max_inflight,
        queue_depth: flags.queue_depth,
        envelope: circ_governor::Envelope {
            timeout: flags.timeout(),
            mem_limit_bytes: flags.mem_limit(),
        },
        omega: flags.mode_omega,
        initial_k: flags.initial_k,
        use_cache: !flags.no_cache,
        pred_store: flags.pred_store.unwrap_or(true),
        triage: flags.triage.unwrap_or(false),
        cache_dir: flags.cache_dir.clone(),
        retry: if flags.retries > 0 {
            circ_governor::RetryPolicy::with_retries(flags.retries, 0x5eed_c1bc)
        } else {
            circ_governor::RetryPolicy::none()
        },
        cancel,
        flush,
        ..circ_serve::ServeConfig::default()
    };
    match circ_serve::serve(config) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("circ serve: {e}");
            ExitCode::from(74)
        }
    }
}

/// A client connection over either transport.
enum ClientConn {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl ClientConn {
    fn connect(flags: &ServeFlags) -> Result<ClientConn, String> {
        match (&flags.socket, flags.port) {
            (Some(path), _) => {
                #[cfg(unix)]
                {
                    std::os::unix::net::UnixStream::connect(path)
                        .map(ClientConn::Unix)
                        .map_err(|e| format!("cannot connect to `{}`: {e}", path.display()))
                }
                #[cfg(not(unix))]
                {
                    Err(format!(
                        "unix sockets are not supported on this platform (`{}`); use --port",
                        path.display()
                    ))
                }
            }
            (None, Some(port)) => std::net::TcpStream::connect(("127.0.0.1", port))
                .map(ClientConn::Tcp)
                .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}")),
            (None, None) => unreachable!("parser requires one address"),
        }
    }

    fn roundtrip(&mut self, request: &str) -> Result<String, String> {
        use std::io::{BufRead, BufReader, Write};
        let (mut w, r): (Box<dyn Write>, Box<dyn std::io::Read>) = match self {
            #[cfg(unix)]
            ClientConn::Unix(s) => (
                Box::new(s.try_clone().map_err(|e| e.to_string())?),
                Box::new(s.try_clone().map_err(|e| e.to_string())?),
            ),
            ClientConn::Tcp(s) => (
                Box::new(s.try_clone().map_err(|e| e.to_string())?),
                Box::new(s.try_clone().map_err(|e| e.to_string())?),
            ),
        };
        writeln!(w, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
        w.flush().map_err(|e| format!("cannot send request: {e}"))?;
        let mut line = String::new();
        BufReader::new(r).read_line(&mut line).map_err(|e| format!("cannot read response: {e}"))?;
        if line.trim().is_empty() {
            return Err("connection closed before a response arrived".into());
        }
        Ok(line.trim_end().to_string())
    }
}

fn cmd_client(args: &[String]) -> ExitCode {
    let flags = match parse_serve_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if !flags.stats && !flags.health && flags.paths.is_empty() {
        eprintln!("`client` needs at least one path to check, or --stats / --health");
        return usage();
    }
    let mut conn = match ClientConn::connect(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("circ client: {e}");
            return ExitCode::from(74);
        }
    };
    let mut requests = Vec::new();
    if flags.health {
        requests.push("{\"op\":\"health\"}".to_string());
    }
    if flags.stats {
        requests.push("{\"op\":\"stats\"}".to_string());
    }
    for path in &flags.paths {
        requests
            .push(format!("{{\"op\":\"check\",\"path\":\"{}\"}}", circ_batch::json_escape(path)));
    }
    // Worst-wins across responses, mirroring batch: check responses
    // carry the server's own worst-wins `exit`; shed requests
    // (overloaded / shutting-down) map to EX_TEMPFAIL.
    let mut worst: u8 = 0;
    for request in &requests {
        let line = match conn.roundtrip(request) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("circ client: {e}");
                return ExitCode::from(74);
            }
        };
        println!("{line}");
        use circ_batch::mjson::{self, Value};
        let code = match mjson::parse(&line) {
            Ok(v) => {
                if v.get("ok") == Some(&Value::Bool(true)) {
                    v.get("exit").and_then(Value::as_u64).unwrap_or(0) as u8
                } else {
                    match v.get("error").and_then(Value::as_str) {
                        Some("overloaded") | Some("shutting-down") => 75,
                        Some("bad-request") => 64,
                        _ => 2,
                    }
                }
            }
            Err(e) => {
                eprintln!("circ client: unparseable response: {e}");
                2
            }
        };
        // The verdict exit ranks don't apply across response kinds;
        // plain max keeps 75 (shed) above every verdict code except
        // none — shed work is retryable, so callers must see it.
        worst = worst.max(code);
    }
    ExitCode::from(worst)
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let parsed = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let compiled = match load(&parsed.source_path) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if parsed.dot {
        print!("{}", dot::cfa_to_dot(&compiled.cfa));
    } else {
        print!("{}", dot::cfa_to_text(&compiled.cfa));
        println!(
            "race variables: {}",
            compiled
                .race_vars
                .iter()
                .map(|v| compiled.cfa.var_name(*v))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_baselines(args: &[String]) -> ExitCode {
    let parsed = match parse_flags(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let compiled = match load(&parsed.source_path) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let flow = circ_baselines::flow_check(&compiled.cfa);
    for &var in &compiled.race_vars {
        let vname = compiled.cfa.var_name(var);
        println!(
            "flow-based:  {vname}: {}",
            if flow.flags(var) { "POTENTIAL RACE" } else { "clean" }
        );
        let program = MtProgram::new(compiled.cfa.clone(), var);
        let dynamic = circ_baselines::eraser(&program, 3, 500, 10, 7);
        println!(
            "lockset:     {vname}: {} ({} accesses monitored)",
            if dynamic.flags(var) { "POTENTIAL RACE" } else { "clean" },
            dynamic.accesses
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    fn flags(args: &[&str]) -> Result<super::Parsed, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn json_implies_stats() {
        let p = flags(&["m.nesl", "--json"]).unwrap();
        assert!(p.stats, "--json must imply --stats");
        assert!(p.stats_json);
        // --stats alone stays table-formatted.
        let p = flags(&["m.nesl", "--stats"]).unwrap();
        assert!(p.stats && !p.stats_json);
    }

    #[test]
    fn budget_flags_parse() {
        let p = flags(&["m.nesl", "--timeout-secs", "7", "--mem-limit-mb", "64"]).unwrap();
        assert_eq!(p.timeout_secs, Some(7));
        assert_eq!(p.mem_limit_mb, Some(64));
        // Unset by default.
        let p = flags(&["m.nesl"]).unwrap();
        assert_eq!(p.timeout_secs, None);
        assert_eq!(p.mem_limit_mb, None);
    }

    #[test]
    fn budget_flags_reject_garbage() {
        assert!(flags(&["m.nesl", "--timeout-secs", "soon"]).is_err());
        assert!(flags(&["m.nesl", "--mem-limit-mb"]).is_err());
    }

    #[test]
    fn k_zero_is_a_usage_error() {
        let err = flags(&["m.nesl", "--k", "0"]).unwrap_err();
        assert!(err.contains("--k must be at least 1"), "unhelpful message: {err}");
        assert!(flags(&["m.nesl", "--k", "-1"]).is_err());
        assert!(flags(&["m.nesl", "--k", "two"]).is_err());
        assert_eq!(flags(&["m.nesl", "--k", "2"]).unwrap().initial_k, 2);
        // The default stays 1 — the paper's experiments start there.
        assert_eq!(flags(&["m.nesl"]).unwrap().initial_k, 1);
    }

    #[test]
    fn fine_grained_budget_flags_parse_and_conflict_with_coarse_ones() {
        let p = flags(&["m.nesl", "--timeout-millis", "250", "--mem-limit-bytes", "4096"]).unwrap();
        assert_eq!(p.timeout(), Some(std::time::Duration::from_millis(250)));
        assert_eq!(p.mem_limit(), Some(4096));
        // The coarse spellings still resolve through the same helpers…
        let p = flags(&["m.nesl", "--timeout-secs", "2", "--mem-limit-mb", "3"]).unwrap();
        assert_eq!(p.timeout(), Some(std::time::Duration::from_secs(2)));
        assert_eq!(p.mem_limit(), Some(3 * 1024 * 1024));
        // …and mixing the two spellings of one budget is a usage error.
        assert!(flags(&["m.nesl", "--timeout-secs", "2", "--timeout-millis", "9"]).is_err());
        assert!(flags(&["m.nesl", "--mem-limit-mb", "1", "--mem-limit-bytes", "9"]).is_err());
    }

    #[test]
    fn supervision_flags_parse() {
        let p = flags(&[
            "corpus",
            "--journal",
            "j.jsonl",
            "--resume",
            "--isolate",
            "--retries",
            "2",
            "--row-json",
        ])
        .unwrap();
        assert_eq!(p.journal.as_deref(), Some(std::path::Path::new("j.jsonl")));
        assert!(p.resume && p.isolate && p.row_json);
        assert_eq!(p.retries, 2);
        assert!(flags(&["corpus", "--retries", "many"]).is_err());
        assert!(flags(&["corpus", "--journal"]).is_err());
    }

    #[test]
    fn resume_requires_a_journal() {
        let err = flags(&["corpus", "--resume"]).unwrap_err();
        assert!(err.contains("--journal"), "unhelpful message: {err}");
        assert!(flags(&["corpus", "--resume", "--journal", "j.jsonl"]).is_ok());
    }

    #[test]
    fn pred_store_flags_parse_and_conflict() {
        // Default: unset (resolved to "on with a cache dir" downstream).
        assert_eq!(flags(&["m.nesl"]).unwrap().pred_store, None);
        let p = flags(&["m.nesl", "--cache-dir", "d", "--pred-store"]).unwrap();
        assert_eq!(p.pred_store, Some(true));
        let p = flags(&["m.nesl", "--cache-dir", "d", "--no-pred-store"]).unwrap();
        assert_eq!(p.pred_store, Some(false));
        // Forcing the store on without a place to put it is a usage
        // error; forcing it off without a cache dir is a no-op.
        let err = flags(&["m.nesl", "--pred-store"]).unwrap_err();
        assert!(err.contains("--cache-dir"), "unhelpful message: {err}");
        assert!(flags(&["m.nesl", "--no-pred-store"]).is_ok());
        assert!(flags(&["m.nesl", "--cache-dir", "d", "--pred-store", "--no-pred-store"]).is_err());
        assert!(flags(&["m.nesl", "--cache-dir", "d", "--no-pred-store", "--pred-store"]).is_err());
    }

    #[test]
    fn triage_flags_parse_and_conflict() {
        // Default: unset (resolved to "off" downstream).
        assert_eq!(flags(&["m.nesl"]).unwrap().triage, None);
        assert_eq!(flags(&["m.nesl", "--triage"]).unwrap().triage, Some(true));
        assert_eq!(flags(&["m.nesl", "--no-triage"]).unwrap().triage, Some(false));
        assert!(flags(&["m.nesl", "--triage", "--no-triage"]).is_err());
        assert!(flags(&["m.nesl", "--no-triage", "--triage"]).is_err());
        // The cheap stages decide the race property only.
        let err = flags(&["m.nesl", "--triage", "--asserts"]).unwrap_err();
        assert!(err.contains("--asserts"), "unhelpful message: {err}");
        assert!(flags(&["m.nesl", "--no-triage", "--asserts"]).is_ok());
    }

    #[test]
    fn serve_flags_require_exactly_one_address() {
        let sflags = |args: &[&str]| {
            super::parse_serve_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(sflags(&[]).unwrap_err().contains("--socket PATH or --port N"));
        assert!(sflags(&["--socket", "s", "--port", "9"]).unwrap_err().contains("only one"));
        let f = sflags(&["--socket", "/tmp/c.sock", "--max-inflight", "4", "--queue-depth", "8"])
            .unwrap();
        assert_eq!(f.socket.as_deref(), Some(std::path::Path::new("/tmp/c.sock")));
        assert_eq!((f.max_inflight, f.queue_depth), (4, 8));
        let f = sflags(&["--port", "7777", "--stats", "a.nesl", "b.nesl"]).unwrap();
        assert_eq!(f.port, Some(7777));
        assert!(f.stats && !f.health);
        assert_eq!(f.paths, vec!["a.nesl", "b.nesl"]);
        assert!(sflags(&["--port", "9", "--max-inflight", "0"]).is_err());
        assert!(sflags(&["--port", "9", "--cache-dir", "d", "--no-cache"]).is_err());
        assert!(sflags(&["--port", "9", "--pred-store"]).is_err());
        assert!(sflags(&["--port", "9", "--k", "0"]).is_err());
    }

    #[test]
    fn cache_dir_parses_and_conflicts_with_no_cache() {
        let p = flags(&["m.nesl", "--cache-dir", ".circ-cache"]).unwrap();
        assert_eq!(p.cache_dir.as_deref(), Some(std::path::Path::new(".circ-cache")));
        assert!(flags(&["m.nesl", "--cache-dir"]).is_err());
        assert!(flags(&["m.nesl", "--cache-dir", "d", "--no-cache"]).is_err());
    }
}
