//! Cross-process shared-cache tests against the real `circ` binary:
//! two concurrent batch runs flushing the same `--cache-dir` must
//! *compose* — the merged artifacts hold a superset of what each run
//! learned alone — because every flush is a read-merge-write cycle
//! under the directory's advisory lock. Before the locked merge this
//! was last-writer-wins, and whichever process flushed second erased
//! the other's learning.

#![cfg(unix)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn circ() -> Command {
    Command::new(env!("CARGO_BIN_EXE_circ"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two corpora with *structurally different* programs, so each run
/// learns different cache entries — a clobbered flush is observable
/// as missing lines, not masked by identical learning.
fn corpus_a_dir() -> PathBuf {
    let dir = tmp("shared-corpus-a");
    std::fs::write(
        dir.join("safe.nesl"),
        "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("racy.nesl"),
        "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n",
    )
    .unwrap();
    dir
}

fn corpus_b_dir() -> PathBuf {
    let dir = tmp("shared-corpus-b");
    std::fs::write(
        dir.join("safe.nesl"),
        "global int buf;\nglobal int busy;\n#race buf;\n\
         thread sender {\n  local int won;\n  loop {\n    atomic {\n      won = busy;\n\
         \x20     if (busy == 0) { busy = 1; }\n    }\n    if (won == 0) {\n\
         \x20     buf = buf + 1;\n      busy = 0;\n    }\n  }\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("racy.nesl"),
        "global int z;\n#race z;\nthread t { loop { if (z == 0) { z = z + 2; } } }\n",
    )
    .unwrap();
    dir
}

/// The body entries of a checksummed snapshot artifact (everything
/// after the header line), as a set.
fn body_lines(path: &PathBuf) -> BTreeSet<String> {
    std::fs::read_to_string(path).unwrap_or_default().lines().skip(1).map(str::to_string).collect()
}

/// Two `circ batch` processes, launched together against one shared
/// cache directory, must both exit cleanly and leave merged artifacts
/// that are a superset of what each run persists when it runs alone.
#[test]
fn concurrent_batches_sharing_a_cache_dir_lose_no_entries() {
    let corpus_a = corpus_a_dir();
    let corpus_b = corpus_b_dir();

    // Solo baselines: what each corpus persists into its own
    // directory with nobody else around.
    let solo_a = tmp("shared-solo-a");
    let solo_b = tmp("shared-solo-b");
    for (corpus, dir) in [(&corpus_a, &solo_a), (&corpus_b, &solo_b)] {
        let out = circ().args(["batch"]).arg(corpus).arg("--cache-dir").arg(dir).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "a racy corpus exits 1");
    }

    // The two corpora must learn *different* entries, or clobbering
    // would be unobservable and the superset check below vacuous.
    assert_ne!(
        body_lines(&solo_a.join("abs.cache")),
        body_lines(&solo_b.join("abs.cache")),
        "corpora learned identical entries; the merge pin has no teeth"
    );

    // The contended run: both processes at once, one shared dir.
    let shared = tmp("shared-cache");
    let child_a =
        circ().args(["batch"]).arg(&corpus_a).arg("--cache-dir").arg(&shared).spawn().unwrap();
    let child_b =
        circ().args(["batch"]).arg(&corpus_b).arg("--cache-dir").arg(&shared).spawn().unwrap();
    let out_a = child_a.wait_with_output().unwrap();
    let out_b = child_b.wait_with_output().unwrap();
    assert_eq!(out_a.status.code(), Some(1));
    assert_eq!(out_b.status.code(), Some(1));

    // The solver cache is legitimately empty for these tiny programs
    // (the entailment cache answers everything), so the must-learn
    // guard applies to the other two artifacts only; the superset
    // check still covers all three.
    for name in ["abs.cache", "solver.cache", "preds.store"] {
        let merged = body_lines(&shared.join(name));
        for (tag, solo) in [("a", &solo_a), ("b", &solo_b)] {
            let solo_entries = body_lines(&solo.join(name));
            assert!(
                name == "solver.cache" || !solo_entries.is_empty(),
                "{name}: solo run {tag} persisted nothing"
            );
            assert!(
                solo_entries.is_subset(&merged),
                "{name}: entries learned by solo run {tag} are missing from the shared \
                 directory — flushes clobbered instead of merging (missing: {:?})",
                solo_entries.difference(&merged).collect::<Vec<_>>()
            );
        }
    }
}
