//! End-to-end crash-safety tests against the real `circ` binary:
//! a SIGINT mid-batch must flush a valid partial report and journal,
//! `--resume` must finish the run with the uninterrupted verdicts,
//! `--row-json` must speak the isolation protocol, and a crashing
//! isolated child must degrade to one `internal-error` row while its
//! sibling rows match the clean baseline byte-for-byte.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn circ() -> Command {
    Command::new(env!("CARGO_BIN_EXE_circ"))
}

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout_str(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// `(file, VERDICT)` pairs from a table-format report, ignoring times,
/// details, and summary lines.
fn table_verdicts(table: &str) -> Vec<(String, String)> {
    table
        .lines()
        .filter_map(|l| {
            let mut cols = l.split_whitespace();
            let file = cols.next()?;
            let verdict = cols.next()?;
            file.ends_with(".nesl").then(|| (file.to_string(), verdict.to_string()))
        })
        .collect()
}

/// Zeroes every `"time...":<number>` value in a JSON report (same
/// scanner as `tests/determinism.rs`).
fn strip_times(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(ix) = rest.find("\"time") {
        let Some(key_len) = rest[ix + 1..].find('"') else { break };
        let key_end = ix + 1 + key_len + 1;
        let Some(colon) = rest[key_end..].find(':') else { break };
        let val_start = key_end + colon + 1;
        let val_len = rest[val_start..].find([',', '}']).unwrap_or(rest.len() - val_start);
        out.push_str(&rest[..val_start]);
        out.push('0');
        rest = &rest[val_start + val_len..];
    }
    out.push_str(rest);
    out
}

/// Splits the `"rows":[...]` array of a JSON report into its row
/// objects (none of which nest arrays, so brace depth suffices).
fn report_rows(json: &str) -> Vec<String> {
    let start = json.find("\"rows\":[").expect("report has no rows array") + "\"rows\":[".len();
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut row_start = None;
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    row_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    rows.push(json[start + row_start.unwrap()..=start + i].to_string());
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    rows
}

#[test]
fn resume_without_journal_is_a_usage_error() {
    let out = circ().args(["batch", "x", "--resume"]).output().unwrap();
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--journal"));
}

#[test]
fn row_json_child_mode_prints_one_parseable_row() {
    let file = examples_dir().join("test_and_set.nesl");
    let out = circ()
        .args(["check", file.to_str().unwrap(), "--row-json"])
        .args(["--timeout-millis", "60000", "--mem-limit-bytes", "268435456"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = stdout_str(&out);
    let row = circ_batch::parse_row_json(stdout.trim()).expect("child row must parse");
    assert_eq!(row.verdict, circ_batch::Verdict::Safe);
    assert_eq!(row.file, file.to_str().unwrap());
}

/// Generates `n` distinct-content copies of `test_and_set.nesl` so the
/// batch takes long enough to interrupt and every file has its own
/// journal digest.
fn write_corpus(dir: &Path, n: usize) {
    let src = std::fs::read_to_string(examples_dir().join("test_and_set.nesl")).unwrap();
    for i in 0..n {
        std::fs::write(dir.join(format!("copy_{i:03}.nesl")), format!("{src}\n// copy {i}\n"))
            .unwrap();
    }
}

#[test]
fn sigint_flushes_partial_report_and_resume_matches_uninterrupted() {
    const N: usize = 150;
    let dir = tmp("sigint-corpus");
    let corpus = dir.join("files");
    std::fs::create_dir_all(&corpus).unwrap();
    write_corpus(&corpus, N);
    let journal = dir.join("journal.jsonl");
    let corpus_arg = corpus.to_str().unwrap();

    let baseline = circ().args(["batch", corpus_arg, "--jobs", "0"]).output().unwrap();
    assert_eq!(baseline.status.code(), Some(0));

    let mut child = circ()
        .args(["batch", corpus_arg, "--jobs", "1", "--journal", journal.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Wait until at least two rows hit the journal, then deliver a real
    // SIGINT — the graceful-shutdown path the signal handler wires up.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let journaled = std::fs::read_to_string(&journal).map(|s| s.lines().count()).unwrap_or(0);
        if journaled >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "journal never got two rows");
        assert!(
            child.try_wait().unwrap().is_none(),
            "batch finished before it could be interrupted — corpus too small"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let kill = Command::new("kill").args(["-INT", &child.id().to_string()]).status().unwrap();
    assert!(kill.success());
    let out = child.wait_with_output().unwrap();

    // Drained, not crashed: budget-exhausted exit, full row table
    // flushed, and every journal line intact.
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("draining batch"));
    let rows = table_verdicts(&stdout_str(&out));
    assert_eq!(rows.len(), N, "partial report must still list every input");
    assert!(rows.iter().any(|(_, v)| v == "BUDGET-EXHAUSTED"), "nothing was interrupted");
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let journaled = journal_text.lines().count();
    assert!((2..N).contains(&journaled), "journal has {journaled} of {N} rows");
    for line in journal_text.lines() {
        circ_batch::journal::parse_line(line).expect("flushed journal line must parse");
    }

    let resumed = circ()
        .args(["batch", corpus_arg, "--jobs", "0", "--json"])
        .args(["--journal", journal.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(resumed.status.code(), Some(0));
    let resumed_json = stdout_str(&resumed);
    assert!(
        resumed_json.contains(&format!("\"resumed\":{journaled}")),
        "every journaled row must replay on resume"
    );
    // The interrupted-then-resumed run lands on the uninterrupted
    // run's verdicts exactly.
    let resumed_rows: Vec<(String, String)> = report_rows(&resumed_json)
        .iter()
        .map(|r| {
            let row = circ_batch::parse_row_json(r).unwrap();
            (row.file.clone(), row.verdict.name().to_uppercase())
        })
        .collect();
    assert_eq!(resumed_rows, table_verdicts(&stdout_str(&baseline)));
}

#[test]
fn isolated_crash_degrades_one_row_and_siblings_match_baseline() {
    use std::os::unix::fs::PermissionsExt;
    let dir = tmp("isolate-crash");
    // A stand-in child binary: abort (SIGABRT) on the racy example,
    // delegate to the real binary for everything else.
    let shim = dir.join("crashy-circ.sh");
    std::fs::write(
        &shim,
        format!(
            "#!/bin/sh\ncase \"$2\" in\n  *unprotected*) echo boom-stderr >&2; kill -ABRT $$;;\nesac\nexec {} \"$@\"\n",
            env!("CARGO_BIN_EXE_circ")
        ),
    )
    .unwrap();
    std::fs::set_permissions(&shim, std::fs::Permissions::from_mode(0o755)).unwrap();

    let examples = examples_dir();
    let clean =
        circ().args(["batch", examples.to_str().unwrap(), "--json", "--isolate"]).output().unwrap();
    assert_eq!(clean.status.code(), Some(1), "racy example must dominate the clean run");
    let crashed = circ()
        .args(["batch", examples.to_str().unwrap(), "--json", "--isolate"])
        .env("CIRC_ISOLATE_BIN", &shim)
        .output()
        .unwrap();
    // The crash degrades to internal-error (exit 2): no race row
    // survives to dominate.
    assert_eq!(crashed.status.code(), Some(2));

    let clean_rows = report_rows(&stdout_str(&clean));
    let crashed_rows = report_rows(&stdout_str(&crashed));
    assert_eq!(clean_rows.len(), crashed_rows.len());
    let mut crashes = 0;
    for (c, k) in clean_rows.iter().zip(&crashed_rows) {
        if k.contains("\"verdict\":\"internal-error\"") {
            crashes += 1;
            assert!(k.contains("unprotected"), "only the aborting child may degrade");
            assert!(k.contains("signal 6"), "detail must name the fatal signal: {k}");
            assert!(k.contains("boom-stderr"), "detail must carry child stderr: {k}");
        } else {
            assert_eq!(strip_times(c), strip_times(k), "sibling row changed under a crash");
        }
    }
    assert_eq!(crashes, 1);
    assert!(stdout_str(&crashed).contains("\"quarantine\":["), "crashing file must be quarantined");
}
