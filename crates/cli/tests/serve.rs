//! End-to-end service-mode tests against the real `circ` binary: a
//! daemon must produce verdicts identical to `circ batch`, shed load
//! with structured errors when over capacity, drain gracefully on
//! SIGTERM (in-flight requests finish or degrade to cancelled rows,
//! queued ones get `shutting-down`, exit 3), reclaim stale sockets,
//! refuse live ones with exit 74, and restart warm from the same
//! `--cache-dir` (strictly fewer cache misses than a cold start).

#![cfg(unix)]

use circ_batch::mjson::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn circ() -> Command {
    Command::new(env!("CARGO_BIN_EXE_circ"))
}

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A socket path under /tmp: CARGO_TARGET_TMPDIR can exceed the
/// ~108-byte unix socket path limit.
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("circ-e2e-{}-{tag}.sock", std::process::id()))
}

struct Daemon {
    child: Option<Child>,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(socket: &Path, extra: &[&str]) -> Daemon {
        let child = circ()
            .args(["serve", "--socket", socket.to_str().unwrap()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        let mut daemon = Daemon { child: Some(child), socket: socket.to_path_buf() };
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(socket).is_err() {
            assert!(Instant::now() < deadline, "server never came up on {}", socket.display());
            let exited = daemon.child.as_mut().unwrap().try_wait().unwrap();
            assert!(exited.is_none(), "server exited during startup");
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon
    }

    fn sigterm(&self) {
        let pid = self.child.as_ref().unwrap().id().to_string();
        let ok = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
        assert!(ok.success());
    }

    /// SIGTERM, wait, and return `(exit_code, stderr)`.
    fn shutdown(self) -> (i32, String) {
        self.sigterm();
        self.wait()
    }

    /// Wait for an exit already in progress (a SIGTERM was sent;
    /// sending another would force-kill — the one-shot handler has
    /// restored the default disposition).
    fn wait(mut self) -> (i32, String) {
        let out = self.child.take().unwrap().wait_with_output().unwrap();
        (out.status.code().expect("signal-free exit"), String::from_utf8_lossy(&out.stderr).into())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Abnormal path only (a panic before shutdown/wait): force-kill
        // and clean up. The normal path leaves the socket alone so the
        // tests can assert the *server* removed it on drain.
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(&self.socket);
        }
    }
}

/// One request → one response on a fresh connection.
fn roundtrip(socket: &Path, request: &str) -> Value {
    let mut conn = UnixStream::connect(socket).expect("connect");
    writeln!(conn, "{request}").expect("send");
    let mut line = String::new();
    BufReader::new(conn).read_line(&mut line).expect("receive");
    mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
}

/// `(inflight, queued)` from a health probe.
fn depths(socket: &Path) -> (u64, u64) {
    let health = roundtrip(socket, "{\"op\":\"health\"}");
    let h = health.get("health").expect("health payload");
    (
        h.get("inflight").and_then(Value::as_u64).unwrap(),
        h.get("queued").and_then(Value::as_u64).unwrap(),
    )
}

/// The comparable part of a report row: everything except wall time.
fn row_key(row: &Value) -> (String, String, String, String) {
    let s = |k: &str| row.get(k).and_then(Value::as_str).unwrap_or_default().to_string();
    (s("file"), s("verdict"), s("detail"), s("stage"))
}

fn response_rows(response: &Value) -> Vec<(String, String, String, String)> {
    let Some(Value::Arr(rows)) = response.get("rows") else {
        panic!("no rows in {response:?}");
    };
    rows.iter().map(row_key).collect()
}

/// Cumulative service-side abs-cache misses, from a stats probe.
fn abs_misses(socket: &Path) -> u64 {
    let stats = roundtrip(socket, "{\"op\":\"stats\"}");
    stats
        .get("stats")
        .and_then(|s| s.get("service"))
        .and_then(|s| s.get("totals"))
        .and_then(|t| t.get("pipeline"))
        .and_then(|p| p.get("abs_cache_misses"))
        .and_then(Value::as_u64)
        .expect("abs_cache_misses in stats payload")
}

#[test]
fn stale_socket_is_reclaimed_and_live_socket_refused_with_74() {
    let socket = socket_path("bind");
    // Plant a stale socket file: bind and immediately drop the
    // listener, as an unclean shutdown would leave behind.
    let _ = std::fs::remove_file(&socket);
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists());

    let daemon = Daemon::spawn(&socket, &[]);
    let health = roundtrip(&socket, "{\"op\":\"health\"}");
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));

    // A second server against the live socket: clear diagnostic,
    // exit 74, and the live server keeps its socket.
    let second = circ().args(["serve", "--socket", socket.to_str().unwrap()]).output().unwrap();
    assert_eq!(second.status.code(), Some(74));
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("in use"), "unhelpful diagnostic: {stderr}");
    let health = roundtrip(&socket, "{\"op\":\"health\"}");
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));

    let (exit, stderr) = daemon.shutdown();
    assert_eq!(exit, 3);
    assert!(stderr.contains("reclaimed stale socket"), "missing reclaim notice: {stderr}");
    assert!(!socket.exists(), "drain must remove the socket file");
}

#[test]
fn serve_verdicts_match_batch_and_restart_is_warm() {
    let cache_dir = tmp("serve-warm-cache");
    let socket = socket_path("warm");
    let examples = examples_dir();
    let examples_arg = examples.to_str().unwrap();

    // Ground truth: the same corpus through `circ batch --json`.
    let batch = circ().args(["batch", examples_arg, "--json"]).output().unwrap();
    assert_eq!(batch.status.code(), Some(1), "racy example must dominate");
    let batch_json = mjson::parse(String::from_utf8_lossy(&batch.stdout).trim()).unwrap();
    let batch_rows: Vec<_> = match batch_json.get("rows") {
        Some(Value::Arr(rows)) => rows.iter().map(row_key).collect(),
        other => panic!("no rows in batch report: {other:?}"),
    };
    assert!(!batch_rows.is_empty());

    // Cold daemon pass over the same corpus, via the real client.
    let daemon = Daemon::spawn(&socket, &["--cache-dir", cache_dir.to_str().unwrap()]);
    let client = circ()
        .args(["client", "--socket", socket.to_str().unwrap(), examples_arg])
        .output()
        .unwrap();
    assert_eq!(
        client.status.code(),
        Some(1),
        "client exit must be worst-wins like batch; stderr: {}",
        String::from_utf8_lossy(&client.stderr)
    );
    let response = mjson::parse(String::from_utf8_lossy(&client.stdout).trim()).unwrap();
    assert_eq!(
        response_rows(&response),
        batch_rows,
        "serve rows must be identical to batch rows modulo wall time"
    );
    assert_eq!(response.get("exit").and_then(Value::as_u64), Some(1));
    let cold_misses = abs_misses(&socket);
    assert!(cold_misses > 0, "a cold pass must miss");

    // Drain flushes the caches; the socket file goes away.
    let (exit, stderr) = daemon.shutdown();
    assert_eq!(exit, 3, "stderr: {stderr}");
    assert!(stderr.contains("draining"), "missing drain notice: {stderr}");
    assert!(stderr.contains("drained cleanly"), "missing drain summary: {stderr}");
    assert!(cache_dir.join("abs.cache").exists(), "drain must flush the entailment cache");

    // Restart against the same cache dir: the same corpus must cost
    // strictly fewer entailment-cache misses than the cold pass.
    let daemon = Daemon::spawn(&socket, &["--cache-dir", cache_dir.to_str().unwrap()]);
    let client = circ()
        .args(["client", "--socket", socket.to_str().unwrap(), examples_arg])
        .output()
        .unwrap();
    assert_eq!(client.status.code(), Some(1));
    let warm_response = mjson::parse(String::from_utf8_lossy(&client.stdout).trim()).unwrap();
    assert_eq!(response_rows(&warm_response), batch_rows, "warm verdicts must not change");
    let warm_misses = abs_misses(&socket);
    assert!(
        warm_misses < cold_misses,
        "warm restart must re-check cheaper: {warm_misses} misses warm vs {cold_misses} cold"
    );
    let (exit, _) = daemon.shutdown();
    assert_eq!(exit, 3);
}

#[test]
fn overload_sheds_queue_gets_shutting_down_and_inflight_completes() {
    let dir = tmp("serve-drain-corpus");
    let corpus = dir.join("files");
    std::fs::create_dir_all(&corpus).unwrap();
    // Structurally distinct (but all still safe) copies: padding
    // `skip` statements grows each automaton differently, so the warm
    // master cache cannot collapse the corpus into near-free cache
    // hits — the request genuinely stays in flight while we probe.
    let src = std::fs::read_to_string(examples_dir().join("test_and_set.nesl")).unwrap();
    for i in 0..80 {
        let pad = "skip; ".repeat(i + 1);
        let copy = src.replace("if (won == 0) {", &format!("if (won == 0) {{ {pad}"));
        assert_ne!(copy, src, "padding must land");
        std::fs::write(corpus.join(format!("copy_{i:03}.nesl")), copy).unwrap();
    }
    let socket = socket_path("drain");
    let daemon = Daemon::spawn(&socket, &["--max-inflight", "1", "--queue-depth", "1"]);

    // Connection A: a big request that will still be in flight when
    // the drain starts.
    let mut conn_a = UnixStream::connect(&socket).unwrap();
    writeln!(
        conn_a,
        "{{\"op\":\"check\",\"id\":\"big\",\"path\":\"{}\"}}",
        circ_batch::json_escape(corpus.to_str().unwrap())
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while depths(&socket) != (1, 0) {
        assert!(Instant::now() < deadline, "big request never admitted");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Connection B: queues behind A (queue depth 1).
    let mut conn_b = UnixStream::connect(&socket).unwrap();
    let read_only = examples_dir().join("read_only.nesl");
    writeln!(
        conn_b,
        "{{\"op\":\"check\",\"id\":\"queued\",\"path\":\"{}\"}}",
        circ_batch::json_escape(read_only.to_str().unwrap())
    )
    .unwrap();
    while depths(&socket) != (1, 1) {
        assert!(Instant::now() < deadline, "second request never queued");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Connection C: both the slot and the queue are full — shed now.
    let shed = roundtrip(
        &socket,
        &format!(
            "{{\"op\":\"check\",\"path\":\"{}\"}}",
            circ_batch::json_escape(read_only.to_str().unwrap())
        ),
    );
    assert_eq!(shed.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(shed.get("error").and_then(Value::as_str), Some("overloaded"));
    assert!(shed.get("detail").and_then(Value::as_str).unwrap().contains("queue full"), "{shed:?}");

    // And the real client maps a shed request to EX_TEMPFAIL (75).
    let shed_client = circ()
        .args(["client", "--socket", socket.to_str().unwrap(), read_only.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(shed_client.status.code(), Some(75));

    // Drain mid-request.
    daemon.sigterm();

    // B was queued: it must get a structured shutting-down rejection.
    let mut line = String::new();
    BufReader::new(&mut conn_b).read_line(&mut line).unwrap();
    let b = mjson::parse(line.trim()).unwrap();
    assert_eq!(b.get("error").and_then(Value::as_str), Some("shutting-down"), "{line}");
    assert_eq!(b.get("id").and_then(Value::as_str), Some("queued"));

    // A was in flight: it must get a complete response — rows may
    // degrade to cancelled budget-exhausted, but never flip verdicts.
    line.clear();
    BufReader::new(&mut conn_a).read_line(&mut line).unwrap();
    let a = mjson::parse(line.trim()).unwrap();
    assert_eq!(a.get("ok"), Some(&Value::Bool(true)), "in-flight request must complete: {line}");
    assert_eq!(a.get("id").and_then(Value::as_str), Some("big"));
    let Some(Value::Arr(rows)) = a.get("rows") else { panic!("no rows: {line}") };
    assert_eq!(rows.len(), 80, "every unit must be accounted for");
    for row in rows {
        let verdict = row.get("verdict").and_then(Value::as_str).unwrap();
        assert!(
            verdict == "safe" || verdict == "budget-exhausted",
            "a drained unit may only be its true verdict or a degraded one, got {verdict}"
        );
    }
    assert!(
        rows.iter().any(|r| r.get("verdict").and_then(Value::as_str) == Some("budget-exhausted")),
        "an 80-file request interrupted mid-run must have drained rows"
    );

    let out = daemon.wait();
    assert_eq!(out.0, 3, "stderr: {}", out.1);
}
