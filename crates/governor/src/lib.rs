//! Resource governance for the CIRC pipeline.
//!
//! CIRC's outer CEGAR loop and inner assume–guarantee alternation can
//! diverge on adversarial models; the paper's own recourse is to give
//! up after bounded refinement. This crate supplies the primitives
//! that turn "give up" into a first-class, graceful outcome:
//!
//! * [`Budget`] — a cloneable handle bundling an optional wall-clock
//!   deadline, an optional accounted-memory ceiling, a cooperative
//!   [`CancelToken`], and a [`FaultPlan`]. Long-running phases call
//!   [`Budget::check`] at loop granularity and [`Budget::charge`]
//!   when they grow a tracked arena (ARG nodes, solver formula
//!   cache); exhaustion surfaces as [`Exhausted`], which callers map
//!   to an `Unknown` verdict carrying partial stats.
//! * [`CancelToken`] — an `Arc<AtomicBool>` flag that lets an
//!   embedder abort a run from another thread without killing it.
//! * [`FaultPlan`] — a deterministic, seeded fault-injection
//!   schedule. Injection points (solver answers `Unknown`, a worker
//!   task panics, a phase stalls) compile to constant `false` unless
//!   the `inject` cargo feature is on, so production builds pay
//!   nothing; under the feature the schedule is a pure function of
//!   the seed and per-site event counters, so a failing schedule
//!   replays exactly.
//!
//! Memory accounting is deliberately *charged*, not measured: phases
//! report approximate byte costs for the structures they allocate.
//! The ceiling is a governance proxy (stop runs that grow without
//! bound), not an allocator-level limit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between an embedder and a
/// running pipeline. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// [`Budget::check`] poll in the governed run.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a governed run was cut short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exhausted {
    /// The wall-clock deadline passed. Carries the configured limit.
    Deadline {
        /// The timeout the run was configured with.
        limit: Duration,
    },
    /// The accounted-memory ceiling was exceeded.
    MemoryLimit {
        /// The configured ceiling in bytes.
        limit_bytes: u64,
        /// Bytes charged when the ceiling tripped.
        charged_bytes: u64,
    },
    /// The embedder cancelled the run via [`CancelToken::cancel`].
    Cancelled,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Deadline { limit } => {
                write!(f, "wall-clock deadline exceeded ({:.1}s budget)", limit.as_secs_f64())
            }
            Exhausted::MemoryLimit { limit_bytes, charged_bytes } => write!(
                f,
                "memory budget exceeded ({charged_bytes} bytes charged, {limit_bytes} byte ceiling)"
            ),
            Exhausted::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    timeout: Option<Duration>,
    mem_limit_bytes: Option<u64>,
    charged: AtomicU64,
    polls: AtomicU64,
    token: CancelToken,
    faults: FaultPlan,
}

/// A cloneable resource budget threaded through every long-running
/// phase of the pipeline. Clones share one accounting state, so a
/// byte charged in a solver shard counts against the same ceiling as
/// a byte charged in the reachability loop.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    /// A budget with no deadline, no memory ceiling, a fresh token,
    /// and an inert fault plan. [`Budget::check`] never fails.
    pub fn unlimited() -> Budget {
        Budget::new(None, None, CancelToken::new(), FaultPlan::inert())
    }

    /// Build a budget. The deadline clock starts *now*: a `timeout`
    /// of one second means one second from this call.
    pub fn new(
        timeout: Option<Duration>,
        mem_limit_bytes: Option<u64>,
        token: CancelToken,
        faults: FaultPlan,
    ) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline: timeout.map(|t| Instant::now() + t),
                timeout,
                mem_limit_bytes,
                charged: AtomicU64::new(0),
                polls: AtomicU64::new(0),
                token,
                faults,
            }),
        }
    }

    /// A budget with only a wall-clock deadline (convenience for
    /// tests).
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::new(Some(timeout), None, CancelToken::new(), FaultPlan::inert())
    }

    /// A budget with only a memory ceiling (convenience for tests).
    pub fn with_mem_limit(limit_bytes: u64) -> Budget {
        Budget::new(None, Some(limit_bytes), CancelToken::new(), FaultPlan::inert())
    }

    /// Poll the budget. Checks, in order: an injected stall (feature
    /// `inject` only), cancellation, the deadline, the memory
    /// ceiling. Cheap enough to call once per BFS commit, Jacobi
    /// pass, placement candidate, or DPLL(T) theory round.
    pub fn check(&self) -> Result<(), Exhausted> {
        let inner = &*self.inner;
        inner.polls.fetch_add(1, Ordering::Relaxed);
        inner.faults.maybe_stall();
        if inner.token.is_cancelled() {
            return Err(Exhausted::Cancelled);
        }
        if let (Some(deadline), Some(timeout)) = (inner.deadline, inner.timeout) {
            if Instant::now() >= deadline {
                return Err(Exhausted::Deadline { limit: timeout });
            }
        }
        if let Some(limit_bytes) = inner.mem_limit_bytes {
            let charged_bytes = inner.charged.load(Ordering::Relaxed);
            if charged_bytes > limit_bytes {
                return Err(Exhausted::MemoryLimit { limit_bytes, charged_bytes });
            }
        }
        Ok(())
    }

    /// Charge `bytes` of approximate arena growth against the
    /// ceiling. Never blocks or fails; the overdraft is detected by
    /// the next [`Budget::check`].
    pub fn charge(&self, bytes: u64) {
        self.inner.charged.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes charged so far across all clones.
    pub fn charged_bytes(&self) -> u64 {
        self.inner.charged.load(Ordering::Relaxed)
    }

    /// Total [`Budget::check`] polls so far across all clones.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// The cancellation token this budget polls.
    pub fn token(&self) -> &CancelToken {
        &self.inner.token
    }

    /// The fault-injection schedule this budget carries.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

/// Splits an optional wall-clock budget evenly across `n` units of
/// work (batch mode: one slice per input file). `None` stays
/// unbounded. The division floors: a 10 s budget over 3 files gives
/// each a hair over 3.3 s, and a budget too small to slice honestly
/// yields near-zero slices that exhaust immediately — reported as
/// budget exhaustion, not silently rounded up.
///
/// Each unit must construct its own [`Budget`] from the slice *when
/// it starts* ([`Budget::new`] starts the deadline clock at
/// construction), so slices are per-unit wall clocks, not a shared
/// global deadline — which keeps a unit's observable budget behavior
/// independent of when the scheduler happens to start it.
pub fn carve_timeout(total: Option<Duration>, n: usize) -> Option<Duration> {
    let n = u32::try_from(n.max(1)).unwrap_or(u32::MAX);
    total.map(|t| t / n)
}

/// Splits an optional accounted-memory ceiling evenly across `n`
/// units of work. `None` stays unbounded; the division floors.
pub fn carve_mem_limit(total: Option<u64>, n: usize) -> Option<u64> {
    let n = u64::try_from(n.max(1)).unwrap_or(u64::MAX);
    total.map(|m| m / n)
}

/// A service-wide resource envelope from which an admission
/// controller carves per-request budgets.
///
/// The two axes carve differently because they exhaust differently:
///
/// * **wall clock** is granted whole — concurrent requests each get
///   the full per-request deadline because their wall-clock slices
///   run on independent clocks (request B's seconds tick whether or
///   not request A is still running, so dividing by concurrency
///   would punish a request for its neighbors' mere existence);
/// * **accounted memory** is divided by the concurrency ceiling —
///   the slices coexist in one address space, so only
///   `total / max_inflight` per request keeps the service's total
///   charge bounded by the envelope no matter what mix of requests
///   is in flight.
///
/// `None` on either axis stays unbounded, exactly like the
/// [`carve_timeout`] / [`carve_mem_limit`] primitives this composes.
#[derive(Debug, Clone, Default)]
pub struct Envelope {
    /// Wall-clock deadline granted to each admitted request.
    pub timeout: Option<Duration>,
    /// Total accounted-memory ceiling across all in-flight requests.
    pub mem_limit_bytes: Option<u64>,
}

impl Envelope {
    /// The per-request `(deadline, memory ceiling)` slice when up to
    /// `max_inflight` requests may run concurrently.
    pub fn carve(&self, max_inflight: usize) -> (Option<Duration>, Option<u64>) {
        (self.timeout, carve_mem_limit(self.mem_limit_bytes, max_inflight))
    }
}

/// Extract a human-readable message from a panic payload (the `Box`
/// returned by [`std::panic::catch_unwind`]). Recognizes the two
/// payload types `panic!` actually produces.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[derive(Debug)]
struct FaultInner {
    seed: u64,
    solver_unknown_per_mille: u16,
    task_panic_per_mille: u16,
    stall: Option<Duration>,
    /// Fail the `nth` occurrence of `point` (see [`IoFaultPoint`] for
    /// which points are single-shot and which are sticky).
    io_fault: Option<(IoFaultPoint, u64)>,
    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    solver_events: AtomicU64,
    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    task_events: AtomicU64,
    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    io_events: [AtomicU64; 8],
    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    stalled: AtomicBool,
    injected: AtomicU64,
}

/// A deterministic fault-injection schedule.
///
/// The plan is a pure function of its seed: each injection site keeps
/// its own event counter, and event `i` at a site fires iff
/// `splitmix64(seed ⊕ salt ⊕ i) mod 1000 < rate`. Same seed, same
/// rates, same call sequence ⇒ same injections, so a failing schedule
/// found by a sweep replays exactly.
///
/// Without the `inject` cargo feature every decision method returns
/// `false` (or is a no-op) unconditionally — call sites compile in
/// all configurations and the branch folds away in release builds.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<FaultInner>>,
}

/// Per-site salts so the three injection streams are independent.
#[cfg_attr(not(feature = "inject"), allow(dead_code))]
const SALT_SOLVER: u64 = 0x736f_6c76_6572_3a31; // "solver:1"
#[cfg_attr(not(feature = "inject"), allow(dead_code))]
const SALT_TASK: u64 = 0x7461_736b_3a32_3232; // "task:222"

/// The enumerated I/O crash/fault points of the storage layer
/// (`circ-store`). Each names one primitive operation of the durable
/// write protocol or its surroundings; a [`FaultPlan`] can be armed to
/// fail exactly the *n*-th occurrence of one point, which is how the
/// torture harness simulates a crash at every stage of a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultPoint {
    /// Writing the temp file's bytes (fails after a partial write, so
    /// a truncated `*.tmp` is left behind, as a real crash would).
    TmpWrite,
    /// `fsync` of the fully written temp file.
    FileSync,
    /// The atomic rename of temp over the destination.
    Rename,
    /// `fsync` of the parent directory after the rename.
    DirSync,
    /// Acquiring the cache directory's advisory lock.
    LockAcquire,
    /// Appending one line to the batch journal.
    JournalAppend,
    /// Disk-full: unlike the crash points above, this one is *sticky*
    /// — every write-class operation from the armed occurrence onward
    /// fails with a storage-full error, the way a full disk keeps
    /// rejecting writes.
    NoSpace,
    /// Reading a snapshot back (fails after yielding a truncated
    /// prefix, which the checksum envelope must reject).
    Read,
}

impl IoFaultPoint {
    /// Every point, in a stable order the torture harness enumerates.
    pub const ALL: [IoFaultPoint; 8] = [
        IoFaultPoint::TmpWrite,
        IoFaultPoint::FileSync,
        IoFaultPoint::Rename,
        IoFaultPoint::DirSync,
        IoFaultPoint::LockAcquire,
        IoFaultPoint::JournalAppend,
        IoFaultPoint::NoSpace,
        IoFaultPoint::Read,
    ];

    /// Stable human-readable name (used in logs and harness output).
    pub fn name(self) -> &'static str {
        match self {
            IoFaultPoint::TmpWrite => "tmp-write",
            IoFaultPoint::FileSync => "file-sync",
            IoFaultPoint::Rename => "rename",
            IoFaultPoint::DirSync => "dir-sync",
            IoFaultPoint::LockAcquire => "lock-acquire",
            IoFaultPoint::JournalAppend => "journal-append",
            IoFaultPoint::NoSpace => "no-space",
            IoFaultPoint::Read => "read",
        }
    }

    #[cfg_attr(not(feature = "inject"), allow(dead_code))]
    fn ix(self) -> usize {
        match self {
            IoFaultPoint::TmpWrite => 0,
            IoFaultPoint::FileSync => 1,
            IoFaultPoint::Rename => 2,
            IoFaultPoint::DirSync => 3,
            IoFaultPoint::LockAcquire => 4,
            IoFaultPoint::JournalAppend => 5,
            IoFaultPoint::NoSpace => 6,
            IoFaultPoint::Read => 7,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan that never injects anything (the default).
    pub fn inert() -> FaultPlan {
        FaultPlan { inner: None }
    }

    /// A plan seeded with `seed` and all rates zero; arm individual
    /// faults with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(FaultInner {
                seed,
                solver_unknown_per_mille: 0,
                task_panic_per_mille: 0,
                stall: None,
                io_fault: None,
                solver_events: AtomicU64::new(0),
                task_events: AtomicU64::new(0),
                io_events: Default::default(),
                stalled: AtomicBool::new(false),
                injected: AtomicU64::new(0),
            })),
        }
    }

    fn rebuild(&self, f: impl FnOnce(&mut FaultSpec)) -> FaultPlan {
        let old = self.inner.as_deref();
        let mut spec = FaultSpec {
            seed: old.map_or(0, |o| o.seed),
            solver_unknown_per_mille: old.map_or(0, |o| o.solver_unknown_per_mille),
            task_panic_per_mille: old.map_or(0, |o| o.task_panic_per_mille),
            stall: old.and_then(|o| o.stall),
            io_fault: old.and_then(|o| o.io_fault),
        };
        f(&mut spec);
        FaultPlan {
            inner: Some(Arc::new(FaultInner {
                seed: spec.seed,
                solver_unknown_per_mille: spec.solver_unknown_per_mille.min(1000),
                task_panic_per_mille: spec.task_panic_per_mille.min(1000),
                stall: spec.stall,
                io_fault: spec.io_fault,
                solver_events: AtomicU64::new(0),
                task_events: AtomicU64::new(0),
                io_events: Default::default(),
                stalled: AtomicBool::new(false),
                injected: AtomicU64::new(0),
            })),
        }
    }

    /// A copy of this plan with the same rates, the seed xor'd with
    /// `salt`, and fresh per-site event counters. This is how a batch
    /// supervisor derives *per-file, per-attempt* schedules from one
    /// template plan: seeding with `file_digest ^ attempt` makes each
    /// file's schedule a pure function of its content, independent of
    /// scheduling order — which is what keeps fault-heavy batch runs
    /// jobs-invariant — while still giving retry attempts genuinely
    /// different (but replayable) schedules. An inert plan stays
    /// inert.
    pub fn reseeded(&self, salt: u64) -> FaultPlan {
        if self.inner.is_none() {
            return FaultPlan::inert();
        }
        self.rebuild(|s| s.seed ^= salt)
    }

    /// Make the solver answer `Unknown` for `per_mille`‰ of queries.
    pub fn with_solver_unknown(&self, per_mille: u16) -> FaultPlan {
        self.rebuild(|s| s.solver_unknown_per_mille = per_mille)
    }

    /// Make worker tasks panic for `per_mille`‰ of tasks.
    pub fn with_task_panic(&self, per_mille: u16) -> FaultPlan {
        self.rebuild(|s| s.task_panic_per_mille = per_mille)
    }

    /// Stall the first budget poll for `dur` (simulates a phase
    /// blowing straight past its deadline between polls).
    pub fn with_stall(&self, dur: Duration) -> FaultPlan {
        self.rebuild(|s| s.stall = Some(dur))
    }

    /// Fail the `nth` (0-based) occurrence of I/O crash point `point`.
    /// [`IoFaultPoint::NoSpace`] is sticky — it fails occurrence `nth`
    /// and every write-class operation after it; the other points fire
    /// exactly once, simulating a crash at that step.
    pub fn with_io_fault(&self, point: IoFaultPoint, nth: u64) -> FaultPlan {
        self.rebuild(|s| s.io_fault = Some((point, nth)))
    }

    #[cfg(feature = "inject")]
    fn fire(&self, salt: u64, counter: impl Fn(&FaultInner) -> &AtomicU64, rate: u16) -> bool {
        let Some(inner) = self.inner.as_deref() else { return false };
        if rate == 0 {
            return false;
        }
        let i = counter(inner).fetch_add(1, Ordering::Relaxed);
        let hit = splitmix64(inner.seed ^ salt ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000
            < u64::from(rate);
        if hit {
            inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should this solver query be answered `Unknown`? Always `false`
    /// without the `inject` feature.
    #[must_use]
    pub fn solver_unknown(&self) -> bool {
        #[cfg(feature = "inject")]
        {
            self.fire(
                SALT_SOLVER,
                |i| &i.solver_events,
                self.inner.as_deref().map_or(0, |i| i.solver_unknown_per_mille),
            )
        }
        #[cfg(not(feature = "inject"))]
        {
            false
        }
    }

    /// Should this worker task panic? Always `false` without the
    /// `inject` feature.
    #[must_use]
    pub fn task_panic(&self) -> bool {
        #[cfg(feature = "inject")]
        {
            self.fire(
                SALT_TASK,
                |i| &i.task_events,
                self.inner.as_deref().map_or(0, |i| i.task_panic_per_mille),
            )
        }
        #[cfg(not(feature = "inject"))]
        {
            false
        }
    }

    /// Should this occurrence of I/O crash point `point` fail? Always
    /// `false` without the `inject` feature. Each point keeps its own
    /// event counter, so "the `nth` rename" is well defined no matter
    /// how many writes happen in between; the armed point fires at
    /// exactly occurrence `nth` (or, for the sticky
    /// [`IoFaultPoint::NoSpace`], at every occurrence from `nth` on).
    #[must_use]
    pub fn io_fail(&self, point: IoFaultPoint) -> bool {
        #[cfg(feature = "inject")]
        {
            let Some(inner) = self.inner.as_deref() else { return false };
            let Some((armed, nth)) = inner.io_fault else { return false };
            if armed != point {
                return false;
            }
            let i = inner.io_events[point.ix()].fetch_add(1, Ordering::Relaxed);
            let hit = if armed == IoFaultPoint::NoSpace { i >= nth } else { i == nth };
            if hit {
                inner.injected.fetch_add(1, Ordering::Relaxed);
            }
            hit
        }
        #[cfg(not(feature = "inject"))]
        {
            let _ = point;
            false
        }
    }

    /// Sleep for the configured stall duration, once per plan. No-op
    /// without the `inject` feature or when no stall is armed.
    pub fn maybe_stall(&self) {
        #[cfg(feature = "inject")]
        if let Some(inner) = self.inner.as_deref() {
            if let Some(dur) = inner.stall {
                if !inner.stalled.swap(true, Ordering::Relaxed) {
                    inner.injected.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(dur);
                }
            }
        }
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }
}

struct FaultSpec {
    seed: u64,
    solver_unknown_per_mille: u16,
    task_panic_per_mille: u16,
    stall: Option<Duration>,
    io_fault: Option<(IoFaultPoint, u64)>,
}

/// A deterministic, budget-aware retry schedule for *transient*
/// failures (contained panics, isolated-child crashes, injected
/// faults). The policy is a pure function of `(seed, key, attempt)`,
/// so a batch replays the same backoffs regardless of worker
/// scheduling; keying by the input's content digest keeps the
/// schedule independent of file order.
///
/// Backoff for attempt `a` (1-based; attempt 1 is the original try)
/// is a seeded draw from `[0, base · 2^(a−1)]`, additionally capped
/// at a quarter of the unit's *remaining* budget — a file with 200 ms
/// left never sleeps 500 ms before its last try, and a file with no
/// budget left retries immediately or not at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Base backoff; attempt `a`'s cap is `base · 2^(a−1)`.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// The do-nothing policy: one attempt, no retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, seed: 0, base_backoff: Duration::ZERO }
    }

    /// A policy allowing `retries` retries (so `retries + 1` total
    /// attempts) with the default 25 ms base backoff.
    pub fn with_retries(retries: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            seed,
            base_backoff: Duration::from_millis(25),
        }
    }

    /// Whether another attempt is allowed after `attempt` (1-based)
    /// attempts have already run.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// The deterministic backoff to sleep before attempt
    /// `attempt + 1`, given that attempt `attempt` just failed.
    /// `remaining` is the unit's unspent wall-clock budget (`None` =
    /// unbounded).
    pub fn backoff(&self, key: u64, attempt: u32, remaining: Option<Duration>) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let mut cap = self.base_backoff.saturating_mul(1 << exp);
        if let Some(remaining) = remaining {
            cap = cap.min(remaining / 4);
        }
        let cap_ms = cap.as_millis() as u64;
        if cap_ms == 0 {
            return Duration::ZERO;
        }
        let draw = splitmix64(self.seed ^ key ^ u64::from(attempt).wrapping_mul(0x9E37_79B9));
        Duration::from_millis(draw % (cap_ms + 1))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carving_splits_evenly_and_keeps_unbounded() {
        assert_eq!(carve_timeout(None, 7), None);
        assert_eq!(carve_mem_limit(None, 7), None);
        assert_eq!(
            carve_timeout(Some(Duration::from_secs(10)), 4),
            Some(Duration::from_millis(2500))
        );
        assert_eq!(carve_mem_limit(Some(1 << 20), 4), Some(1 << 18));
        // Degenerate unit counts do not divide by zero.
        assert_eq!(carve_timeout(Some(Duration::from_secs(1)), 0), Some(Duration::from_secs(1)));
        assert_eq!(carve_mem_limit(Some(64), 0), Some(64));
        // A budget too small to slice yields honest near-zero slices.
        assert_eq!(carve_mem_limit(Some(3), 4), Some(0));
    }

    #[test]
    fn envelope_carves_memory_but_not_wall_clock() {
        let env =
            Envelope { timeout: Some(Duration::from_secs(30)), mem_limit_bytes: Some(1 << 30) };
        let (t, m) = env.carve(4);
        assert_eq!(t, Some(Duration::from_secs(30)), "deadlines are per-request clocks");
        assert_eq!(m, Some(1 << 28), "memory slices coexist and must sum to the envelope");
        // Unbounded axes stay unbounded; degenerate concurrency is safe.
        let (t, m) = Envelope::default().carve(0);
        assert_eq!((t, m), (None, None));
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        b.charge(u64::MAX / 2);
        for _ in 0..100 {
            assert_eq!(b.check(), Ok(()));
        }
        assert_eq!(b.polls(), 100);
        assert_eq!(b.charged_bytes(), u64::MAX / 2);
    }

    #[test]
    fn deadline_fires_after_timeout() {
        let b = Budget::with_timeout(Duration::from_millis(10));
        assert_eq!(b.check(), Ok(()));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.check(), Err(Exhausted::Deadline { limit: Duration::from_millis(10) }));
    }

    #[test]
    fn memory_ceiling_fires_on_overdraft() {
        let b = Budget::with_mem_limit(1000);
        b.charge(900);
        assert_eq!(b.check(), Ok(()));
        b.charge(200);
        assert_eq!(
            b.check(),
            Err(Exhausted::MemoryLimit { limit_bytes: 1000, charged_bytes: 1100 })
        );
    }

    #[test]
    fn charges_are_shared_across_clones() {
        let b = Budget::with_mem_limit(100);
        let clone = b.clone();
        clone.charge(200);
        assert!(matches!(b.check(), Err(Exhausted::MemoryLimit { .. })));
    }

    #[test]
    fn cancellation_is_observed_at_the_next_poll() {
        let token = CancelToken::new();
        let b = Budget::new(None, None, token.clone(), FaultPlan::inert());
        assert_eq!(b.check(), Ok(()));
        token.cancel();
        assert_eq!(b.check(), Err(Exhausted::Cancelled));
        assert!(b.token().is_cancelled());
    }

    #[test]
    fn exhausted_messages_are_descriptive() {
        let d = Exhausted::Deadline { limit: Duration::from_secs(2) };
        assert!(d.to_string().contains("2.0s"));
        let m = Exhausted::MemoryLimit { limit_bytes: 10, charged_bytes: 20 };
        assert!(m.to_string().contains("20 bytes charged"));
        assert!(Exhausted::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }

    #[test]
    fn retry_policy_bounds_attempts_and_backoffs() {
        let none = RetryPolicy::none();
        assert!(!none.should_retry(1));
        assert_eq!(none.backoff(1, 1, None), Duration::ZERO);

        let p = RetryPolicy::with_retries(2, 42);
        assert_eq!(p.max_attempts, 3);
        assert!(p.should_retry(1));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));

        // Deterministic: same (seed, key, attempt) ⇒ same backoff;
        // different keys draw independently.
        assert_eq!(p.backoff(7, 1, None), p.backoff(7, 1, None));
        // Bounded by the exponential cap.
        for attempt in 1..=4u32 {
            let cap = p.base_backoff * (1 << (attempt - 1));
            assert!(p.backoff(7, attempt, None) <= cap, "attempt {attempt} exceeded cap");
        }
        // Budget-aware: a quarter of the remaining budget caps the draw.
        let tight = Duration::from_millis(8);
        assert!(p.backoff(7, 4, Some(tight)) <= tight / 4);
        assert_eq!(p.backoff(7, 4, Some(Duration::ZERO)), Duration::ZERO);
    }

    #[test]
    fn reseeded_plans_are_independent_but_replayable() {
        assert!(FaultPlan::inert().reseeded(99).inner.is_none(), "inert must stay inert");
        let template = FaultPlan::seeded(5).with_task_panic(500);
        let schedule =
            |plan: &FaultPlan| -> Vec<bool> { (0..32).map(|_| plan.task_panic()).collect() };
        #[cfg(feature = "inject")]
        {
            let a1 = schedule(&template.reseeded(1));
            let a1_again = schedule(&template.reseeded(1));
            assert_eq!(a1, a1_again, "same salt must replay exactly");
            let a2 = schedule(&template.reseeded(2));
            assert_ne!(a1, a2, "different salts should diverge");
        }
        #[cfg(not(feature = "inject"))]
        {
            assert!(schedule(&template.reseeded(1)).iter().all(|&x| !x));
        }
    }

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::inert();
        for _ in 0..100 {
            assert!(!p.solver_unknown());
            assert!(!p.task_panic());
        }
        p.maybe_stall();
        assert_eq!(p.injected(), 0);
    }

    #[cfg(not(feature = "inject"))]
    #[test]
    fn armed_plan_is_inert_without_the_feature() {
        let p = FaultPlan::seeded(7).with_solver_unknown(1000).with_task_panic(1000);
        assert!(!p.solver_unknown());
        assert!(!p.task_panic());
        assert_eq!(p.injected(), 0);
    }

    #[cfg(feature = "inject")]
    #[test]
    fn armed_plan_fires_deterministically() {
        let run = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::seeded(seed).with_solver_unknown(500);
            (0..64).map(|_| p.solver_unknown()).collect()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(a.iter().any(|&x| x), "500 per mille should fire within 64 events");
        assert!(a.iter().any(|&x| !x), "500 per mille should also skip within 64 events");
        let c = run(12);
        assert_ne!(a, c, "different seeds should give different schedules");
    }

    #[cfg(feature = "inject")]
    #[test]
    fn full_rate_always_fires_and_counts() {
        let p = FaultPlan::seeded(3).with_task_panic(1000);
        for _ in 0..10 {
            assert!(p.task_panic());
        }
        assert_eq!(p.injected(), 10);
        // Solver stream is independent and unarmed.
        assert!(!p.solver_unknown());
    }

    #[cfg(feature = "inject")]
    #[test]
    fn stall_fires_once_and_trips_the_deadline() {
        let plan = FaultPlan::seeded(1).with_stall(Duration::from_millis(30));
        let b =
            Budget::new(Some(Duration::from_millis(10)), None, CancelToken::new(), plan.clone());
        // First poll absorbs the stall and then notices the deadline.
        assert!(matches!(b.check(), Err(Exhausted::Deadline { .. })));
        assert_eq!(plan.injected(), 1);
        // The stall is one-shot.
        let before = Instant::now();
        let _ = b.check();
        assert!(before.elapsed() < Duration::from_millis(20));
        assert_eq!(plan.injected(), 1);
    }
}
