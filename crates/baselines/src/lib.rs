//! Baseline race detectors the CIRC paper positions itself against
//! (§1, §6): a dynamic lockset checker in the style of **Eraser**
//! (Savage et al., TOCS 1997) and a **flow-based static analysis** in
//! the style of the nesC compiler's race checker (Gay et al., PLDI
//! 2003).
//!
//! Both baselines treat the program's `atomic` sections as the only
//! synchronization they understand. That is exactly the paper's
//! point: programs that synchronize through *state variables*
//! (test-and-set flags, conditional locking, interrupt bits) are
//! race-free but get **flagged anyway** — false positives that CIRC's
//! path- and interleaving-sensitive analysis avoids.
//!
//! * [`flow_check`] — the static baseline: every access to a shared
//!   (written) global must occur inside an atomic section.
//! * [`eraser`] — the dynamic baseline: random schedules are executed
//!   on the concrete interpreter while the Eraser state machine
//!   tracks, per variable, the candidate set of protecting "locks"
//!   (here: the atomic section).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod lockset;
mod sched;

pub use flow::{flow_check, FlowFinding, FlowReport};
pub use lockset::{eraser, EraserReport, VarState};
pub use sched::{random_run, RunRecord};
