//! Random scheduling of concrete executions, the substrate of the
//! dynamic baseline.

use circ_ir::{ConcreteState, EdgeId, Interp, MtProgram, SchedChoice, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One executed schedule plus which visited states exhibited a race.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The executed schedule.
    pub steps: Vec<(ThreadId, EdgeId, i64)>,
    /// States where the §4.1 race condition held. Position `p` is the
    /// state after `p` executed steps: `0` is the initial state and
    /// `steps.len()` the final one — every visited state is checked
    /// exactly once, including the state after the last step.
    pub race_positions: Vec<usize>,
    /// The final state.
    pub final_state: ConcreteState,
    /// Set when the program is malformed for concrete execution
    /// (e.g. `nondet()` in an assume guard): no steps were taken and
    /// this message says why.
    pub diagnostic: Option<String>,
}

/// Executes up to `max_steps` random steps of an `n_threads`
/// instantiation, resolving `nondet()` with small random integers.
/// Records every visited race state (the dynamic tools' ground
/// truth).
pub fn random_run(program: &MtProgram, n_threads: usize, max_steps: usize, seed: u64) -> RunRecord {
    let interp = Interp::new(program.clone(), n_threads);
    if let Some(diag) = interp.malformed() {
        return RunRecord {
            steps: Vec::new(),
            race_positions: Vec::new(),
            final_state: interp.initial(),
            diagnostic: Some(diag),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = interp.initial();
    let mut steps = Vec::new();
    let mut race_positions = Vec::new();
    loop {
        // Check before deciding whether to stop, so the state reached
        // by the final step (budget exhausted or deadlock) is covered
        // too — a race first reachable there must not be dropped.
        if interp.race(&s).is_some() {
            race_positions.push(steps.len());
        }
        if steps.len() >= max_steps {
            break;
        }
        let enabled = interp.enabled(&s);
        if enabled.is_empty() {
            break;
        }
        let (t, e) = enabled[rng.gen_range(0..enabled.len())];
        let nondet = rng.gen_range(-2i64..=2);
        steps.push((t, e, nondet));
        s = interp.step(&s, SchedChoice { thread: t, edge: e, nondet });
    }
    RunRecord { steps, race_positions, final_state: s, diagnostic: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::figure1_cfa;

    #[test]
    fn runs_are_reproducible_by_seed() {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let a = random_run(&p, 3, 200, 42);
        let b = random_run(&p, 3, 200, 42);
        assert_eq!(a.steps, b.steps);
        let c = random_run(&p, 3, 200, 43);
        // different seed: almost surely a different schedule
        assert_ne!(a.steps, c.steps);
    }

    #[test]
    fn malformed_program_yields_diagnostic_not_panic() {
        use circ_ir::{BoolExpr, CfaBuilder, Expr, Op};
        let mut b = CfaBuilder::new("bad");
        let x = b.global("x");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assume(BoolExpr::eq(Expr::Nondet, Expr::var(x))), l1);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let run = random_run(&p, 2, 100, 0);
        assert!(run.steps.is_empty());
        let diag = run.diagnostic.expect("malformed program must be diagnosed");
        assert!(diag.contains("nondet() in assume guard"), "{diag}");
    }

    #[test]
    fn race_in_final_state_is_reported() {
        use circ_ir::{CfaBuilder, Expr, Op};
        // g is written only from l1; with max_steps = 2 the one racy
        // state (both threads at l1, writes pending) is the state
        // *after* the last executed step. A loop that only tests
        // pre-step states silently drops it.
        let mut b = CfaBuilder::new("tail");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.edge(l1, Op::assign(g, Expr::int(1)), l2);
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        let p = MtProgram::new(cfa, g);
        let hit = (0..64).any(|seed| {
            let run = random_run(&p, 2, 2, seed);
            run.steps.len() == 2 && run.race_positions == vec![2]
        });
        assert!(hit, "some 2-step schedule must end in the race state and report it");
    }

    #[test]
    fn figure1_runs_never_hit_race_states() {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        for seed in 0..20 {
            let run = random_run(&p, 3, 500, seed);
            assert!(run.race_positions.is_empty(), "seed {seed} hit a race");
        }
    }
}
