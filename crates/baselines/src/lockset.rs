//! The Eraser-style dynamic lockset race detector.
//!
//! Eraser's discipline: every shared variable must be consistently
//! protected by some lock. Per variable, a candidate set `C(v)` of
//! locks starts full and is intersected with the executing thread's
//! held locks at each access; a state machine (Virgin → Exclusive →
//! Shared → Shared-Modified) postpones warnings until the variable is
//! genuinely shared and written. The only "lock" in NesL programs is
//! the atomic section, so any state-variable idiom drains `C(v)` and
//! draws a warning — a false positive whenever the idiom is actually
//! sound, which is the CIRC paper's motivating observation.

use crate::sched::random_run;
use circ_ir::{MtProgram, ThreadId, Var};
use std::collections::{BTreeMap, BTreeSet};

/// The Eraser per-variable ownership state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread only.
    Exclusive(ThreadId),
    /// Read by several threads, never written after sharing.
    Shared,
    /// Written while shared: lockset violations are reported.
    SharedModified,
}

/// Aggregated result of the dynamic checker.
#[derive(Debug, Clone, Default)]
pub struct EraserReport {
    /// Variables warned about (empty candidate lockset while
    /// shared-modified).
    pub flagged: BTreeSet<Var>,
    /// Final ownership state per observed variable.
    pub states: BTreeMap<Var, VarState>,
    /// Total accesses monitored.
    pub accesses: usize,
    /// Schedules executed.
    pub runs: usize,
    /// Set when the program could not be executed (malformed for the
    /// concrete semantics); no schedule ran.
    pub diagnostic: Option<String>,
}

impl EraserReport {
    /// Whether `v` drew a warning.
    pub fn flags(&self, v: Var) -> bool {
        self.flagged.contains(&v)
    }
}

/// The single lock Eraser can see in NesL programs: the atomic
/// section.
const ATOMIC_LOCK: u32 = 0;

/// Runs the Eraser algorithm over `runs` random schedules of an
/// `n_threads` instantiation (`max_steps` steps each; seeds
/// `seed_base..seed_base + runs`).
pub fn eraser(
    program: &MtProgram,
    n_threads: usize,
    max_steps: usize,
    runs: u64,
    seed_base: u64,
) -> EraserReport {
    let cfa = program.cfa();
    let mut report = EraserReport::default();
    // Candidate locksets persist across runs (monitoring one logical
    // program).
    let mut candidates: BTreeMap<Var, BTreeSet<u32>> = BTreeMap::new();
    let mut states: BTreeMap<Var, VarState> = BTreeMap::new();

    for run_ix in 0..runs {
        let run = random_run(program, n_threads, max_steps, seed_base + run_ix);
        if let Some(diag) = run.diagnostic {
            // A malformed program executed zero monitored steps: record
            // the diagnostic without counting the aborted schedule.
            report.diagnostic = Some(diag);
            break;
        }
        report.runs += 1;
        for &(t, eid, _) in &run.steps {
            let edge = cfa.edge(eid);
            // The atomic "lock" is held for an access iff the edge
            // *starts* at an atomic location: the concrete semantics
            // (`Interp::race`) judges protection at the source pc, so
            // an access on an edge entering an atomic section still
            // executes unprotected. Crediting the destination would
            // under-report — unsound for a pre-filter.
            let held: BTreeSet<u32> =
                if cfa.is_atomic(edge.src) { [ATOMIC_LOCK].into() } else { BTreeSet::new() };
            let mut accesses: Vec<(Var, bool)> = Vec::new();
            for r in edge.op.reads() {
                if cfa.is_global(r) {
                    accesses.push((r, false));
                }
            }
            if let Some(w) = edge.op.written() {
                if cfa.is_global(w) {
                    accesses.push((w, true));
                }
            }
            for (v, is_write) in accesses {
                report.accesses += 1;
                let state = states.entry(v).or_insert(VarState::Virgin);
                *state = match (*state, is_write) {
                    (VarState::Virgin, _) => VarState::Exclusive(t),
                    (VarState::Exclusive(owner), _) if owner == t => VarState::Exclusive(t),
                    (VarState::Exclusive(_), false) => VarState::Shared,
                    (VarState::Exclusive(_), true) => VarState::SharedModified,
                    (VarState::Shared, false) => VarState::Shared,
                    (VarState::Shared, true) => VarState::SharedModified,
                    (VarState::SharedModified, _) => VarState::SharedModified,
                };
                // Candidate set maintenance: refined from the second
                // thread onwards (Eraser's initialization heuristic).
                match *state {
                    VarState::Virgin | VarState::Exclusive(_) => {}
                    _ => {
                        let c = candidates.entry(v).or_insert_with(|| [ATOMIC_LOCK].into());
                        *c = c.intersection(&held).copied().collect();
                        if *state == VarState::SharedModified && c.is_empty() {
                            report.flagged.insert(v);
                        }
                    }
                }
            }
        }
    }
    report.states = states;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, CfaBuilder, Expr, Op};

    fn fig1() -> MtProgram {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        MtProgram::new(cfa, x)
    }

    #[test]
    fn figure1_false_positive_on_x() {
        // The program is race-free (CIRC proves it), yet Eraser flags
        // x: it is written outside any atomic section and no lockset
        // protects it.
        let p = fig1();
        let report = eraser(&p, 3, 400, 10, 7);
        let x = p.cfa().var_by_name("x").unwrap();
        assert!(report.flags(x), "Eraser must false-positive on x");
        assert!(report.accesses > 0);
    }

    #[test]
    fn atomic_protected_variable_not_flagged() {
        let mut b = CfaBuilder::new("ok");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.mark_atomic(l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.mark_atomic(l2);
        let l3 = b.fresh_loc();
        b.edge(l2, Op::skip(), l3);
        b.edge(l3, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        let p = MtProgram::new(cfa, g);
        let report = eraser(&p, 3, 400, 10, 3);
        assert!(!report.flags(g), "consistently atomic accesses stay clean");
        assert!(matches!(report.states.get(&g), Some(VarState::SharedModified)));
    }

    #[test]
    fn entering_edge_access_runs_unprotected() {
        // The only write to g sits on the edge entering the atomic
        // section; per the concrete semantics it executes while the
        // thread is still at the non-atomic source, so Eraser must see
        // an empty held set there and flag g once it is shared.
        let mut b = CfaBuilder::new("enter");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.mark_atomic(l2);
        b.edge(l2, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        let p = MtProgram::new(cfa, g);
        let report = eraser(&p, 3, 400, 10, 5);
        assert!(report.flags(g), "unprotected entering-edge write must be flagged");
    }

    #[test]
    fn malformed_program_counts_zero_runs() {
        use circ_ir::{BoolExpr, Expr as E};
        // nondet() in an assume guard makes the program unexecutable:
        // the diagnostic must be surfaced without counting a schedule
        // that monitored zero steps.
        let mut b = CfaBuilder::new("bad");
        let x = b.global("x");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assume(BoolExpr::eq(E::Nondet, E::var(x))), l1);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let report = eraser(&p, 2, 100, 5, 0);
        assert!(report.diagnostic.is_some());
        assert_eq!(report.runs, 0, "an aborted schedule was never monitored");
        assert_eq!(report.accesses, 0);
    }

    #[test]
    fn single_thread_never_flags() {
        let p = fig1();
        let report = eraser(&p, 1, 400, 5, 1);
        assert!(report.flagged.is_empty(), "exclusive ownership draws no warning");
    }

    #[test]
    fn read_shared_variable_not_flagged() {
        // Globals that are only read stay in Shared.
        let mut b = CfaBuilder::new("ro");
        let g = b.global("g");
        let l = b.local("l");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assign(l, Expr::var(g)), l1);
        b.edge(l1, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        let p = MtProgram::new(cfa, g);
        let report = eraser(&p, 3, 300, 5, 1);
        assert!(!report.flags(g));
        assert_eq!(report.states.get(&g), Some(&VarState::Shared));
    }
}
