//! The flow-based static race checker (nesC-compiler style).
//!
//! The nesC compiler's analysis (§6 of the CIRC paper): find every
//! global variable that can be accessed concurrently (here: *every*
//! global of a symmetric unbounded-thread program is), and require
//! each of its accesses to occur within an atomic section. No data
//! flow, no path sensitivity — the check is sound but flags every
//! state-variable synchronization idiom.

use circ_ir::{Cfa, Edge, Var};
use std::collections::BTreeSet;

/// One flagged access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFinding {
    /// The variable with a potentially racy access.
    pub var: Var,
    /// Index of the offending edge in the CFA.
    pub edge_index: usize,
    /// Whether the offending access is a write.
    pub is_write: bool,
}

/// Result of [`flow_check`].
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// All findings, in edge order.
    pub findings: Vec<FlowFinding>,
}

impl FlowReport {
    /// The distinct flagged variables.
    pub fn flagged_vars(&self) -> BTreeSet<Var> {
        self.findings.iter().map(|f| f.var).collect()
    }

    /// Whether `v` was flagged.
    pub fn flags(&self, v: Var) -> bool {
        self.findings.iter().any(|f| f.var == v)
    }
}

/// Is this edge "inside" an atomic section for protection purposes?
/// Decided against the concrete semantics (`Interp::race`, §4.1): the
/// race condition is evaluated at thread *locations*, and a thread
/// about to execute `e` sits at `e.src` — so only an atomic source
/// protects the access. An edge *entering* an atomic section executes
/// while the thread is still at its non-atomic source, where a second
/// thread can hold a conflicting pending access (the frontend lowers
/// `atomic { … }` with a dedicated skip edge so every body access
/// starts atomic, but hand-built CFAs do place accesses on entering
/// edges — `figure1_cfa`'s `old := state`). Counting `e.dst` here
/// would under-report, which is unsound for a safety pre-filter.
fn edge_atomic(cfa: &Cfa, e: &Edge) -> bool {
    cfa.is_atomic(e.src)
}

/// Runs the flow-based analysis on a thread template. A global is
/// *shared-mutable* when some edge writes it; every read or write of
/// a shared-mutable global outside an atomic section is reported.
pub fn flow_check(cfa: &Cfa) -> FlowReport {
    // globals written anywhere
    let written: BTreeSet<Var> =
        cfa.edges().iter().filter_map(|e| e.op.written()).filter(|v| cfa.is_global(*v)).collect();
    let mut report = FlowReport::default();
    for (ix, e) in cfa.edges().iter().enumerate() {
        if edge_atomic(cfa, e) {
            continue;
        }
        if let Some(w) = e.op.written() {
            if written.contains(&w) {
                report.findings.push(FlowFinding { var: w, edge_index: ix, is_write: true });
            }
        }
        for r in e.op.reads() {
            if cfa.is_global(r) && written.contains(&r) {
                report.findings.push(FlowFinding { var: r, edge_index: ix, is_write: false });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, CfaBuilder, Expr, Op};

    #[test]
    fn figure1_false_positive() {
        // The paper's safe test-and-set idiom: the flow baseline
        // flags x (and state) because the final accesses happen
        // outside the atomic block.
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let report = flow_check(&cfa);
        assert!(report.flags(x), "flow baseline must false-positive on x");
    }

    #[test]
    fn atomic_only_accesses_pass() {
        let mut b = CfaBuilder::new("ok");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.mark_atomic(l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.mark_atomic(l2);
        let l3 = b.fresh_loc();
        b.edge(l2, Op::skip(), l3);
        b.edge(l3, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        assert!(!flow_check(&cfa).flags(g));
    }

    #[test]
    fn read_only_globals_not_flagged() {
        let mut b = CfaBuilder::new("ro");
        let g = b.global("g");
        let l = b.local("l");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assign(l, Expr::var(g)), l1);
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        assert!(!flow_check(&cfa).flags(g), "never-written globals are race-free");
    }

    #[test]
    fn locals_never_flagged() {
        let mut b = CfaBuilder::new("loc");
        let l = b.local("l");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assign(l, Expr::var(l) + Expr::int(1)), l1);
        let cfa = b.build();
        assert!(flow_check(&cfa).findings.is_empty());
    }

    #[test]
    fn entering_edge_access_is_not_protected() {
        // A write on the edge *entering* an atomic section executes
        // while the thread still sits at the non-atomic source
        // location (`Interp::race` judges protection at pcs), so two
        // threads can both hold the pending write there — a real race
        // the checker must flag to stay sound-for-safety.
        let mut b = CfaBuilder::new("enter");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.mark_atomic(l2);
        b.edge(l2, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        assert!(flow_check(&cfa).flags(g), "entering-edge write must be flagged");
    }

    #[test]
    fn findings_report_edges_and_kinds() {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let report = flow_check(&cfa);
        let xw: Vec<_> = report.findings.iter().filter(|f| f.var == x && f.is_write).collect();
        assert_eq!(xw.len(), 1, "one non-atomic write to x (x := x + 1)");
        let xr: Vec<_> = report.findings.iter().filter(|f| f.var == x && !f.is_write).collect();
        assert_eq!(xr.len(), 1, "one non-atomic read of x (in x := x + 1)");
    }
}
