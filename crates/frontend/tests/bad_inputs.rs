//! Malformed-input robustness: `compile` must return `Err`, never
//! panic, on any truncation of any real corpus program and on
//! adversarial synthetic inputs (deep nesting, lone tokens, empty
//! files). The CLI maps `Err` to exit 65; a panic would instead
//! surface as exit 101 and a stack trace — a bug, not a diagnostic.

use std::fs;
use std::path::PathBuf;

/// Every `.nesl` file in the repo: the `examples/` corpus plus the
/// nesC-derived Table 1 models.
fn corpus() -> Vec<(PathBuf, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for dir in [root.join("../../examples"), root.join("../nesc/models")] {
        let mut paths: Vec<_> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "nesl"))
            .collect();
        paths.sort();
        for p in paths {
            let src = fs::read_to_string(&p).unwrap();
            out.push((p, src));
        }
    }
    assert!(out.len() >= 10, "corpus went missing: {} files", out.len());
    out
}

#[test]
fn whole_corpus_compiles() {
    for (path, src) in corpus() {
        circ_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("{} no longer compiles: {e}", path.display()));
    }
}

#[test]
fn every_truncation_errors_cleanly() {
    for (_path, src) in corpus() {
        for (ix, _) in src.char_indices() {
            // Any prefix is either a smaller valid program or a clean
            // CompileError; the assertion is simply "no panic".
            let _ = circ_frontend::compile(&src[..ix]);
        }
    }
}

#[test]
fn empty_and_whitespace_inputs_error_not_panic() {
    for src in ["", " ", "\n\n", "// only a comment\n", "/* block */"] {
        assert!(circ_frontend::compile(src).is_err(), "accepted {src:?}");
    }
}

#[test]
fn deep_nesting_is_rejected_not_a_stack_overflow() {
    // 10k levels would overflow the parser's recursion long before
    // the depth guard existed; now each must come back as Err.
    let parens = format!("thread t {{ x = {}1{}; }}", "(".repeat(10_000), ")".repeat(10_000));
    assert!(circ_frontend::compile(&parens).is_err());

    let nots = format!("thread t {{ if ({}true) {{ skip; }} }}", "!".repeat(10_000));
    assert!(circ_frontend::compile(&nots).is_err());

    let blocks = format!("thread t {{ {} skip; {} }}", "loop {".repeat(10_000), "}".repeat(10_000));
    assert!(circ_frontend::compile(&blocks).is_err());

    let minuses = format!("thread t {{ x = {}1; }}", "-".repeat(10_000));
    assert!(circ_frontend::compile(&minuses).is_err());

    // Moderate nesting stays within the documented limit and works.
    let ok = format!("global int x; thread t {{ x = {}1{}; }}", "(".repeat(50), ")".repeat(50));
    assert!(circ_frontend::compile(&ok).is_ok());
}

#[test]
fn lone_tokens_and_garbage_error_cleanly() {
    for src in [
        "thread",
        "global",
        "global int",
        "#race",
        "fn",
        "fn f(",
        "thread t {",
        "thread t { x = ",
        "thread t { if (",
        "}",
        ";",
        "((((",
        "int x;",
        "thread t { } thread t { }",
        "\u{0} \u{7f}",
        "global int x; #race y; thread t { skip; }",
    ] {
        assert!(circ_frontend::compile(src).is_err(), "accepted {src:?}");
    }
}

#[test]
fn empty_token_slice_parses_as_empty_program() {
    // `parse` is public API; an empty slice (no Eof sentinel) must
    // not index out of bounds.
    let p = circ_frontend::parse(&[]).unwrap();
    assert!(p.items.is_empty());
}
