//! Recursive-descent parser for NesL.

use crate::ast::*;
use crate::lex::{Token, TokenKind};
use circ_ir::CmpOp;
use std::fmt;

/// A syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where it happened.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a token stream (as produced by [`crate::lex::lex`]) into a
/// [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] on the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    // The lexer always terminates its stream with `Eof`, but `parse`
    // is public: a bare empty slice must mean "empty program", not an
    // out-of-bounds panic in `peek`.
    if tokens.is_empty() {
        return Ok(Program { items: Vec::new() });
    }
    let mut p = Parser { tokens, ix: 0, depth: 0 };
    p.program()
}

/// Bound on statement/expression nesting. Recursive descent uses the
/// host stack, and a stack overflow is an abort — not a catchable
/// error — so adversarial inputs like ten thousand `(`s must be cut
/// off as a [`ParseError`] long before the stack runs out.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    tokens: &'a [Token],
    ix: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.ix]
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn advance(&mut self) -> &Token {
        let t = &self.tokens[self.ix];
        if self.ix + 1 < self.tokens.len() {
            self.ix += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), pos: self.pos() })
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Punct(c) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected `{c}`, found {}", self.peek().kind))
        }
    }

    fn expect_keyword(&mut self, k: &'static str) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Keyword(k) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected `{k}`, found {}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), ParseError> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok((s, pos))
            }
            k => self.err(format!("expected identifier, found {k}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().kind == TokenKind::Punct(c) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: &'static str) -> bool {
        if self.peek().kind == TokenKind::Keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let pos = self.pos();
        match &self.peek().kind {
            TokenKind::Keyword("global") => {
                self.advance();
                self.expect_keyword("int")?;
                let (name, _) = self.expect_ident()?;
                self.expect_punct(';')?;
                Ok(Item::Global(name, pos))
            }
            TokenKind::RaceDirective => {
                self.advance();
                let (name, _) = self.expect_ident()?;
                self.expect_punct(';')?;
                Ok(Item::Race(name, pos))
            }
            TokenKind::Keyword("fn") => {
                self.advance();
                let (name, _) = self.expect_ident()?;
                self.expect_punct('(')?;
                let mut params = Vec::new();
                if !self.eat_punct(')') {
                    loop {
                        let (p, _) = self.expect_ident()?;
                        params.push(p);
                        if self.eat_punct(')') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                let body = self.block()?;
                Ok(Item::Fn(FnDef { name, params, body, pos }))
            }
            TokenKind::Keyword("thread") => {
                self.advance();
                let (name, _) = self.expect_ident()?;
                let body = self.block()?;
                Ok(Item::Thread(ThreadDef { name, body, pos }))
            }
            k => self.err(format!("expected `global`, `#race`, `fn`, or `thread`, found {k}")),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct('{')?;
        let mut out = Vec::new();
        while !self.eat_punct('}') {
            if self.peek().kind == TokenKind::Eof {
                return self.err("unexpected end of input inside block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Keyword("local") => {
                self.advance();
                self.expect_keyword("int")?;
                let (name, npos) = self.expect_ident()?;
                self.expect_punct(';')?;
                Ok(Stmt::LocalDecl(name, npos))
            }
            TokenKind::Keyword("skip") => {
                self.advance();
                self.expect_punct(';')?;
                Ok(Stmt::Skip)
            }
            TokenKind::Keyword("break") => {
                self.advance();
                self.expect_punct(';')?;
                Ok(Stmt::Break(pos))
            }
            TokenKind::Keyword("return") => {
                self.advance();
                if self.eat_punct(';') {
                    Ok(Stmt::Return(None, pos))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(';')?;
                    Ok(Stmt::Return(Some(e), pos))
                }
            }
            TokenKind::Keyword("assume") => {
                self.advance();
                self.expect_punct('(')?;
                let b = self.bexpr()?;
                self.expect_punct(')')?;
                self.expect_punct(';')?;
                Ok(Stmt::Assume(b))
            }
            TokenKind::Keyword("assert") => {
                self.advance();
                self.expect_punct('(')?;
                let b = self.bexpr()?;
                self.expect_punct(')')?;
                self.expect_punct(';')?;
                Ok(Stmt::Assert(b))
            }
            TokenKind::Keyword("if") => {
                self.advance();
                self.expect_punct('(')?;
                let b = self.bexpr()?;
                self.expect_punct(')')?;
                let then = self.block()?;
                let els = if self.eat_keyword("else") {
                    if self.peek().kind == TokenKind::Keyword("if") {
                        vec![self.stmt()?] // else-if chain
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(b, then, els))
            }
            TokenKind::Keyword("while") => {
                self.advance();
                self.expect_punct('(')?;
                let b = self.bexpr()?;
                self.expect_punct(')')?;
                let body = self.block()?;
                Ok(Stmt::While(b, body))
            }
            TokenKind::Keyword("loop") => {
                self.advance();
                let body = self.block()?;
                Ok(Stmt::Loop(body))
            }
            TokenKind::Keyword("atomic") => {
                self.advance();
                let body = self.block()?;
                Ok(Stmt::Atomic(body, pos))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat_punct('(') {
                    // call statement: f(args);
                    let args = self.call_args()?;
                    self.expect_punct(';')?;
                    return Ok(Stmt::Call { target: None, callee: name, args, pos });
                }
                self.expect_punct('=')?;
                // `x = f(args);` needs two-token lookahead.
                if let TokenKind::Ident(callee) = self.peek().kind.clone() {
                    if self.tokens.get(self.ix + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('('))
                    {
                        self.advance(); // callee
                        self.advance(); // '('
                        let args = self.call_args()?;
                        self.expect_punct(';')?;
                        return Ok(Stmt::Call { target: Some(name), callee, args, pos });
                    }
                }
                let e = self.expr()?;
                self.expect_punct(';')?;
                Ok(Stmt::Assign(name, e, pos))
            }
            k => self.err(format!("expected a statement, found {k}")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_punct(')') {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_punct(')') {
                return Ok(args);
            }
            self.expect_punct(',')?;
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            if self.eat_punct('+') {
                e = Expr::Add(Box::new(e), Box::new(self.term()?));
            } else if self.eat_punct('-') {
                e = Expr::Sub(Box::new(e), Box::new(self.term()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        while self.eat_punct('*') {
            e = Expr::Mul(Box::new(e), Box::new(self.factor()?));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.factor_inner();
        self.leave();
        r
    }

    fn factor_inner(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.advance();
                Ok(Expr::Int(n))
            }
            TokenKind::Punct('-') => {
                self.advance();
                let e = self.factor()?;
                Ok(Expr::Sub(Box::new(Expr::Int(0)), Box::new(e)))
            }
            TokenKind::Keyword("nondet") => {
                self.advance();
                self.expect_punct('(')?;
                self.expect_punct(')')?;
                Ok(Expr::Nondet)
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Var(name, pos))
            }
            TokenKind::Punct('(') => {
                self.advance();
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            k => self.err(format!("expected an expression, found {k}")),
        }
    }

    // ---- boolean expressions ----

    fn bexpr(&mut self) -> Result<BExpr, ParseError> {
        let mut e = self.band()?;
        while self.peek().kind == TokenKind::Op2("||") {
            self.advance();
            e = BExpr::Or(Box::new(e), Box::new(self.band()?));
        }
        Ok(e)
    }

    fn band(&mut self) -> Result<BExpr, ParseError> {
        let mut e = self.bprimary()?;
        while self.peek().kind == TokenKind::Op2("&&") {
            self.advance();
            e = BExpr::And(Box::new(e), Box::new(self.bprimary()?));
        }
        Ok(e)
    }

    fn bprimary(&mut self) -> Result<BExpr, ParseError> {
        self.enter()?;
        let r = self.bprimary_inner();
        self.leave();
        r
    }

    fn bprimary_inner(&mut self) -> Result<BExpr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Punct('!') => {
                self.advance();
                Ok(BExpr::Not(Box::new(self.bprimary()?)))
            }
            TokenKind::Keyword("true") => {
                self.advance();
                Ok(BExpr::Const(true))
            }
            TokenKind::Keyword("false") => {
                self.advance();
                Ok(BExpr::Const(false))
            }
            TokenKind::Punct('(') => {
                // Ambiguous: parenthesized boolean (`(a < b) && c`) or
                // parenthesized arithmetic (`(a + b) < c`). Try the
                // boolean reading with backtracking; require that it
                // is not followed by an operator that would indicate
                // an arithmetic context.
                let save = self.ix;
                self.advance();
                if let Ok(inner) = self.bexpr() {
                    if self.peek().kind == TokenKind::Punct(')') {
                        let after = self.tokens.get(self.ix + 1).map(|t| t.kind.clone());
                        let arith_follow = matches!(
                            after,
                            Some(TokenKind::Punct('+' | '-' | '*' | '<' | '>'))
                                | Some(TokenKind::Op2("==" | "!=" | "<=" | ">="))
                        );
                        if !arith_follow {
                            self.advance(); // ')'
                            return Ok(inner);
                        }
                    }
                }
                self.ix = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<BExpr, ParseError> {
        let l = self.expr()?;
        let op = match self.peek().kind.clone() {
            TokenKind::Op2("==") => CmpOp::Eq,
            TokenKind::Op2("!=") => CmpOp::Ne,
            TokenKind::Op2("<=") => CmpOp::Le,
            TokenKind::Op2(">=") => CmpOp::Ge,
            TokenKind::Punct('<') => CmpOp::Lt,
            TokenKind::Punct('>') => CmpOp::Gt,
            k => return self.err(format!("expected a comparison operator, found {k}")),
        };
        self.advance();
        let r = self.expr()?;
        Ok(BExpr::Cmp(op, l, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_globals_and_race() {
        let p = parse_src("global int x; #race x; thread t { skip; }");
        assert_eq!(p.items.len(), 3);
        assert!(matches!(&p.items[0], Item::Global(n, _) if n == "x"));
        assert!(matches!(&p.items[1], Item::Race(n, _) if n == "x"));
        assert!(matches!(&p.items[2], Item::Thread(_)));
    }

    #[test]
    fn parse_figure1_shape() {
        let src = r#"
            global int x; global int state; #race x;
            thread t {
              local int old;
              loop {
                atomic {
                  old = state;
                  if (state == 0) { state = 1; }
                }
                if (old == 0) { x = x + 1; state = 0; }
              }
            }
        "#;
        let p = parse_src(src);
        let Item::Thread(t) = &p.items[3] else { panic!("expected thread") };
        assert_eq!(t.name, "t");
        assert_eq!(t.body.len(), 2); // local decl + loop
    }

    #[test]
    fn parse_calls() {
        let src = r#"
            fn f(a, b) { return a + b; }
            thread t { local int r; r = f(1, 2); f(r); }
        "#;
        let p = parse_src(src);
        let Item::Thread(t) = &p.items[1] else { panic!() };
        assert!(matches!(&t.body[1], Stmt::Call { target: Some(r), callee, args, .. }
            if r == "r" && callee == "f" && args.len() == 2));
        assert!(matches!(&t.body[2], Stmt::Call { target: None, .. }));
    }

    #[test]
    fn parse_precedence() {
        let p = parse_src("thread t { x = 1 + 2 * 3; }");
        let Item::Thread(t) = &p.items[0] else { panic!() };
        let Stmt::Assign(_, e, _) = &t.body[0] else { panic!() };
        // 1 + (2 * 3)
        assert!(matches!(e, Expr::Add(_, rhs) if matches!(**rhs, Expr::Mul(_, _))));
    }

    #[test]
    fn parse_boolean_paren_ambiguity() {
        // parenthesized arithmetic on the left of a comparison
        let p = parse_src("thread t { if ((x + 1) < 2) { skip; } }");
        let Item::Thread(t) = &p.items[0] else { panic!() };
        assert!(matches!(&t.body[0], Stmt::If(BExpr::Cmp(circ_ir::CmpOp::Lt, _, _), _, _)));
        // parenthesized boolean and conjunction
        let p = parse_src("thread t { if ((x == 1) && y == 2) { skip; } }");
        let Item::Thread(t) = &p.items[0] else { panic!() };
        assert!(matches!(&t.body[0], Stmt::If(BExpr::And(_, _), _, _)));
    }

    #[test]
    fn parse_else_if_chain() {
        let p = parse_src(
            "thread t { if (x == 0) { skip; } else if (x == 1) { skip; } else { skip; } }",
        );
        let Item::Thread(t) = &p.items[0] else { panic!() };
        let Stmt::If(_, _, els) = &t.body[0] else { panic!() };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0], Stmt::If(_, _, _)));
    }

    #[test]
    fn parse_unary_minus_and_nondet() {
        let p = parse_src("thread t { x = -3 + nondet(); }");
        let Item::Thread(t) = &p.items[0] else { panic!() };
        let Stmt::Assign(_, e, _) = &t.body[0] else { panic!() };
        assert!(matches!(e, Expr::Add(l, r)
            if matches!(**l, Expr::Sub(_, _)) && matches!(**r, Expr::Nondet)));
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse(&lex("thread t { x = ; }").unwrap()).unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("expression"));
        assert!(parse(&lex("thread t { if x { } }").unwrap()).is_err());
        assert!(parse(&lex("global x;").unwrap()).is_err());
    }

    #[test]
    fn parse_while_break_assume() {
        let p = parse_src("thread t { while (x < 10) { x = x + 1; break; } assume(x > 0); }");
        let Item::Thread(t) = &p.items[0] else { panic!() };
        assert!(matches!(&t.body[0], Stmt::While(_, b) if b.len() == 2));
        assert!(matches!(&t.body[1], Stmt::Assume(_)));
    }
}
