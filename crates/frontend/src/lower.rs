//! Lowering from the NesL AST to a `circ-ir` CFA: name resolution,
//! function inlining, structured-control-flow flattening, and atomic
//! section marking.

use crate::ast::*;
use circ_ir::{BoolExpr, Cfa, CfaBuilder, Loc, Op, Var};
use std::collections::HashMap;
use std::fmt;

/// A compiled program: the thread CFA plus race annotations.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The thread template.
    pub cfa: Cfa,
    /// Variables named in `#race` directives (all global).
    pub race_vars: Vec<Var>,
}

/// Any error from [`crate::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical error.
    Lex(crate::lex::LexError),
    /// Syntax error.
    Parse(crate::parse::ParseError),
    /// Semantic error (message, position).
    Semantic(String, Pos),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "{e}"),
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Semantic(m, p) => write!(f, "semantic error at {p}: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

fn sem<T>(message: impl Into<String>, pos: Pos) -> Result<T, CompileError> {
    Err(CompileError::Semantic(message.into(), pos))
}

/// Lowers a parsed program.
///
/// # Errors
///
/// Semantic errors: no/multiple `thread` items, undeclared or
/// duplicate variables, unknown functions, arity mismatches,
/// recursion, `nondet()` in conditions, `break` outside a loop,
/// `return` outside a function, or a `#race` variable that is not a
/// declared global.
pub fn lower(program: &Program) -> Result<Compiled, CompileError> {
    let mut globals: Vec<(String, Pos)> = Vec::new();
    let mut races: Vec<(String, Pos)> = Vec::new();
    let mut fns: HashMap<String, &FnDef> = HashMap::new();
    let mut thread: Option<&ThreadDef> = None;
    for item in &program.items {
        match item {
            Item::Global(name, pos) => {
                if globals.iter().any(|(n, _)| n == name) {
                    return sem(format!("duplicate global `{name}`"), *pos);
                }
                globals.push((name.clone(), *pos));
            }
            Item::Race(name, pos) => races.push((name.clone(), *pos)),
            Item::Fn(f) => {
                if fns.insert(f.name.clone(), f).is_some() {
                    return sem(format!("duplicate function `{}`", f.name), f.pos);
                }
            }
            Item::Thread(t) => {
                if thread.is_some() {
                    return sem("multiple `thread` definitions (the checker analyzes one symmetric template)", t.pos);
                }
                thread = Some(t);
            }
        }
    }
    let Some(thread) = thread else {
        return sem("program has no `thread` definition", Pos { line: 1, col: 1 });
    };

    let mut builder = CfaBuilder::new(thread.name.clone());
    let mut global_vars: HashMap<String, Var> = HashMap::new();
    for (name, _) in &globals {
        global_vars.insert(name.clone(), builder.global(name.clone()));
    }

    let mut lowerer = Lowerer {
        builder,
        globals: global_vars,
        fns,
        loop_exits: Vec::new(),
        inline_stack: Vec::new(),
        instance_counter: 0,
        error_loc: None,
    };

    let entry = lowerer.builder.entry();
    let mut thread_scope: HashMap<String, Var> = HashMap::new();
    let exit = lowerer.lower_stmts(&thread.body, &mut thread_scope, entry, None)?;
    let _ = exit; // falling off the end of the thread body just halts

    let cfa = lowerer.builder.build();
    let mut race_vars = Vec::new();
    for (name, pos) in &races {
        match cfa.var_by_name(name) {
            Some(v) if cfa.is_global(v) => race_vars.push(v),
            Some(_) => return sem(format!("#race variable `{name}` is not global"), *pos),
            None => return sem(format!("#race variable `{name}` is not declared"), *pos),
        }
    }
    Ok(Compiled { cfa, race_vars })
}

struct Lowerer<'a> {
    builder: CfaBuilder,
    globals: HashMap<String, Var>,
    fns: HashMap<String, &'a FnDef>,
    loop_exits: Vec<Loc>,
    inline_stack: Vec<String>,
    instance_counter: u32,
    /// Shared target of every failed `assert`, created lazily.
    error_loc: Option<Loc>,
}

/// Return context while lowering a function body: where `return`
/// jumps, and the variable receiving the returned value.
struct RetCtx {
    exit: Loc,
    ret_var: Var,
}

impl<'a> Lowerer<'a> {
    fn resolve(
        &self,
        scope: &HashMap<String, Var>,
        name: &str,
        pos: Pos,
    ) -> Result<Var, CompileError> {
        scope
            .get(name)
            .or_else(|| self.globals.get(name))
            .copied()
            .ok_or_else(|| CompileError::Semantic(format!("undeclared variable `{name}`"), pos))
    }

    fn lower_expr(
        &self,
        scope: &HashMap<String, Var>,
        e: &Expr,
    ) -> Result<circ_ir::Expr, CompileError> {
        use circ_ir::Expr as IrExpr;
        Ok(match e {
            Expr::Int(n) => IrExpr::Int(*n),
            Expr::Var(name, pos) => IrExpr::Var(self.resolve(scope, name, *pos)?),
            Expr::Add(a, b) => self.lower_expr(scope, a)? + self.lower_expr(scope, b)?,
            Expr::Sub(a, b) => self.lower_expr(scope, a)? - self.lower_expr(scope, b)?,
            Expr::Mul(a, b) => self.lower_expr(scope, a)? * self.lower_expr(scope, b)?,
            Expr::Nondet => IrExpr::Nondet,
        })
    }

    fn lower_bexpr(
        &self,
        scope: &HashMap<String, Var>,
        b: &BExpr,
    ) -> Result<BoolExpr, CompileError> {
        Ok(match b {
            BExpr::Const(v) => BoolExpr::Const(*v),
            BExpr::Cmp(op, l, r) => {
                let le = self.lower_expr(scope, l)?;
                let re = self.lower_expr(scope, r)?;
                if le.has_nondet() || re.has_nondet() {
                    // Conditions must be deterministic; model nondet
                    // input by assigning it to a variable first.
                    return sem(
                        "nondet() is not allowed in conditions; assign it to a variable first",
                        Pos { line: 0, col: 0 },
                    );
                }
                BoolExpr::Atom(circ_ir::Pred::new(le, *op, re))
            }
            BExpr::Not(inner) => self.lower_bexpr(scope, inner)?.not(),
            BExpr::And(a, c) => self.lower_bexpr(scope, a)?.and(self.lower_bexpr(scope, c)?),
            BExpr::Or(a, c) => self.lower_bexpr(scope, a)?.or(self.lower_bexpr(scope, c)?),
        })
    }

    /// Lowers a statement list starting at `cur`; returns the exit
    /// location.
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        scope: &mut HashMap<String, Var>,
        mut cur: Loc,
        ret: Option<&RetCtx>,
    ) -> Result<Loc, CompileError> {
        for s in stmts {
            cur = self.lower_stmt(s, scope, cur, ret)?;
        }
        Ok(cur)
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        scope: &mut HashMap<String, Var>,
        cur: Loc,
        ret: Option<&RetCtx>,
    ) -> Result<Loc, CompileError> {
        match stmt {
            Stmt::LocalDecl(name, pos) => {
                if scope.contains_key(name) || self.globals.contains_key(name) {
                    return sem(format!("`{name}` is already declared"), *pos);
                }
                let unique = if self.inline_stack.is_empty() {
                    name.clone()
                } else {
                    format!("{name}@{}", self.instance_counter)
                };
                scope.insert(name.clone(), self.builder.local(unique));
                Ok(cur)
            }
            Stmt::Assign(name, e, pos) => {
                let v = self.resolve(scope, name, *pos)?;
                let rhs = self.lower_expr(scope, e)?;
                let next = self.builder.fresh_loc();
                self.builder.edge(cur, Op::Assign(v, rhs), next);
                Ok(next)
            }
            Stmt::Skip => {
                let next = self.builder.fresh_loc();
                self.builder.edge(cur, Op::skip(), next);
                Ok(next)
            }
            Stmt::Assume(b) => {
                let p = self.lower_bexpr(scope, b)?;
                let next = self.builder.fresh_loc();
                self.builder.edge(cur, Op::Assume(p), next);
                Ok(next)
            }
            Stmt::Assert(b) => {
                let p = self.lower_bexpr(scope, b)?;
                let err = self.error_location();
                let next = self.builder.fresh_loc();
                self.builder.edge(cur, Op::Assume(p.clone()), next);
                self.builder.edge(cur, Op::Assume(p.not()), err);
                Ok(next)
            }
            Stmt::If(b, then, els) => {
                let p = self.lower_bexpr(scope, b)?;
                let then_entry = self.builder.fresh_loc();
                let else_entry = self.builder.fresh_loc();
                self.builder.edge(cur, Op::Assume(p.clone()), then_entry);
                self.builder.edge(cur, Op::Assume(p.not()), else_entry);
                let then_exit = self.lower_stmts(then, scope, then_entry, ret)?;
                let else_exit = self.lower_stmts(els, scope, else_entry, ret)?;
                let join = self.builder.fresh_loc();
                self.builder.edge(then_exit, Op::skip(), join);
                self.builder.edge(else_exit, Op::skip(), join);
                Ok(join)
            }
            Stmt::While(b, body) => {
                let p = self.lower_bexpr(scope, b)?;
                let head = cur;
                let body_entry = self.builder.fresh_loc();
                let exit = self.builder.fresh_loc();
                self.builder.edge(head, Op::Assume(p.clone()), body_entry);
                self.builder.edge(head, Op::Assume(p.not()), exit);
                self.loop_exits.push(exit);
                let body_exit = self.lower_stmts(body, scope, body_entry, ret)?;
                self.loop_exits.pop();
                self.builder.edge(body_exit, Op::skip(), head);
                Ok(exit)
            }
            Stmt::Loop(body) => {
                let head = cur;
                let exit = self.builder.fresh_loc();
                self.loop_exits.push(exit);
                let body_exit = self.lower_stmts(body, scope, head, ret)?;
                self.loop_exits.pop();
                // Back edge: only if the body can fall through. A body
                // ending in `break` still produces a (dead) exit
                // location; the extra edge is harmless there.
                if body_exit != head {
                    self.builder.edge(body_exit, Op::skip(), head);
                }
                Ok(exit)
            }
            Stmt::Break(pos) => {
                let Some(&exit) = self.loop_exits.last() else {
                    return sem("`break` outside of a loop", *pos);
                };
                self.builder.edge(cur, Op::skip(), exit);
                // Continue lowering from an unreachable location.
                Ok(self.builder.fresh_loc())
            }
            Stmt::Return(e, pos) => {
                let Some(ret) = ret else {
                    return sem("`return` outside of a function", *pos);
                };
                match e {
                    Some(expr) => {
                        let rhs = self.lower_expr(scope, expr)?;
                        self.builder.edge(cur, Op::Assign(ret.ret_var, rhs), ret.exit);
                    }
                    None => {
                        self.builder.edge(cur, Op::skip(), ret.exit);
                    }
                }
                Ok(self.builder.fresh_loc())
            }
            Stmt::Atomic(body, _pos) => {
                if body.is_empty() {
                    return Ok(cur);
                }
                // Entering the block is its own step (in TinyOS terms:
                // disabling interrupts). Every operation of the body
                // then executes *from* an atomic location, so even the
                // first access is protected; the block's exit location
                // is non-atomic (interrupts re-enabled).
                let enter = self.builder.fresh_loc();
                self.builder.mark_atomic(enter);
                self.builder.edge(cur, Op::skip(), enter);
                let before = self.builder_num_locs();
                let exit = self.lower_stmts(body, scope, enter, ret)?;
                let after = self.builder_num_locs();
                if exit == enter {
                    return Ok(exit); // body was only declarations
                }
                for ix in before..after {
                    let l = Loc::from_raw(ix as u32);
                    // the error location is terminal, never atomic
                    if l != exit && Some(l) != self.error_loc {
                        self.builder.mark_atomic(l);
                    }
                }
                Ok(exit)
            }
            Stmt::Call { target, callee, args, pos } => {
                let Some(fdef) = self.fns.get(callee.as_str()).copied() else {
                    return sem(format!("unknown function `{callee}`"), *pos);
                };
                if fdef.params.len() != args.len() {
                    return sem(
                        format!(
                            "function `{callee}` takes {} argument(s), got {}",
                            fdef.params.len(),
                            args.len()
                        ),
                        *pos,
                    );
                }
                if self.inline_stack.iter().any(|f| f == callee) {
                    return sem(format!("recursive call to `{callee}` cannot be inlined"), *pos);
                }
                self.instance_counter += 1;
                let inst = self.instance_counter;
                let mut fscope: HashMap<String, Var> = HashMap::new();
                // Bind parameters: evaluate arguments in the caller's
                // scope, assign to fresh locals.
                let mut cur2 = cur;
                for (p, a) in fdef.params.iter().zip(args) {
                    let rhs = self.lower_expr(scope, a)?;
                    let pv = self.builder.local(format!("{p}@{inst}"));
                    fscope.insert(p.clone(), pv);
                    let next = self.builder.fresh_loc();
                    self.builder.edge(cur2, Op::Assign(pv, rhs), next);
                    cur2 = next;
                }
                let ret_var = self.builder.local(format!("ret@{inst}"));
                let exit = self.builder.fresh_loc();
                self.inline_stack.push(callee.clone());
                let body_exit = self.lower_stmts(
                    &fdef.body,
                    &mut fscope,
                    cur2,
                    Some(&RetCtx { exit, ret_var }),
                )?;
                self.inline_stack.pop();
                // Fall-through return.
                self.builder.edge(body_exit, Op::skip(), exit);
                match target {
                    None => Ok(exit),
                    Some(tname) => {
                        let tv = self.resolve(scope, tname, *pos)?;
                        let next = self.builder.fresh_loc();
                        self.builder.edge(exit, Op::Assign(tv, circ_ir::Expr::Var(ret_var)), next);
                        Ok(next)
                    }
                }
            }
        }
    }

    /// The (single, lazily created) error location.
    fn error_location(&mut self) -> Loc {
        match self.error_loc {
            Some(l) => l,
            None => {
                let l = self.builder.fresh_loc();
                self.builder.mark_error(l);
                self.builder.name_loc(l, "ERR");
                self.error_loc = Some(l);
                l
            }
        }
    }

    fn builder_num_locs(&self) -> usize {
        // CfaBuilder does not expose its count; track via fresh alloc.
        // We reconstruct it by allocating nothing: use an internal
        // counter mirror instead.
        self.builder.num_locs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use circ_ir::{Interp, MtProgram};

    /// The paper's Figure 1 written in NesL.
    pub const FIGURE1_SRC: &str = r#"
        global int x;
        global int state;
        #race x;
        thread worker {
          local int old;
          loop {
            old = state;           // enters the atomic region below
            atomic {
              if (state == 0) { state = 1; }
            }
            if (old == 0) {
              x = x + 1;
              state = 0;
            }
          }
        }
    "#;

    #[test]
    fn compile_figure1_and_check_race_free() {
        // NB: in the source above `old = state` sits before the atomic
        // block, which is racy; the faithful version nests it inside.
        let faithful = r#"
            global int x;
            global int state;
            #race x;
            thread worker {
              local int old;
              loop {
                atomic {
                  old = state;
                  if (state == 0) { state = 1; }
                }
                if (old == 0) {
                  x = x + 1;
                  state = 0;
                }
              }
            }
        "#;
        let compiled = compile(faithful).unwrap();
        assert_eq!(compiled.race_vars.len(), 1);
        let prog = MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0]);
        for n in [2, 3] {
            let interp = Interp::new(prog.clone(), n);
            assert!(interp.explore_bounded(400_000, &[]).is_none(), "race with {n} threads");
        }
    }

    #[test]
    fn non_atomic_variant_races() {
        let compiled = compile(FIGURE1_SRC).unwrap();
        let prog = MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0]);
        let interp = Interp::new(prog, 2);
        assert!(interp.explore_bounded(400_000, &[]).is_some(), "expected a race");
    }

    #[test]
    fn atomic_marks_interior_only() {
        let compiled = compile(
            "global int g; #race g; thread t { local int a; a = 1; atomic { g = 1; g = 2; } a = 2; }",
        )
        .unwrap();
        let cfa = &compiled.cfa;
        // Two atomic locations: the enter location and the location
        // between the two writes of g.
        assert_eq!(cfa.atomic_locs().len(), 2);
        assert!(!cfa.is_atomic(cfa.entry()));
        // Both writes execute from atomic locations (protected).
        let g = cfa.var_by_name("g").unwrap();
        for e in cfa.edges() {
            if e.op.written() == Some(g) {
                assert!(cfa.is_atomic(e.src), "write to g must start atomic");
            }
        }
    }

    #[test]
    fn function_inlining_basic() {
        let src = r#"
            global int g;
            #race g;
            fn bump(d) { g = g + d; return g; }
            thread t { local int r; r = bump(2); r = bump(3); }
        "#;
        let compiled = compile(src).unwrap();
        let cfa = &compiled.cfa;
        // two instances: params d@1, d@2 plus ret@1, ret@2 exist
        assert!(cfa.var_by_name("d@1").is_some());
        assert!(cfa.var_by_name("d@2").is_some());
        assert!(cfa.var_by_name("ret@1").is_some());
        // single-thread run: g goes 0 -> 2 -> 5; check via interp
        let prog = MtProgram::new(cfa.clone(), compiled.race_vars[0]);
        let interp = Interp::new(prog.clone(), 1);
        let mut s = interp.initial();
        let mut steps = 0;
        loop {
            let en = interp.enabled(&s);
            if en.is_empty() || steps > 100 {
                break;
            }
            let (t, e) = en[0];
            s = interp.step(&s, circ_ir::SchedChoice { thread: t, edge: e, nondet: 0 });
            steps += 1;
        }
        let g = cfa.var_by_name("g").unwrap();
        assert_eq!(s.read(cfa, circ_ir::ThreadId(0), g), 5);
    }

    #[test]
    fn recursion_rejected() {
        let src = "fn f() { f(); } thread t { f(); }";
        let err = compile(src).unwrap_err();
        assert!(matches!(err, CompileError::Semantic(m, _) if m.contains("recursive")));
    }

    #[test]
    fn semantic_errors() {
        assert!(matches!(
            compile("thread t { x = 1; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("undeclared")
        ));
        assert!(matches!(
            compile("global int x; global int x; thread t { skip; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("duplicate global")
        ));
        assert!(matches!(
            compile("thread t { break; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("break")
        ));
        assert!(matches!(
            compile("thread t { return; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("return")
        ));
        assert!(matches!(
            compile("global int x; thread t { skip; } thread u { skip; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("multiple")
        ));
        assert!(matches!(
            compile("global int x; #race y; thread t { skip; }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("not declared")
        ));
        assert!(matches!(
            compile("thread t { local int l; } #race l;").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("not global")
        ));
        assert!(matches!(
            compile("fn f(a) { skip; } thread t { f(1, 2); }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("argument")
        ));
        assert!(matches!(
            compile("global int x; thread t { if (nondet() == 0) { skip; } }").unwrap_err(),
            CompileError::Semantic(m, _) if m.contains("nondet")
        ));
    }

    #[test]
    fn while_and_break_control_flow() {
        let src = r#"
            global int g; #race g;
            thread t {
              local int i;
              i = 0;
              while (i < 3) {
                i = i + 1;
                if (i == 2) { break; }
              }
              g = i;
            }
        "#;
        let compiled = compile(src).unwrap();
        let prog = MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0]);
        let interp = Interp::new(prog, 1);
        let mut s = interp.initial();
        for _ in 0..100 {
            let en = interp.enabled(&s);
            let Some(&(t, e)) = en.first() else { break };
            s = interp.step(&s, circ_ir::SchedChoice { thread: t, edge: e, nondet: 0 });
        }
        let cfa = &compiled.cfa;
        let g = cfa.var_by_name("g").unwrap();
        assert_eq!(s.read(cfa, circ_ir::ThreadId(0), g), 2, "break should exit at i == 2");
    }

    #[test]
    fn atomic_at_thread_start_keeps_entry_nonatomic() {
        let compiled = compile("global int g; thread t { atomic { g = 1; g = 2; } }").unwrap();
        let cfa = &compiled.cfa;
        assert!(!cfa.is_atomic(cfa.entry()));
        // enter location + one interior location
        assert_eq!(cfa.atomic_locs().len(), 2);
    }

    #[test]
    fn assert_lowers_to_error_location() {
        let src = "global int g; #race g; thread t { g = 1; assert(g == 1); assert(g >= 0); }";
        let compiled = compile(src).unwrap();
        let cfa = &compiled.cfa;
        // one shared error location, never atomic
        assert_eq!(cfa.error_locs().len(), 1);
        let err = *cfa.error_locs().iter().next().unwrap();
        assert!(!cfa.is_atomic(err));
        assert!(cfa.out_edges(err).is_empty(), "error location is terminal");
        // both asserts branch to it
        let incoming = cfa.edges().iter().filter(|e| e.dst == err).count();
        assert_eq!(incoming, 2);
        // a single-thread run never reaches it (both asserts hold)
        let prog = MtProgram::new(cfa.clone(), compiled.race_vars[0]);
        let interp = Interp::new(prog, 1);
        assert!(interp.explore_bounded(10_000, &[]).is_none());
    }

    #[test]
    fn assert_inside_atomic_keeps_error_nonatomic() {
        let src =
            "global int g; #race g; thread t { skip; atomic { g = 1; assert(g == 1); g = 2; } }";
        let compiled = compile(src).unwrap();
        let cfa = &compiled.cfa;
        let err = *cfa.error_locs().iter().next().unwrap();
        assert!(!cfa.is_atomic(err), "error location must never be atomic");
    }

    #[test]
    fn nondet_assignment_allowed() {
        let src = "global int g; #race g; thread t { local int v; v = nondet(); g = v; }";
        assert!(compile(src).is_ok());
    }
}
