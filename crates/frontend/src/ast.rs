//! Abstract syntax of NesL.

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String, Pos),
    /// `a + b`
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`
    Mul(Box<Expr>, Box<Expr>),
    /// `nondet()`
    Nondet,
}

/// A boolean expression (condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BExpr {
    /// `true` / `false`
    Const(bool),
    /// Comparison `a op b` with op one of `== != < <= > >=`.
    Cmp(circ_ir::CmpOp, Expr, Expr),
    /// `!b`
    Not(Box<BExpr>),
    /// `a && b`
    And(Box<BExpr>, Box<BExpr>),
    /// `a || b`
    Or(Box<BExpr>, Box<BExpr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `local int x;` — declares a thread-local (or
    /// function-local) variable.
    LocalDecl(String, Pos),
    /// `x = e;`
    Assign(String, Expr, Pos),
    /// `x = f(args);` or `f(args);` (target `None`).
    Call {
        /// Assignment target for the return value, if any.
        target: Option<String>,
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Call-site position.
        pos: Pos,
    },
    /// `if (b) { … } else { … }` (missing else = empty block).
    If(BExpr, Vec<Stmt>, Vec<Stmt>),
    /// `while (b) { … }`
    While(BExpr, Vec<Stmt>),
    /// `loop { … }` — an infinite loop (exit via `break`).
    Loop(Vec<Stmt>),
    /// `break;`
    Break(Pos),
    /// `atomic { … }`
    Atomic(Vec<Stmt>, Pos),
    /// `skip;`
    Skip,
    /// `assume(b);` — blocks unless `b` holds.
    Assume(BExpr),
    /// `assert(b);` — jumps to the error location unless `b` holds.
    Assert(BExpr),
    /// `return e;` / `return;` — only inside functions.
    Return(Option<Expr>, Pos),
}

/// A function definition (always inlined during lowering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition position.
    pub pos: Pos,
}

/// The thread template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDef {
    /// Thread name (becomes the CFA name).
    pub name: String,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition position.
    pub pos: Pos,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `global int x;`
    Global(String, Pos),
    /// `#race x;`
    Race(String, Pos),
    /// Function definition.
    Fn(FnDef),
    /// Thread definition.
    Thread(ThreadDef),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}
