//! NesL: a small concurrent imperative language, lowered to the CFA
//! model of `circ-ir`.
//!
//! The CIRC paper runs on nesC programs compiled to C and modeled as
//! CFAs with atomic sections (§6). This crate plays the role of that
//! frontend: it parses a C-like surface syntax with `atomic` blocks,
//! inlines (non-recursive) functions, and lowers structured control
//! flow to a [`circ_ir::Cfa`].
//!
//! # Language
//!
//! ```text
//! global int state;            // shared variables (initially 0)
//! #race x;                     // variable(s) to check for races
//!
//! fn grab() {                  // functions, inlined at call sites
//!   atomic {
//!     old = state;
//!     if (state == 0) { state = 1; }
//!   }
//! }
//!
//! thread worker {              // the (symmetric) thread template
//!   local int old;
//!   loop {
//!     grab();
//!     if (old == 0) { x = x + 1; state = 0; }
//!   }
//! }
//! ```
//!
//! Statements: assignment, `if`/`else`, `while`, `loop`, `break`,
//! `atomic { … }`, `skip;`, `assume(b);`, function calls (optionally
//! `x = f(args);`), `return e;` inside functions. Expressions use
//! `+ - *` and `nondet()`; conditions use comparisons, `&& || !`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!   global int x;
//!   #race x;
//!   thread t { loop { atomic { x = x + 1; } } }
//! "#;
//! let compiled = circ_frontend::compile(src)?;
//! assert_eq!(compiled.cfa.name(), "t");
//! assert_eq!(compiled.race_vars.len(), 1);
//! # Ok::<(), circ_frontend::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod lex;
mod lower;
mod parse;

pub use ast::{BExpr, Expr, FnDef, Item, Program, Stmt, ThreadDef};
pub use lex::{lex, LexError, Token, TokenKind};
pub use lower::{CompileError, Compiled};
pub use parse::{parse, ParseError};

/// Compiles NesL source to a CFA plus race-check annotations.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic,
/// or semantic problem (with line/column positions).
pub fn compile(src: &str) -> Result<Compiled, CompileError> {
    let tokens = lex::lex(src).map_err(CompileError::Lex)?;
    let program = parse::parse(&tokens).map_err(CompileError::Parse)?;
    lower::lower(&program)
}
