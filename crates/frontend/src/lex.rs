//! Lexer for NesL.

use crate::ast::Pos;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword (`global`, `int`, `thread`, `fn`, `local`, `if`,
    /// `else`, `while`, `loop`, `atomic`, `skip`, `assume`, `assert`,
    /// `nondet`, `break`, `return`, `true`, `false`).
    Keyword(&'static str),
    /// `#race` directive.
    RaceDirective,
    /// Single punctuation: `( ) { } ; , = + - * ! < >`.
    Punct(char),
    /// Two-char operator: `== != <= >= && ||`.
    Op2(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::RaceDirective => write!(f, "`#race`"),
            TokenKind::Punct(c) => write!(f, "`{c}`"),
            TokenKind::Op2(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Start position.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Where it happened.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "global", "int", "thread", "fn", "local", "if", "else", "while", "loop", "atomic", "skip",
    "assume", "assert", "nondet", "break", "return", "true", "false",
];

/// Tokenizes NesL source. `//` line comments and `/* */` block
/// comments are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters, malformed numbers,
/// or unterminated block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            bump!();
            bump!();
            loop {
                if i + 1 >= chars.len() {
                    return Err(LexError { message: "unterminated block comment".into(), pos });
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        if c == '#' {
            // Only the #race directive starts with '#'.
            let start = i;
            bump!();
            while i < chars.len() && chars[i].is_ascii_alphabetic() {
                bump!();
            }
            let word: String = chars[start..i].iter().collect();
            if word == "#race" {
                out.push(Token { kind: TokenKind::RaceDirective, pos });
                continue;
            }
            return Err(LexError { message: format!("unknown directive `{word}`"), pos });
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let word: String = chars[start..i].iter().collect();
            match KEYWORDS.iter().find(|k| **k == word) {
                Some(k) => out.push(Token { kind: TokenKind::Keyword(k), pos }),
                None => out.push(Token { kind: TokenKind::Ident(word), pos }),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                bump!();
            }
            let word: String = chars[start..i].iter().collect();
            let n: i64 = word
                .parse()
                .map_err(|_| LexError { message: format!("integer `{word}` out of range"), pos })?;
            out.push(Token { kind: TokenKind::Int(n), pos });
            continue;
        }
        // Two-char operators first.
        if i + 1 < chars.len() {
            let two: String = chars[i..i + 2].iter().collect();
            let op2 = match two.as_str() {
                "==" => Some("=="),
                "!=" => Some("!="),
                "<=" => Some("<="),
                ">=" => Some(">="),
                "&&" => Some("&&"),
                "||" => Some("||"),
                _ => None,
            };
            if let Some(op) = op2 {
                bump!();
                bump!();
                out.push(Token { kind: TokenKind::Op2(op), pos });
                continue;
            }
        }
        match c {
            '(' | ')' | '{' | '}' | ';' | ',' | '=' | '+' | '-' | '*' | '!' | '<' | '>' => {
                bump!();
                out.push(Token { kind: TokenKind::Punct(c), pos });
            }
            _ => {
                return Err(LexError { message: format!("unexpected character `{c}`"), pos });
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("global int foo;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("global"),
                TokenKind::Keyword("int"),
                TokenKind::Ident("foo".into()),
                TokenKind::Punct(';'),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char_before_one() {
        let ks = kinds("a == b != c <= d >= e && f || !g = h < i > j");
        assert!(ks.contains(&TokenKind::Op2("==")));
        assert!(ks.contains(&TokenKind::Op2("!=")));
        assert!(ks.contains(&TokenKind::Op2("<=")));
        assert!(ks.contains(&TokenKind::Op2(">=")));
        assert!(ks.contains(&TokenKind::Op2("&&")));
        assert!(ks.contains(&TokenKind::Op2("||")));
        assert!(ks.contains(&TokenKind::Punct('=')));
        assert!(ks.contains(&TokenKind::Punct('<')));
        assert!(ks.contains(&TokenKind::Punct('>')));
        assert!(ks.contains(&TokenKind::Punct('!')));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a // comment\n /* block\n comment */ b");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn race_directive() {
        let ks = kinds("#race x;");
        assert_eq!(ks[0], TokenKind::RaceDirective);
        assert_eq!(ks[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_char_errors() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("#bogus x;").is_err());
    }

    #[test]
    fn numbers() {
        let ks = kinds("x = 42;");
        assert!(ks.contains(&TokenKind::Int(42)));
        assert!(lex("99999999999999999999999").is_err());
    }
}
