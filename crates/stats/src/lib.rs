//! Counters, cache statistics, and phase timings for the CIRC
//! pipeline.
//!
//! Henzinger–Jhala–Majumdar report that CIRC's cost is dominated by
//! theorem-prover calls during predicate abstraction; this crate is
//! the measurement substrate that lets the rest of the workspace see
//! that cost. Every layer keeps its own counters — plain structs for
//! the single-owner layers, atomics inside the sharded caches that
//! worker threads share under `--jobs N` — and
//! `circ-core` assembles them into one [`PipelineStats`] per run,
//! renderable as a human table ([`PipelineStats::render_table`]) or a
//! single JSON line ([`PipelineStats::to_json`]) for `BENCH_*.json`
//! tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// Counters of the DPLL(T) solver layer (`circ_smt::Solver`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Top-level satisfiability queries issued.
    pub queries: u64,
    /// Queries answered from the NNF-keyed result cache.
    pub cache_hits: u64,
    /// Queries that ran the DPLL(T) loop.
    pub cache_misses: u64,
    /// Theory-check rounds across all queries.
    pub theory_rounds: u64,
}

impl SolverCounters {
    /// Adds another snapshot into this one.
    pub fn add(&mut self, other: &SolverCounters) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.theory_rounds += other.theory_rounds;
    }

    /// Fraction of queries answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.cache_hits, self.cache_misses)
    }
}

/// Counters of the predicate-abstraction entailment cache
/// (`circ_core::AbsCache`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsCounters {
    /// Cube/predicate entailment and cube-satisfiability queries.
    pub queries: u64,
    /// Queries answered from the canonicalized `(premises, atom)`
    /// cache.
    pub cache_hits: u64,
    /// Queries that fell through to the LIA decision procedure.
    pub cache_misses: u64,
}

impl AbsCounters {
    /// Adds another snapshot into this one.
    pub fn add(&mut self, other: &AbsCounters) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// The counter delta `self − base` (used to report per-run
    /// activity of a cache shared across runs).
    pub fn since(&self, base: &AbsCounters) -> AbsCounters {
        AbsCounters {
            queries: self.queries - base.queries,
            cache_hits: self.cache_hits - base.cache_hits,
            cache_misses: self.cache_misses - base.cache_misses,
        }
    }

    /// Fraction of queries answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.cache_hits, self.cache_misses)
    }
}

/// Wall-clock time spent per pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// `ReachAndBuild` (abstract reachability + ARG construction).
    pub reach: Duration,
    /// `CheckSim` (the guarantee step).
    pub sim: Duration,
    /// `Collapse` (weak-bisimulation minimization).
    pub collapse: Duration,
    /// Counterexample refinement.
    pub refine: Duration,
    /// The ω-goodness check (ω-CIRC only).
    pub omega: Duration,
}

impl PhaseTimes {
    /// Adds another snapshot into this one.
    pub fn add(&mut self, other: &PhaseTimes) {
        self.reach += other.reach;
        self.sim += other.sim;
        self.collapse += other.collapse;
        self.refine += other.refine;
        self.omega += other.omega;
    }
}

/// The assembled statistics of one CIRC run (or the sum of several).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// DPLL(T) solver counters, accumulated across every solver handle
    /// the run created.
    pub solver: SolverCounters,
    /// Abstraction-layer entailment-cache counters (per-run delta when
    /// the cache is shared across runs).
    pub abs: AbsCounters,
    /// Outer (refinement) rounds executed.
    pub outer_rounds: u64,
    /// `ReachAndBuild` invocations.
    pub reach_runs: u64,
    /// ARG nodes materialized across all reachability runs.
    pub arg_nodes: u64,
    /// `CheckSim` invocations.
    pub sim_checks: u64,
    /// `(location, candidate, edge)` triples examined across all
    /// simulation checks.
    pub sim_edge_pairs: u64,
    /// `Collapse` invocations.
    pub collapse_runs: u64,
    /// Partition-refinement iterations across all collapses.
    pub collapse_iterations: u64,
    /// Counterexample-refinement rounds.
    pub refine_rounds: u64,
    /// Times the counter parameter `k` was incremented.
    pub k_increments: u64,
    /// Predicates seeded from the persistent predicate store before
    /// the run started (0 on a cold run or with the store disabled).
    pub preds_seeded: u64,
    /// Refinement rounds the store seeding avoided: the recorded
    /// discovery cost of the seeded predicate set minus the rounds
    /// this run still had to spend (floored at zero).
    pub refine_rounds_saved: u64,
    /// Approximate bytes charged against the memory budget (ARG
    /// nodes plus solver formula-cache growth); tracked even when no
    /// ceiling is configured.
    pub mem_charged_bytes: u64,
    /// Budget polls across all governed phases.
    pub budget_polls: u64,
    /// Faults fired by the injection harness (always 0 outside
    /// `inject` builds).
    pub faults_injected: u64,
    /// Race variables the triage pipeline certified Safe at stage 0
    /// (flow check drew zero findings; no CIRC run happened).
    pub triage_stage0_decided: u64,
    /// Race variables the triage pipeline certified Unsafe at stage 1
    /// (a bounded random schedule produced a replayable race witness;
    /// no CIRC run happened).
    pub triage_stage1_decided: u64,
    /// Race variables neither cheap stage could decide, handed to the
    /// full CIRC engine. With triage off every variable counts here
    /// as 0 (the counters only move under `--triage`).
    pub triage_fallthrough: u64,
    /// Recovery actions the storage layer took while warm-starting:
    /// stale `*.tmp` staging files swept plus damaged artifacts
    /// (snapshots, predicate store) that degraded to a cold start.
    /// Driver-level, so invariant under `--jobs`.
    pub store_recoveries: u64,
    /// Flush attempts that failed and degraded to a logged no-persist
    /// (lock acquisition, snapshot writes, journal appends), leaving
    /// the previous on-disk state intact. Driver-level, so invariant
    /// under `--jobs`.
    pub flush_errors: u64,
    /// Per-phase wall-clock spans.
    pub phases: PhaseTimes,
}

impl PipelineStats {
    /// Adds another run's statistics into this one (for multi-variable
    /// CLI runs and bench totals).
    pub fn add(&mut self, other: &PipelineStats) {
        self.solver.add(&other.solver);
        self.abs.add(&other.abs);
        self.outer_rounds += other.outer_rounds;
        self.reach_runs += other.reach_runs;
        self.arg_nodes += other.arg_nodes;
        self.sim_checks += other.sim_checks;
        self.sim_edge_pairs += other.sim_edge_pairs;
        self.collapse_runs += other.collapse_runs;
        self.collapse_iterations += other.collapse_iterations;
        self.refine_rounds += other.refine_rounds;
        self.k_increments += other.k_increments;
        self.preds_seeded += other.preds_seeded;
        self.refine_rounds_saved += other.refine_rounds_saved;
        self.mem_charged_bytes += other.mem_charged_bytes;
        self.budget_polls += other.budget_polls;
        self.faults_injected += other.faults_injected;
        self.triage_stage0_decided += other.triage_stage0_decided;
        self.triage_stage1_decided += other.triage_stage1_decided;
        self.triage_fallthrough += other.triage_fallthrough;
        self.store_recoveries += other.store_recoveries;
        self.flush_errors += other.flush_errors;
        self.phases.add(&other.phases);
    }

    /// Renders the human-readable statistics table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| {
            out.push_str(&format!("  {k:<28} {v:>14}\n"));
        };
        row("outer rounds", self.outer_rounds.to_string());
        row("reach runs", self.reach_runs.to_string());
        row("ARG nodes", self.arg_nodes.to_string());
        row("sim checks", self.sim_checks.to_string());
        row("sim edge pairs", self.sim_edge_pairs.to_string());
        row("collapse runs", self.collapse_runs.to_string());
        row("collapse iterations", self.collapse_iterations.to_string());
        row("refine rounds", self.refine_rounds.to_string());
        row("k increments", self.k_increments.to_string());
        row("preds seeded", self.preds_seeded.to_string());
        row("refine rounds saved", self.refine_rounds_saved.to_string());
        row("abs entailment queries", self.abs.queries.to_string());
        row(
            "abs cache hits/misses",
            format!(
                "{}/{} ({:.1}%)",
                self.abs.cache_hits,
                self.abs.cache_misses,
                100.0 * self.abs.hit_rate()
            ),
        );
        row("solver queries", self.solver.queries.to_string());
        row(
            "solver cache hits/misses",
            format!(
                "{}/{} ({:.1}%)",
                self.solver.cache_hits,
                self.solver.cache_misses,
                100.0 * self.solver.hit_rate()
            ),
        );
        row("solver theory rounds", self.solver.theory_rounds.to_string());
        row("mem charged (bytes)", self.mem_charged_bytes.to_string());
        row("budget polls", self.budget_polls.to_string());
        row("faults injected", self.faults_injected.to_string());
        row("triage stage-0 decided", self.triage_stage0_decided.to_string());
        row("triage stage-1 decided", self.triage_stage1_decided.to_string());
        row("triage fallthrough", self.triage_fallthrough.to_string());
        row("store recoveries", self.store_recoveries.to_string());
        row("flush errors", self.flush_errors.to_string());
        row("time: reach", format!("{:.2?}", self.phases.reach));
        row("time: sim", format!("{:.2?}", self.phases.sim));
        row("time: collapse", format!("{:.2?}", self.phases.collapse));
        row("time: refine", format!("{:.2?}", self.phases.refine));
        row("time: omega", format!("{:.2?}", self.phases.omega));
        out
    }

    /// Renders the statistics as one JSON object on a single line
    /// (durations in fractional seconds). Keys are stable; `BENCH_*`
    /// tooling may rely on them.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"outer_rounds\":{},\"reach_runs\":{},\"arg_nodes\":{},\
             \"sim_checks\":{},\"sim_edge_pairs\":{},\
             \"collapse_runs\":{},\"collapse_iterations\":{},\
             \"refine_rounds\":{},\"k_increments\":{},\
             \"preds_seeded\":{},\"refine_rounds_saved\":{},\
             \"abs_queries\":{},\"abs_cache_hits\":{},\"abs_cache_misses\":{},\
             \"abs_hit_rate\":{},\
             \"solver_queries\":{},\"solver_cache_hits\":{},\
             \"solver_cache_misses\":{},\"solver_hit_rate\":{},\
             \"theory_rounds\":{},\
             \"mem_charged_bytes\":{},\"budget_polls\":{},\"faults_injected\":{},\
             \"triage_stage0_decided\":{},\"triage_stage1_decided\":{},\
             \"triage_fallthrough\":{},\
             \"store_recoveries\":{},\"flush_errors\":{},\
             \"time_reach_s\":{},\"time_sim_s\":{},\"time_collapse_s\":{},\
             \"time_refine_s\":{},\"time_omega_s\":{}}}",
            self.outer_rounds,
            self.reach_runs,
            self.arg_nodes,
            self.sim_checks,
            self.sim_edge_pairs,
            self.collapse_runs,
            self.collapse_iterations,
            self.refine_rounds,
            self.k_increments,
            self.preds_seeded,
            self.refine_rounds_saved,
            self.abs.queries,
            self.abs.cache_hits,
            self.abs.cache_misses,
            json_f64(self.abs.hit_rate()),
            self.solver.queries,
            self.solver.cache_hits,
            self.solver.cache_misses,
            json_f64(self.solver.hit_rate()),
            self.solver.theory_rounds,
            self.mem_charged_bytes,
            self.budget_polls,
            self.faults_injected,
            self.triage_stage0_decided,
            self.triage_stage1_decided,
            self.triage_fallthrough,
            self.store_recoveries,
            self.flush_errors,
            json_f64(self.phases.reach.as_secs_f64()),
            json_f64(self.phases.sim.as_secs_f64()),
            json_f64(self.phases.collapse.as_secs_f64()),
            json_f64(self.phases.refine.as_secs_f64()),
            json_f64(self.phases.omega.as_secs_f64()),
        )
    }
}

/// Aggregate roll-up of a batch run: per-outcome verdict counts plus
/// the summed pipeline counters of every file. Assembled by
/// `circ-batch` and rendered into the tail of the aggregate report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchTotals {
    /// Files checked (including ones that failed to compile).
    pub files: u64,
    /// Files proven race-free.
    pub safe: u64,
    /// Files with a confirmed race.
    pub races: u64,
    /// Files where the analysis gave up within its own bounds.
    pub inconclusive: u64,
    /// Files that ran out of their carved resource budget.
    pub budget_exhausted: u64,
    /// Files whose source failed to compile.
    pub compile_errors: u64,
    /// Extra attempts spent re-running transient failures (sum of
    /// per-file retry counts; 0 without a retry policy).
    pub retries: u64,
    /// Isolated child processes that crashed (signal, abort, or an
    /// unreadable row); only non-zero under `--isolate`.
    pub isolated_crashes: u64,
    /// Rows replayed from the journal instead of re-checked
    /// (`--resume` only).
    pub resumed: u64,
    /// Rows drained by a graceful shutdown before completing; these
    /// are never journaled, so a `--resume` run re-checks them.
    pub cancelled: u64,
    /// Summed pipeline counters across all checked files.
    pub pipeline: PipelineStats,
}

impl BatchTotals {
    /// Renders the roll-up as one JSON object on a single line (the
    /// `totals` value of the batch report). Keys are stable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"files\":{},\"safe\":{},\"races\":{},\"inconclusive\":{},\
             \"budget_exhausted\":{},\"compile_errors\":{},\
             \"retries\":{},\"isolated_crashes\":{},\"resumed\":{},\"cancelled\":{},\
             \"pipeline\":{}}}",
            self.files,
            self.safe,
            self.races,
            self.inconclusive,
            self.budget_exhausted,
            self.compile_errors,
            self.retries,
            self.isolated_crashes,
            self.resumed,
            self.cancelled,
            self.pipeline.to_json(),
        )
    }

    /// Renders a short human-readable summary line. Supervision
    /// counters (retries, crashes, resumed, cancelled) only appear
    /// when non-zero, so ordinary runs keep the familiar one-liner.
    pub fn render_summary(&self) -> String {
        let mut s = format!(
            "{} file(s): {} safe, {} race(s), {} inconclusive, {} budget-exhausted, \
             {} compile error(s)",
            self.files,
            self.safe,
            self.races,
            self.inconclusive,
            self.budget_exhausted,
            self.compile_errors,
        );
        if self.resumed > 0 {
            s.push_str(&format!("; {} resumed from journal", self.resumed));
        }
        if self.cancelled > 0 {
            s.push_str(&format!("; {} cancelled", self.cancelled));
        }
        if self.retries > 0 {
            s.push_str(&format!(
                "; {} retr{}",
                self.retries,
                if self.retries == 1 { "y" } else { "ies" }
            ));
        }
        if self.isolated_crashes > 0 {
            s.push_str(&format!("; {} isolated crash(es)", self.isolated_crashes));
        }
        s
    }
}

/// One internally consistent view of a running `circ serve` process:
/// request-level outcomes plus the [`BatchTotals`] roll-up of every
/// row the service has produced. Obtained from
/// [`ServiceStats::snapshot`], which copies the whole struct under a
/// single lock — a `stats` response can never observe, say, a `files`
/// total that includes a row whose verdict count is still missing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Request lines handled, any operation (including rejected ones).
    pub requests: u64,
    /// Check requests that ran to a normal response.
    pub checks: u64,
    /// Check requests shed with an `overloaded` response because the
    /// admission queue was full.
    pub overloaded: u64,
    /// Check requests rejected with a `shutting-down` response during
    /// a graceful drain.
    pub shed_shutting_down: u64,
    /// Request lines that failed to parse or validate.
    pub bad_requests: u64,
    /// Panics contained at the request boundary (the request got an
    /// `internal-error` row or response; the server kept running).
    pub panics_contained: u64,
    /// Per-row roll-up summed across all completed check requests —
    /// the same shape a batch report's `totals` block carries.
    pub totals: BatchTotals,
}

impl ServiceSnapshot {
    /// Renders the snapshot as one JSON object on a single line.
    /// Keys are stable; the serve protocol embeds this verbatim.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"checks\":{},\"overloaded\":{},\
             \"shed_shutting_down\":{},\"bad_requests\":{},\
             \"panics_contained\":{},\"totals\":{}}}",
            self.requests,
            self.checks,
            self.overloaded,
            self.shed_shutting_down,
            self.bad_requests,
            self.panics_contained,
            self.totals.to_json(),
        )
    }
}

/// Shared, thread-safe service counters for `circ serve`.
///
/// Every mutation and every read goes through **one** mutex: updates
/// are applied as a single closure under the lock, and
/// [`ServiceStats::snapshot`] clones the entire state under the same
/// lock. The alternative — per-counter atomics — would let a reader
/// interleave between two `fetch_add`s and report torn totals (a
/// request counted in `checks` but not yet in `totals.files`). The
/// counters move at request granularity, so one uncontended lock is
/// far below the noise floor of an actual check.
#[derive(Debug, Default)]
pub struct ServiceStats {
    inner: std::sync::Mutex<ServiceSnapshot>,
}

impl ServiceStats {
    /// Fresh, all-zero counters.
    pub fn new() -> ServiceStats {
        ServiceStats::default()
    }

    /// Applies one atomic update: `f` runs under the snapshot lock,
    /// so all the counters it touches move together or not at all as
    /// far as any concurrent [`ServiceStats::snapshot`] can observe.
    pub fn apply(&self, f: impl FnOnce(&mut ServiceSnapshot)) {
        let mut guard = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard);
    }

    /// An internally consistent copy of the current counters.
    pub fn snapshot(&self) -> ServiceSnapshot {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Formats an `f64` as a JSON-legal number (JSON has no NaN/Inf).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let mut s = SolverCounters::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates() {
        let mut a = PipelineStats { reach_runs: 2, arg_nodes: 10, ..Default::default() };
        let b = PipelineStats { reach_runs: 1, arg_nodes: 5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.reach_runs, 3);
        assert_eq!(a.arg_nodes, 15);
    }

    #[test]
    fn abs_since_computes_delta() {
        let base = AbsCounters { queries: 10, cache_hits: 4, cache_misses: 6 };
        let now = AbsCounters { queries: 25, cache_hits: 14, cache_misses: 11 };
        let d = now.since(&base);
        assert_eq!(d, AbsCounters { queries: 15, cache_hits: 10, cache_misses: 5 });
    }

    #[test]
    fn json_is_one_line_and_balanced() {
        let s = PipelineStats::default();
        let j = s.to_json();
        assert!(!j.contains('\n'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"abs_hit_rate\":0.000000"));
        assert!(j.contains("\"mem_charged_bytes\":0"));
        assert!(j.contains("\"budget_polls\":0"));
        assert!(j.contains("\"faults_injected\":0"));
        assert!(j.contains("\"preds_seeded\":0"));
        assert!(j.contains("\"refine_rounds_saved\":0"));
        assert!(j.contains("\"triage_stage0_decided\":0"));
        assert!(j.contains("\"triage_stage1_decided\":0"));
        assert!(j.contains("\"triage_fallthrough\":0"));
        assert!(j.contains("\"store_recoveries\":0"));
        assert!(j.contains("\"flush_errors\":0"));
    }

    #[test]
    fn triage_counters_accumulate() {
        let mut a = PipelineStats {
            triage_stage0_decided: 1,
            triage_stage1_decided: 2,
            triage_fallthrough: 3,
            ..Default::default()
        };
        a.add(&PipelineStats {
            triage_stage0_decided: 4,
            triage_fallthrough: 1,
            ..Default::default()
        });
        assert_eq!(a.triage_stage0_decided, 5);
        assert_eq!(a.triage_stage1_decided, 2);
        assert_eq!(a.triage_fallthrough, 4);
        let t = a.render_table();
        assert!(t.contains("triage stage-0 decided"), "{t}");
    }

    #[test]
    fn batch_totals_json_nests_pipeline() {
        let t =
            BatchTotals { files: 3, safe: 1, races: 1, compile_errors: 1, ..Default::default() };
        let j = t.to_json();
        assert!(!j.contains('\n'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"files\":3"));
        assert!(j.contains("\"pipeline\":{"));
        assert!(j.contains("\"retries\":0"));
        assert!(j.contains("\"isolated_crashes\":0"));
        assert!(j.contains("\"resumed\":0"));
        assert!(j.contains("\"cancelled\":0"));
        assert!(t.render_summary().contains("3 file(s)"));
        // Supervision counters stay out of the human summary at zero
        // and show up once non-zero.
        assert!(!t.render_summary().contains("resumed"));
        let busy = BatchTotals { resumed: 2, retries: 1, cancelled: 3, ..t };
        let s = busy.render_summary();
        assert!(s.contains("2 resumed from journal"), "{s}");
        assert!(s.contains("3 cancelled"), "{s}");
        assert!(s.contains("1 retry"), "{s}");
    }

    #[test]
    fn service_snapshot_json_nests_totals() {
        let stats = ServiceStats::new();
        stats.apply(|s| {
            s.requests = 5;
            s.checks = 3;
            s.overloaded = 1;
            s.bad_requests = 1;
            s.totals.files = 4;
            s.totals.safe = 3;
            s.totals.races = 1;
        });
        let j = stats.snapshot().to_json();
        assert!(!j.contains('\n'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"requests\":5"), "{j}");
        assert!(j.contains("\"overloaded\":1"), "{j}");
        assert!(j.contains("\"shed_shutting_down\":0"), "{j}");
        assert!(j.contains("\"totals\":{\"files\":4"), "{j}");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_totals() {
        // Writers move several counters in one `apply`; the invariants
        // `safe + races == files` and `files == 2 · checks` hold after
        // every update, so any snapshot violating them can only come
        // from tearing — exactly what the single lock must prevent.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let stats = Arc::new(ServiceStats::new());
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let stats = Arc::clone(&stats);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let s = stats.snapshot();
                        assert_eq!(
                            s.totals.safe + s.totals.races,
                            s.totals.files,
                            "torn snapshot: verdict counts out of sync with files"
                        );
                        assert_eq!(
                            s.totals.files,
                            2 * s.checks,
                            "torn snapshot: files out of sync with checks"
                        );
                    }
                });
            }
            for _ in 0..4 {
                let stats = Arc::clone(&stats);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        stats.apply(|s| {
                            s.requests += 1;
                            s.checks += 1;
                            s.totals.files += 2;
                            // Alternate so both verdict counters move.
                            if i % 2 == 0 {
                                s.totals.safe += 2;
                            } else {
                                s.totals.safe += 1;
                                s.totals.races += 1;
                            }
                        });
                    }
                });
            }
            // Writer scopes join before `done` flips? No — flip it
            // from the main thread once all writers are spawned and
            // joined via an inner scope would deadlock the readers.
            // Instead: spawn a watchdog that flips `done` when the
            // writers' full quota is visible.
            let stats_w = Arc::clone(&stats);
            let done_w = Arc::clone(&done);
            scope.spawn(move || loop {
                if stats_w.snapshot().checks == 4 * 500 {
                    done_w.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::yield_now();
            });
        });
        let final_snap = stats.snapshot();
        assert_eq!(final_snap.requests, 2000);
        assert_eq!(final_snap.totals.files, 4000);
        assert_eq!(final_snap.totals.safe + final_snap.totals.races, 4000);
    }

    #[test]
    fn table_mentions_every_phase() {
        let t = PipelineStats::default().render_table();
        for key in ["reach", "sim", "collapse", "refine", "omega", "cache hits"] {
            assert!(t.contains(key), "missing {key} in table:\n{t}");
        }
    }
}
