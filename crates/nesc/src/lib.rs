//! TinyOS-style benchmark models for the CIRC evaluation (§6).
//!
//! The paper's experiments run on nesC applications (secureTosBase,
//! surge, sense) whose sources we cannot ship; what the evaluation
//! actually exercises is a small set of *synchronization idioms*, one
//! per protected variable of Table 1. This crate reproduces each
//! idiom as a NesL program at the same structural shape:
//!
//! | idiom | Table 1 rows | model |
//! |---|---|---|
//! | test-and-set state flag (§2, Fig. 1) | `gTxByteCnt` | [`TEST_AND_SET`] |
//! | same flag guarding two variables | `gTxRunningCRC` | [`RUNNING_CRC`] |
//! | conditional locking through a function's return value | `gTxState` | [`CONDITIONAL_LOCK`] |
//! | multi-valued state machine | `gRxHeadIndex` | [`MULTI_STATE`] |
//! | accesses only inside `atomic` | `gTxProto` | [`ATOMIC_ONLY`] |
//! | task-only accesses (run-to-completion mutex) | `gRxTailIndex` | [`TASK_ONLY`] |
//! | split-phase interrupt enable/disable | `rec_ptr` | [`SPLIT_PHASE`] |
//! | interrupt bit combined with a state variable | `tosPort` | [`INTERRUPT_STATE`] |
//!
//! Each safe model has a `_BUGGY` sibling with the synchronization
//! subtly broken (the atomicity removed, the handshake reordered —
//! the kind of bug the paper reports finding in `secureTosBase` and
//! `sense` before the code was fixed); CIRC must return a concrete
//! race schedule on those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circ_frontend::{compile, CompileError, Compiled};
use circ_ir::MtProgram;

/// The paper's reported numbers for one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Application name as in Table 1.
    pub app: &'static str,
    /// Variable name as in Table 1.
    pub variable: &'static str,
    /// Predicates CIRC discovered in the paper.
    pub preds: u32,
    /// Final ACFA size in the paper.
    pub acfa: u32,
    /// Wall-clock in the paper (2 GHz IBM T30).
    pub time: &'static str,
}

/// One benchmark model.
#[derive(Debug, Clone)]
pub struct Model {
    /// Short identifier.
    pub name: &'static str,
    /// NesL source text.
    pub source: &'static str,
    /// Whether the model is race-free.
    pub expected_safe: bool,
    /// Table 1 rows this idiom backs (empty for buggy variants).
    pub paper_rows: &'static [PaperRow],
}

impl Model {
    /// Compiles the model to a CFA plus race annotation.
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (none expected: sources are fixed).
    pub fn compile(&self) -> Result<Compiled, CompileError> {
        compile(self.source)
    }

    /// Compiles and wraps into a checkable program (first `#race`
    /// variable).
    ///
    /// # Panics
    ///
    /// Panics if the model source does not compile or lacks a
    /// `#race` directive — a bug in this crate, not in callers.
    pub fn program(&self) -> MtProgram {
        let compiled = self.compile().expect("benchmark model must compile");
        let var = *compiled.race_vars.first().expect("model declares #race");
        MtProgram::new(compiled.cfa, var)
    }
}

/// The §2 / Figure 1 test-and-set idiom (`gTxByteCnt`).
pub const TEST_AND_SET: &str = include_str!("../models/test_and_set.nesl");
/// The same flag protecting two counters (`gTxRunningCRC`).
pub const RUNNING_CRC: &str = include_str!("../models/running_crc.nesl");
/// Conditional locking: the lock is taken inside a function and the
/// caller branches on its return value (`gTxState`).
pub const CONDITIONAL_LOCK: &str = include_str!("../models/conditional_lock.nesl");
/// A multi-valued mode variable cycling through fill/drain phases
/// (`gRxHeadIndex`).
pub const MULTI_STATE: &str = include_str!("../models/multi_state.nesl");
/// All accesses inside `atomic` — trivially safe (`gTxProto`).
pub const ATOMIC_ONLY: &str = include_str!("../models/atomic_only.nesl");
/// Task-only accesses under a run-to-completion task mutex
/// (`gRxTailIndex`).
pub const TASK_ONLY: &str = include_str!("../models/task_only.nesl");
/// Split-phase interrupt handshake (`rec_ptr` in surge).
pub const SPLIT_PHASE: &str = include_str!("../models/split_phase.nesl");
/// Interrupt bit combined with a state variable (`tosPort` in sense).
pub const INTERRUPT_STATE: &str = include_str!("../models/interrupt_state.nesl");

/// Bounded-retry locking (a `while`/`break` variant of conditional
/// locking; extra coverage beyond Table 1).
pub const RETRY_LOCK: &str = include_str!("../models/retry_lock.nesl");

/// Figure 1 without the atomic block: racy.
pub const TEST_AND_SET_BUGGY: &str = include_str!("../models/test_and_set_buggy.nesl");
/// Conditional locking where one access is performed after the lock
/// is released (the `gTxState` bug the paper reports in
/// secureTosBase).
pub const CONDITIONAL_LOCK_BUGGY: &str = include_str!("../models/conditional_lock_buggy.nesl");
/// The interrupt re-enabled before the protected write finishes (the
/// `tosPort` bug the paper reports in sense).
pub const INTERRUPT_STATE_BUGGY: &str = include_str!("../models/interrupt_state_buggy.nesl");

/// All models, safe ones first.
pub fn models() -> Vec<Model> {
    vec![
        Model {
            name: "test_and_set",
            source: TEST_AND_SET,
            expected_safe: true,
            paper_rows: &[
                PaperRow {
                    app: "secureTosBase",
                    variable: "gTxByteCnt",
                    preds: 4,
                    acfa: 13,
                    time: "1m41s",
                },
                PaperRow {
                    app: "surge",
                    variable: "gTxByteCnt",
                    preds: 4,
                    acfa: 15,
                    time: "1m34s",
                },
            ],
        },
        Model {
            name: "running_crc",
            source: RUNNING_CRC,
            expected_safe: true,
            paper_rows: &[
                PaperRow {
                    app: "secureTosBase",
                    variable: "gTxRunningCRC",
                    preds: 4,
                    acfa: 13,
                    time: "1m50s",
                },
                PaperRow {
                    app: "surge",
                    variable: "gTxRunningCRC",
                    preds: 4,
                    acfa: 15,
                    time: "1m45s",
                },
            ],
        },
        Model {
            name: "conditional_lock",
            source: CONDITIONAL_LOCK,
            expected_safe: true,
            paper_rows: &[
                PaperRow {
                    app: "secureTosBase",
                    variable: "gTxState",
                    preds: 11,
                    acfa: 23,
                    time: "7m38s",
                },
                PaperRow { app: "surge", variable: "gTxState", preds: 11, acfa: 35, time: "9m54s" },
            ],
        },
        Model {
            name: "multi_state",
            source: MULTI_STATE,
            expected_safe: true,
            paper_rows: &[PaperRow {
                app: "secureTosBase",
                variable: "gRxHeadIndex",
                preds: 8,
                acfa: 64,
                time: "20m50s",
            }],
        },
        Model {
            name: "atomic_only",
            source: ATOMIC_ONLY,
            expected_safe: true,
            paper_rows: &[PaperRow {
                app: "secureTosBase",
                variable: "gTxProto",
                preds: 0,
                acfa: 9,
                time: "12s",
            }],
        },
        Model {
            name: "task_only",
            source: TASK_ONLY,
            expected_safe: true,
            paper_rows: &[PaperRow {
                app: "secureTosBase",
                variable: "gRxTailIndex",
                preds: 0,
                acfa: 5,
                time: "2s",
            }],
        },
        Model {
            name: "split_phase",
            source: SPLIT_PHASE,
            expected_safe: true,
            paper_rows: &[PaperRow {
                app: "surge",
                variable: "rec_ptr",
                preds: 4,
                acfa: 23,
                time: "1m18s",
            }],
        },
        Model {
            name: "interrupt_state",
            source: INTERRUPT_STATE,
            expected_safe: true,
            paper_rows: &[PaperRow {
                app: "sense",
                variable: "tosPort",
                preds: 6,
                acfa: 26,
                time: "16m25s",
            }],
        },
        Model { name: "retry_lock", source: RETRY_LOCK, expected_safe: true, paper_rows: &[] },
        Model {
            name: "test_and_set_buggy",
            source: TEST_AND_SET_BUGGY,
            expected_safe: false,
            paper_rows: &[],
        },
        Model {
            name: "conditional_lock_buggy",
            source: CONDITIONAL_LOCK_BUGGY,
            expected_safe: false,
            paper_rows: &[],
        },
        Model {
            name: "interrupt_state_buggy",
            source: INTERRUPT_STATE_BUGGY,
            expected_safe: false,
            paper_rows: &[],
        },
    ]
}

/// Looks up a model by name.
pub fn model(name: &str) -> Option<Model> {
    models().into_iter().find(|m| m.name == name)
}

/// Generates the NesL source of an `n`-phase token ring: a mode
/// variable cycles through `2n` values; each odd phase holds the
/// token and writes the shared variable. A scaling family for the
/// checker — the proof needs predicates for every mode value, so
/// predicate count, ACFA size, and time all grow with `n`
/// (generalizes the `multi_state` idiom; used by the `scaling`
/// bench).
///
/// # Panics
///
/// Panics if `phases` is zero.
pub fn token_ring_source(phases: u32) -> String {
    assert!(phases > 0, "need at least one phase");
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "global int x;");
    let _ = writeln!(s, "global int mode;");
    let _ = writeln!(s, "#race x;");
    let _ = writeln!(s, "thread ring {{");
    let _ = writeln!(s, "  local int got;");
    let _ = writeln!(s, "  loop {{");
    for i in 0..phases {
        let grab = 2 * i; // token at rest
        let hold = 2 * i + 1; // token held by the writer
        let next = (2 * i + 2) % (2 * phases);
        let _ = writeln!(s, "    got = 0;");
        let _ = writeln!(s, "    atomic {{ if (mode == {grab}) {{ mode = {hold}; got = 1; }} }}");
        let _ = writeln!(s, "    if (got == 1) {{");
        let _ = writeln!(s, "      x = x + 1;");
        let _ = writeln!(s, "      atomic {{ mode = {next}; }}");
        let _ = writeln!(s, "    }}");
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

/// Compiles a generated token ring into a checkable program.
///
/// # Panics
///
/// Panics if `phases` is zero (the generated source always compiles).
pub fn token_ring(phases: u32) -> MtProgram {
    let src = token_ring_source(phases);
    let compiled = compile(&src).expect("generated source compiles");
    let var = compiled.race_vars[0];
    MtProgram::new(compiled.cfa, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::Interp;

    #[test]
    fn all_models_compile() {
        for m in models() {
            let compiled = m.compile().unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(!compiled.race_vars.is_empty(), "{} lacks #race", m.name);
        }
    }

    #[test]
    fn safe_models_pass_bounded_concrete_exploration() {
        for m in models().iter().filter(|m| m.expected_safe) {
            let program = m.program();
            for n in [2, 3] {
                let interp = Interp::new(program.clone(), n);
                assert!(
                    interp.explore_bounded(300_000, &[0, 1]).is_none(),
                    "{} races concretely with {n} threads",
                    m.name
                );
            }
        }
    }

    #[test]
    fn buggy_models_race_concretely() {
        for m in models().iter().filter(|m| !m.expected_safe) {
            let program = m.program();
            let interp = Interp::new(program.clone(), 2);
            assert!(
                interp.explore_bounded(500_000, &[0, 1]).is_some(),
                "{} should race with 2 threads",
                m.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(model("split_phase").is_some());
        assert!(model("nope").is_none());
        assert_eq!(models().len(), 12);
    }

    #[test]
    fn token_ring_generates_and_compiles() {
        for n in 1..=4 {
            let program = token_ring(n);
            assert!(program.cfa().num_locs() > (n as usize) * 4);
        }
    }

    #[test]
    fn token_ring_race_free_concretely() {
        let program = token_ring(2);
        for threads in [2, 3] {
            let interp = Interp::new(program.clone(), threads);
            assert!(
                interp.explore_bounded(300_000, &[]).is_none(),
                "token ring races with {threads} threads"
            );
        }
    }

    #[test]
    fn paper_rows_cover_table1() {
        let rows: usize = models().iter().map(|m| m.paper_rows.len()).sum();
        assert_eq!(rows, 11, "Table 1 has 11 rows");
    }
}
