//! Minimal parallel-execution substrate for the CIRC pipeline.
//!
//! The build environment has no crates.io access (all third-party
//! dependencies are vendored shims), so this crate hand-rolls the two
//! primitives the pipeline needs on top of `std` alone:
//!
//! * [`Pool`] — a scoped worker pool over [`std::thread::scope`] with
//!   an order-preserving `map`. Work is handed out through a single
//!   atomic index (work stealing degenerates to work *sharing*, which
//!   is enough for the coarse-grained tasks the pipeline produces),
//!   and results are returned in input order so callers can replay
//!   them exactly as a sequential loop would have produced them.
//! * [`ShardedMap`] — a `Mutex`-sharded hash map whose
//!   `get_or_compute` runs the closure *under the shard lock*. That
//!   choice trades some lock hold time for a strong accounting
//!   guarantee: the first query for a distinct key is exactly one
//!   miss and every later query is a hit, under any thread
//!   interleaving. Cache hit/miss counters therefore match the
//!   sequential run exactly, which the determinism tests rely on.
//!
//! Both primitives are deliberately deterministic: `Pool::map` output
//! order never depends on scheduling, and shard selection hashes with
//! [`DefaultHasher::new`], which is stable within a build.
//!
//! Panic containment: [`Pool::try_map`] catches unwinds *per task*
//! and returns them as [`TaskError`] values, so one bad task cannot
//! take down its siblings or leave the pool unusable. [`Pool::map`]
//! still panics on the first task failure (after all results are
//! collected), preserving the fail-fast contract for callers that
//! have no per-task error channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use circ_governor::{panic_message, FaultPlan};

/// A task that panicked inside [`Pool::try_map`], reduced to its
/// panic message. The unwind never crosses the pool boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

/// A fixed-width scoped worker pool.
///
/// `jobs == 1` (the default everywhere) runs tasks inline on the
/// calling thread — no threads are spawned and the pipeline behaves
/// exactly like the sequential implementation it replaced.
///
/// The pool is stateless apart from its configuration, so it stays
/// fully usable after a task failure: a `try_map` whose results
/// contain [`TaskError`]s does not wedge later calls.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
    faults: FaultPlan,
}

impl Pool {
    /// Create a pool with `jobs` workers. `0` means "one worker per
    /// available CPU" (à la `make -j`).
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs
        };
        Pool { jobs, faults: FaultPlan::inert() }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn sequential() -> Pool {
        Pool { jobs: 1, faults: FaultPlan::inert() }
    }

    /// Attach a fault-injection schedule. Armed `task_panic` faults
    /// make tasks panic before running their closure; inert plans
    /// (and builds without the `inject` feature) change nothing.
    pub fn with_faults(mut self, faults: FaultPlan) -> Pool {
        self.faults = faults;
        self
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// Convenience wrapper over [`Pool::try_map`] for callers without
    /// a per-task error channel: every task still runs to completion
    /// (or containment), then the first task failure, if any, is
    /// re-raised as a panic on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("{e}"),
            })
            .collect()
    }

    /// Apply `f` to every item, returning per-task results in input
    /// order. A panicking task is caught inside its worker and
    /// surfaces as `Err(TaskError)` in its own slot; sibling tasks
    /// run to completion and the pool remains usable.
    ///
    /// With one worker (or fewer than two items) tasks run inline on
    /// the calling thread (still individually contained); otherwise
    /// items are pulled off a shared atomic counter by
    /// `min(jobs, len)` scoped threads.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskError>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let run_one = |item: &T| -> Result<R, TaskError> {
            catch_unwind(AssertUnwindSafe(|| {
                if self.faults.task_panic() {
                    panic!("injected task panic");
                }
                f(item)
            }))
            .map_err(|payload| TaskError { message: panic_message(payload.as_ref()) })
        };
        if self.jobs <= 1 || items.len() < 2 {
            return items.iter().map(run_one).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(items.len());
        let per_worker: Vec<Vec<(usize, Result<R, TaskError>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, run_one(&items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads contain panics via catch_unwind"))
                .collect()
        });
        let mut slots: Vec<Option<Result<R, TaskError>>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|o| o.expect("every index was dispatched exactly once")).collect()
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::sequential()
    }
}

/// Default shard count for [`ShardedMap`]. High enough that workers
/// rarely collide, low enough that `len()` stays cheap.
const DEFAULT_SHARDS: usize = 64;

/// A `Mutex`-sharded hash map with compute-under-lock memoization.
///
/// Shard selection is a pure function of the key's hash, so a given
/// key always lands in the same shard and `get_or_compute` can make
/// its exactly-once guarantee: concurrent callers with equal keys
/// serialize on the shard lock, the first runs the closure, the rest
/// observe the cached value.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// An empty map with the default shard count.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with `shards` shards (at least 1).
    pub fn with_shards(shards: usize) -> ShardedMap<K, V> {
        let shards = shards.max(1);
        ShardedMap { shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look up `key`, running `compute` under the shard lock on a
    /// miss. Returns the value and whether it was already cached.
    ///
    /// Holding the lock during `compute` is what makes hit/miss
    /// accounting exact under concurrency: per distinct key there is
    /// exactly one miss, ever. `compute` must not re-enter the same
    /// map (it may use *other* maps lower in the locking order).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        // Recover from poisoning: a contained task panic must not
        // wedge the cache for sibling tasks. Entries are only written
        // after `compute` returns, so a poisoned shard still holds
        // consistent data.
        let mut shard = self.shards[self.shard_of(&key)].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = shard.get(&key) {
            return (v.clone(), true);
        }
        let v = compute();
        shard.insert(key, v.clone());
        (v, false)
    }

    /// Inserts `key → value` directly, bypassing the compute path.
    /// Returns `false` (keeping the existing value) when the key is
    /// already present — first write wins, matching
    /// [`ShardedMap::get_or_compute`]. Used to preload a map from a
    /// persisted snapshot; deliberately touches no caller-side
    /// counters, so a preloaded entry's first query still counts as a
    /// hit.
    pub fn insert(&self, key: K, value: V) -> bool {
        let mut shard = self.shards[self.shard_of(&key)].lock().unwrap_or_else(|e| e.into_inner());
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, value);
        true
    }

    /// Clones out every entry. Order is unspecified (per-shard hash
    /// order, which varies between processes); callers that need
    /// stable output must sort.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> ShardedMap<K, V> {
        ShardedMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = Pool::sequential().map(&items, |&x| x * 3 + 1);
        let par = Pool::new(4).map(&items, |&x| x * 3 + 1);
        assert_eq!(seq, par);
        assert_eq!(par[17], 52);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(Pool::new(0).jobs() >= 1);
        assert_eq!(Pool::new(3).jobs(), 3);
    }

    #[test]
    fn map_handles_empty_and_single_item_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn get_or_compute_runs_the_closure_exactly_once_per_key() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        let computes = AtomicU64::new(0);
        let keys: Vec<u32> = (0..400).map(|i| i % 20).collect();
        // Hammer 20 distinct keys from 8 workers: the compute count
        // must equal the number of distinct keys, not the number of
        // lookups, or parallel cache-miss counters would drift.
        Pool::new(8).map(&keys, |&k| {
            map.get_or_compute(k, || {
                computes.fetch_add(1, Ordering::Relaxed);
                k * 2
            })
            .0
        });
        assert_eq!(computes.load(Ordering::Relaxed), 20);
        assert_eq!(map.len(), 20);
        let (v, hit) = map.get_or_compute(7, || unreachable!("must be cached"));
        assert_eq!(v, 14);
        assert!(hit);
    }

    #[test]
    fn try_map_contains_panics_per_task() {
        for jobs in [1, 4] {
            let pool = Pool::new(jobs);
            let items: Vec<u32> = (0..20).collect();
            let results = pool.try_map(&items, |&x| {
                if x % 7 == 3 {
                    panic!("task {x} exploded");
                }
                x * 2
            });
            assert_eq!(results.len(), 20);
            for (i, r) in results.iter().enumerate() {
                if i % 7 == 3 {
                    let err = r.as_ref().expect_err("task should have failed");
                    assert_eq!(err.message, format!("task {i} exploded"));
                } else {
                    assert_eq!(*r.as_ref().expect("task should have succeeded"), (i as u32) * 2);
                }
            }
        }
    }

    #[test]
    fn pool_stays_usable_after_a_task_failure() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..8).collect();
        let first = pool.try_map(&items, |&x| {
            if x == 5 {
                panic!("one bad apple");
            }
            x
        });
        assert!(first[5].is_err());
        assert_eq!(first.iter().filter(|r| r.is_ok()).count(), 7);
        // The same pool instance must run a clean map afterwards.
        let second = pool.map(&items, |&x| x + 1);
        assert_eq!(second, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "worker task panicked: boom")]
    fn map_reraises_the_first_task_failure() {
        let items: Vec<u32> = (0..4).collect();
        Pool::new(2).map(&items, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn sharded_map_survives_a_poisoning_panic() {
        let map: ShardedMap<u32, u32> = ShardedMap::with_shards(1);
        map.get_or_compute(1, || 10);
        // Poison the single shard by panicking under its lock.
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            map.get_or_compute(2, || panic!("compute failed"));
        }));
        assert!(poisoned.is_err());
        // The map recovers: old entries are intact, new inserts work.
        let (v, hit) = map.get_or_compute(1, || unreachable!("must be cached"));
        assert_eq!((v, hit), (10, true));
        let (v, hit) = map.get_or_compute(3, || 30);
        assert_eq!((v, hit), (30, false));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn insert_preloads_and_first_write_wins() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        assert!(map.insert(1, 10));
        assert!(!map.insert(1, 99), "second insert must not overwrite");
        // A preloaded key is a hit on first query, not a miss.
        let (v, hit) = map.get_or_compute(1, || unreachable!("preloaded"));
        assert_eq!((v, hit), (10, true));
        // get_or_compute entries also block later inserts.
        map.get_or_compute(2, || 20);
        assert!(!map.insert(2, 99));
        let (v, _) = map.get_or_compute(2, || unreachable!());
        assert_eq!(v, 20);
    }

    #[test]
    fn snapshot_round_trips_through_insert() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(8);
        for k in 0..50 {
            map.get_or_compute(k, || k * 7);
        }
        let mut snap = map.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 50);
        let copy: ShardedMap<u64, u64> = ShardedMap::new();
        for (k, v) in snap {
            copy.insert(k, v);
        }
        assert_eq!(copy.len(), 50);
        let (v, hit) = copy.get_or_compute(21, || unreachable!());
        assert_eq!((v, hit), (147, true));
    }

    #[test]
    fn sharded_map_reports_len_across_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(4);
        assert!(map.is_empty());
        for k in 0..100 {
            map.get_or_compute(k, || k);
        }
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
    }
}
