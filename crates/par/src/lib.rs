//! Minimal parallel-execution substrate for the CIRC pipeline.
//!
//! The build environment has no crates.io access (all third-party
//! dependencies are vendored shims), so this crate hand-rolls the two
//! primitives the pipeline needs on top of `std` alone:
//!
//! * [`Pool`] — a scoped worker pool over [`std::thread::scope`] with
//!   an order-preserving `map`. Work is handed out through a single
//!   atomic index (work stealing degenerates to work *sharing*, which
//!   is enough for the coarse-grained tasks the pipeline produces),
//!   and results are returned in input order so callers can replay
//!   them exactly as a sequential loop would have produced them.
//! * [`ShardedMap`] — a `Mutex`-sharded hash map whose
//!   `get_or_compute` runs the closure *under the shard lock*. That
//!   choice trades some lock hold time for a strong accounting
//!   guarantee: the first query for a distinct key is exactly one
//!   miss and every later query is a hit, under any thread
//!   interleaving. Cache hit/miss counters therefore match the
//!   sequential run exactly, which the determinism tests rely on.
//!
//! Both primitives are deliberately deterministic: `Pool::map` output
//! order never depends on scheduling, and shard selection hashes with
//! [`DefaultHasher::new`], which is stable within a build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width scoped worker pool.
///
/// `jobs == 1` (the default everywhere) runs tasks inline on the
/// calling thread — no threads are spawned and the pipeline behaves
/// exactly like the sequential implementation it replaced.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// Create a pool with `jobs` workers. `0` means "one worker per
    /// available CPU" (à la `make -j`).
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs
        };
        Pool { jobs }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn sequential() -> Pool {
        Pool { jobs: 1 }
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// With one worker (or fewer than two items) this is a plain
    /// sequential loop; otherwise items are pulled off a shared
    /// atomic counter by `min(jobs, len)` scoped threads. A panic in
    /// any task is propagated to the caller after all workers join.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.jobs <= 1 || items.len() < 2 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(items.len());
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(&items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|o| o.expect("every index was dispatched exactly once")).collect()
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::sequential()
    }
}

/// Default shard count for [`ShardedMap`]. High enough that workers
/// rarely collide, low enough that `len()` stays cheap.
const DEFAULT_SHARDS: usize = 64;

/// A `Mutex`-sharded hash map with compute-under-lock memoization.
///
/// Shard selection is a pure function of the key's hash, so a given
/// key always lands in the same shard and `get_or_compute` can make
/// its exactly-once guarantee: concurrent callers with equal keys
/// serialize on the shard lock, the first runs the closure, the rest
/// observe the cached value.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// An empty map with the default shard count.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with `shards` shards (at least 1).
    pub fn with_shards(shards: usize) -> ShardedMap<K, V> {
        let shards = shards.max(1);
        ShardedMap { shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look up `key`, running `compute` under the shard lock on a
    /// miss. Returns the value and whether it was already cached.
    ///
    /// Holding the lock during `compute` is what makes hit/miss
    /// accounting exact under concurrency: per distinct key there is
    /// exactly one miss, ever. `compute` must not re-enter the same
    /// map (it may use *other* maps lower in the locking order).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let mut shard = self.shards[self.shard_of(&key)].lock().expect("sharded map lock poisoned");
        if let Some(v) = shard.get(&key) {
            return (v.clone(), true);
        }
        let v = compute();
        shard.insert(key, v.clone());
        (v, false)
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("sharded map lock poisoned").len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> ShardedMap<K, V> {
        ShardedMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = Pool::sequential().map(&items, |&x| x * 3 + 1);
        let par = Pool::new(4).map(&items, |&x| x * 3 + 1);
        assert_eq!(seq, par);
        assert_eq!(par[17], 52);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(Pool::new(0).jobs() >= 1);
        assert_eq!(Pool::new(3).jobs(), 3);
    }

    #[test]
    fn map_handles_empty_and_single_item_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn get_or_compute_runs_the_closure_exactly_once_per_key() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        let computes = AtomicU64::new(0);
        let keys: Vec<u32> = (0..400).map(|i| i % 20).collect();
        // Hammer 20 distinct keys from 8 workers: the compute count
        // must equal the number of distinct keys, not the number of
        // lookups, or parallel cache-miss counters would drift.
        Pool::new(8).map(&keys, |&k| {
            map.get_or_compute(k, || {
                computes.fetch_add(1, Ordering::Relaxed);
                k * 2
            })
            .0
        });
        assert_eq!(computes.load(Ordering::Relaxed), 20);
        assert_eq!(map.len(), 20);
        let (v, hit) = map.get_or_compute(7, || unreachable!("must be cached"));
        assert_eq!(v, 14);
        assert!(hit);
    }

    #[test]
    fn sharded_map_reports_len_across_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(4);
        assert!(map.is_empty());
        for k in 0..100 {
            map.get_or_compute(k, || k);
        }
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
    }
}
