//! Multithreaded programs.
//!
//! The paper analyzes *symmetric* multithreaded programs `C^∞`: an
//! arbitrary number of threads all running the same CFA `C` (§3.2).
//! [`MtProgram`] captures a symmetric program together with the race
//! variable under scrutiny; the concrete interpreter instantiates it
//! with a finite number of threads, while CIRC reasons about the
//! unbounded instantiation.

use crate::cfa::{Cfa, Var};
use std::fmt;
use std::sync::Arc;

/// Identifies one thread of a finite instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A symmetric multithreaded program: arbitrarily many copies of one
/// CFA, plus the global variable to check for races.
#[derive(Debug, Clone)]
pub struct MtProgram {
    cfa: Arc<Cfa>,
    race_var: Var,
}

impl MtProgram {
    /// Creates a program from a CFA and the global race variable.
    ///
    /// # Panics
    ///
    /// Panics if `race_var` is not a global of `cfa`.
    pub fn new(cfa: Cfa, race_var: Var) -> MtProgram {
        assert!(cfa.is_global(race_var), "race variable {race_var} must be global");
        MtProgram { cfa: Arc::new(cfa), race_var }
    }

    /// The thread template.
    pub fn cfa(&self) -> &Cfa {
        &self.cfa
    }

    /// Shared handle to the thread template.
    pub fn cfa_arc(&self) -> Arc<Cfa> {
        Arc::clone(&self.cfa)
    }

    /// The variable checked for races.
    pub fn race_var(&self) -> Var {
        self.race_var
    }

    /// Same program, different race variable.
    pub fn with_race_var(&self, v: Var) -> MtProgram {
        assert!(self.cfa.is_global(v), "race variable {v} must be global");
        MtProgram { cfa: Arc::clone(&self.cfa), race_var: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::figure1_cfa;

    #[test]
    fn program_holds_race_var() {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        assert_eq!(p.race_var(), x);
        assert_eq!(p.cfa().name(), "test_and_set");
    }

    #[test]
    #[should_panic(expected = "must be global")]
    fn local_race_var_rejected() {
        let cfa = figure1_cfa();
        let old = cfa.var_by_name("old").unwrap();
        let _ = MtProgram::new(cfa, old);
    }

    #[test]
    fn switch_race_var() {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let state = cfa.var_by_name("state").unwrap();
        let p = MtProgram::new(cfa, x).with_race_var(state);
        assert_eq!(p.race_var(), state);
    }
}
