//! Structural digests of CFAs.
//!
//! The digest identifies a CFA up to *naming*: variables enter the
//! hash as table indices plus their global/local kind (alpha-renaming
//! — the source-level spellings are invisible), locations as their
//! already-canonical table indices, and edges in edge-table order with
//! their operations rendered over variable indices. Two programs that
//! lower to structurally identical automata — e.g. the same file
//! re-saved with different identifier names or whitespace — share a
//! digest; any semantic change to a location, edge, operation,
//! atomic-section mark, or variable kind changes it.
//!
//! The persistent predicate store (`circ-core`) keys its entries on
//! this digest, so the hash must be stable across runs and platforms:
//! it is FNV-1a 64 over a deterministic text rendering, the same hash
//! family the cache snapshots use for their checksums.

use crate::cfa::{Cfa, Op, VarKind};
use std::fmt::Write as _;

/// FNV-1a 64-bit, duplicated from `circ-smt`'s persistence layer
/// (this crate sits below `circ-smt` in the dependency order).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical text rendering the digest hashes. Exposed for tests
/// and for DESIGN.md-level debugging (`circ inspect` could print it);
/// the wire format of the predicate store stores only the hash.
pub fn structural_rendering(cfa: &Cfa) -> String {
    let mut s = String::new();
    // Variables: index order, kind only — names are alpha-renamed away.
    let _ = write!(s, "cfa locs={} entry={} vars=", cfa.num_locs(), cfa.entry().index());
    for info in cfa.vars() {
        s.push(match info.kind {
            VarKind::Global => 'G',
            VarKind::Local => 'L',
        });
    }
    s.push('\n');
    // Edges in edge-table order; `Expr`/`BoolExpr` display over `v<ix>`
    // is already index-based, hence name-free.
    for edge in cfa.edges() {
        let _ = match &edge.op {
            Op::Assign(v, e) => {
                writeln!(
                    s,
                    "edge {} {} := v{} {}",
                    edge.src.index(),
                    edge.dst.index(),
                    v.index(),
                    e
                )
            }
            Op::Assume(p) => {
                writeln!(s, "edge {} {} asm {}", edge.src.index(), edge.dst.index(), p)
            }
        };
    }
    // Atomic and error marks, in location order (BTreeSet iteration).
    let _ = write!(s, "atomic");
    for l in cfa.atomic_locs() {
        let _ = write!(s, " {}", l.index());
    }
    let _ = write!(s, "\nerror");
    for l in cfa.error_locs() {
        let _ = write!(s, " {}", l.index());
    }
    s.push('\n');
    s
}

/// Structural digest of a CFA: FNV-1a 64 of [`structural_rendering`].
pub fn structural_digest(cfa: &Cfa) -> u64 {
    fnv1a64(structural_rendering(cfa).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::{figure1_cfa, CfaBuilder};
    use crate::expr::{BoolExpr, Expr};

    /// The figure-1 CFA with every identifier renamed; structurally
    /// identical.
    fn renamed_figure1(name: &str, vars: [&str; 3]) -> Cfa {
        let mut b = CfaBuilder::new(name);
        let x = b.global(vars[0]);
        let state = b.global(vars[1]);
        let old = b.local(vars[2]);
        let l1 = b.entry();
        let l2 = b.fresh_loc();
        let l3 = b.fresh_loc();
        let l5 = b.fresh_loc();
        let l6 = b.fresh_loc();
        let l7 = b.fresh_loc();
        b.mark_atomic(l2);
        b.mark_atomic(l3);
        b.edge(l1, Op::assign(old, Expr::var(state)), l2);
        b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
        b.edge(l3, Op::assign(state, Expr::int(1)), l5);
        b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
        b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
        b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
        b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
        b.edge(l7, Op::assign(state, Expr::int(0)), l1);
        b.build()
    }

    #[test]
    fn digest_is_alpha_renaming_invariant() {
        let a = renamed_figure1("fig1", ["x", "state", "old"]);
        let b = renamed_figure1("totally_different", ["count", "flag", "snapshot"]);
        assert_eq!(structural_digest(&a), structural_digest(&b));
        assert_eq!(structural_digest(&a), structural_digest(&figure1_cfa()));
    }

    #[test]
    fn digest_sees_semantic_changes() {
        let base = figure1_cfa();
        let mut changed_op = renamed_figure1("fig1", ["x", "state", "old"]);
        // identical so far
        assert_eq!(structural_digest(&base), structural_digest(&changed_op));
        // an extra edge changes the digest
        let mut b = CfaBuilder::new("fig1");
        let x = b.global("x");
        let _state = b.global("state");
        let _old = b.local("old");
        let l1 = b.entry();
        b.edge(l1, Op::assign(x, Expr::int(0)), l1);
        changed_op = b.build();
        assert_ne!(structural_digest(&base), structural_digest(&changed_op));
    }

    #[test]
    fn digest_sees_atomicity_and_kind_changes() {
        // Same automaton, one atomic mark removed: different digest.
        let with_atomic = renamed_figure1("a", ["x", "state", "old"]);
        let mut b = CfaBuilder::new("a");
        let x = b.global("x");
        let state = b.global("state");
        let old = b.local("old");
        let l1 = b.entry();
        let l2 = b.fresh_loc();
        let l3 = b.fresh_loc();
        let l5 = b.fresh_loc();
        let l6 = b.fresh_loc();
        let l7 = b.fresh_loc();
        b.mark_atomic(l2); // l3 not atomic this time
        b.edge(l1, Op::assign(old, Expr::var(state)), l2);
        b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
        b.edge(l3, Op::assign(state, Expr::int(1)), l5);
        b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
        b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
        b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
        b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
        b.edge(l7, Op::assign(state, Expr::int(0)), l1);
        let without = b.build();
        assert_ne!(structural_digest(&with_atomic), structural_digest(&without));
    }

    #[test]
    fn rendering_has_no_variable_names() {
        let cfa = renamed_figure1("fig1", ["somename", "othername", "third"]);
        let r = structural_rendering(&cfa);
        assert!(!r.contains("somename") && !r.contains("fig1"), "{r}");
    }
}
