//! Core intermediate representation for the CIRC race checker.
//!
//! This crate defines the program model of *"Race Checking by Context
//! Inference"* (Henzinger, Jhala, Majumdar; PLDI 2004), §3:
//!
//! * integer [`Expr`]essions and boolean [`BoolExpr`]essions / atomic
//!   [`Pred`]icates over program [`Var`]iables,
//! * [`Op`]erations — assignments `x := e` and assumes `asm [p]` — that
//!   label the edges of a [`Cfa`] (control flow automaton) with
//!   distinguished *atomic* locations,
//! * symmetric multithreaded programs [`MtProgram`] (`C^∞` in the
//!   paper: arbitrarily many copies of one CFA), and
//! * the concrete small-step semantics ([`interp`]) together with the
//!   race-state definition of §4.1.
//!
//! Downstream crates build the abstract semantics on top of this IR:
//! `circ-acfa` defines abstract threads, `circ-core` the CIRC
//! inference algorithm itself.
//!
//! # Example
//!
//! ```
//! use circ_ir::{CfaBuilder, Expr, BoolExpr, Op};
//!
//! // A tiny thread:   0: x := x + 1;  1: assume x > 0;  2: done
//! let mut b = CfaBuilder::new("tick");
//! let x = b.global("x");
//! let l0 = b.entry();
//! let l1 = b.fresh_loc();
//! let l2 = b.fresh_loc();
//! b.edge(l0, Op::assign(x, Expr::var(x) + Expr::int(1)), l1);
//! b.edge(l1, Op::assume(BoolExpr::gt(Expr::var(x), Expr::int(0))), l2);
//! let cfa = b.build();
//! assert_eq!(cfa.num_locs(), 3);
//! assert!(cfa.writes_at(l0).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfa;
pub mod digest;
pub mod dot;
mod expr;
pub mod interp;
mod program;

pub use cfa::{
    figure1_cfa, AccessKind, Cfa, CfaBuilder, Edge, EdgeId, Loc, Op, Var, VarInfo, VarKind,
};
pub use digest::{structural_digest, structural_rendering};
pub use expr::{BinOp, BoolExpr, CmpOp, Expr, Pred};
pub use interp::{ConcreteState, Interp, RaceWitness, SchedChoice};
pub use program::{MtProgram, ThreadId};
