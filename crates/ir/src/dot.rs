//! Graphviz and ASCII rendering of CFAs, used by the figure
//! regeneration binaries (`circ-bench`) and handy when debugging.

use crate::cfa::Cfa;
use std::fmt::Write as _;

/// Renders a CFA in Graphviz `dot` syntax. Atomic locations are drawn
/// with a doubled border, mirroring the `*` marks of Figure 1.
pub fn cfa_to_dot(cfa: &Cfa) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", cfa.name());
    let _ = writeln!(s, "  rankdir=TB; node [shape=circle];");
    for l in cfa.locs() {
        let shape = if cfa.is_atomic(l) { "doublecircle" } else { "circle" };
        let _ = writeln!(s, "  n{} [label=\"{}\", shape={}];", l.index(), cfa.loc_label(l), shape);
    }
    let _ = writeln!(s, "  init [shape=point]; init -> n{};", cfa.entry().index());
    for e in cfa.edges() {
        let label = format!("{}", e.op).replace('"', "\\\"");
        let _ = writeln!(s, "  n{} -> n{} [label=\"{}\"];", e.src.index(), e.dst.index(), label);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders a CFA as an indented ASCII adjacency listing.
pub fn cfa_to_text(cfa: &Cfa) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "CFA `{}` ({} locations, {} edges)",
        cfa.name(),
        cfa.num_locs(),
        cfa.edges().len()
    );
    let _ = writeln!(
        s,
        "  globals: {}",
        cfa.globals().iter().map(|v| cfa.var_name(*v)).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        s,
        "  locals:  {}",
        cfa.locals().iter().map(|v| cfa.var_name(*v)).collect::<Vec<_>>().join(", ")
    );
    for l in cfa.locs() {
        let star = if cfa.is_atomic(l) { "*" } else { " " };
        let entry = if l == cfa.entry() { " (entry)" } else { "" };
        let _ = writeln!(s, "  {}{}{}", cfa.loc_label(l), star, entry);
        for &eid in cfa.out_edges(l) {
            let e = cfa.edge(eid);
            let mut op = format!("{}", e.op);
            // print variable names instead of raw indices (longest
            // index first so `v10` is not mangled by `v1`)
            for ix in (0..cfa.vars().len()).rev() {
                op = op.replace(&format!("v{ix}"), &cfa.vars()[ix].name);
            }
            let _ = writeln!(s, "    --[{}]--> {}", op, cfa.loc_label(e.dst));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::figure1_cfa;

    #[test]
    fn dot_output_contains_all_edges() {
        let cfa = figure1_cfa();
        let dot = cfa_to_dot(&cfa);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), cfa.edges().len() + 1); // +1 for init
        assert!(dot.contains("doublecircle")); // atomic marks present
    }

    #[test]
    fn text_output_uses_variable_names() {
        let cfa = figure1_cfa();
        let txt = cfa_to_text(&cfa);
        assert!(txt.contains("state"));
        assert!(txt.contains("old := state") || txt.contains("old := state"));
        assert!(txt.contains("(entry)"));
    }
}
