//! Integer expressions, atomic predicates, and boolean expressions.
//!
//! The paper's `Exp.X` is the set of arithmetic expressions over the
//! variables `X`, and `Pred.X` the set of arithmetic comparisons
//! (§3.2). We additionally provide [`Expr::Nondet`] — a
//! non-deterministic integer — which the frontend uses to model
//! hardware input (e.g. an interrupt status register); semantically it
//! is an unconstrained havoc of the assigned variable.

use crate::cfa::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::ops;

/// A binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`. The verifier requires at least one operand
    /// to be a constant (linear arithmetic); the concrete interpreter
    /// evaluates arbitrary products.
    Mul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Mul => write!(f, "*"),
        }
    }
}

/// An integer expression over program variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A program variable.
    Var(Var),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A non-deterministically chosen integer (models external input).
    Nondet,
}

impl Expr {
    /// An integer literal expression.
    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    /// A variable reference expression.
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Collects every variable occurring in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Int(_) | Expr::Nondet => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// True if the expression contains a [`Expr::Nondet`] leaf.
    pub fn has_nondet(&self) -> bool {
        match self {
            Expr::Nondet => true,
            Expr::Int(_) | Expr::Var(_) => false,
            Expr::Bin(_, a, b) => a.has_nondet() || b.has_nondet(),
        }
    }

    /// True if the expression is linear: products have a constant
    /// operand (after constant folding of that operand is *not*
    /// attempted — one side must be syntactically an integer literal).
    pub fn is_linear(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Var(_) | Expr::Nondet => true,
            Expr::Bin(BinOp::Mul, a, b) => {
                (matches!(**a, Expr::Int(_)) || matches!(**b, Expr::Int(_)))
                    && a.is_linear()
                    && b.is_linear()
            }
            Expr::Bin(_, a, b) => a.is_linear() && b.is_linear(),
        }
    }

    /// Substitutes `repl` for every occurrence of variable `v`.
    pub fn subst(&self, v: Var, repl: &Expr) -> Expr {
        match self {
            Expr::Int(_) | Expr::Nondet => self.clone(),
            Expr::Var(w) => {
                if *w == v {
                    repl.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.subst(v, repl)), Box::new(b.subst(v, repl)))
            }
        }
    }

    /// Evaluates the expression under `lookup`, using wrapping `i64`
    /// arithmetic. Returns `None` if the expression contains
    /// [`Expr::Nondet`] — an unresolved havoc has no single value; the
    /// interpreter resolves nondeterminism before evaluation, and
    /// callers outside it must treat `None` as "cannot decide".
    pub fn eval(&self, lookup: &impl Fn(Var) -> i64) -> Option<i64> {
        match self {
            Expr::Int(n) => Some(*n),
            Expr::Var(v) => Some(lookup(*v)),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(lookup)?, b.eval(lookup)?);
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                })
            }
            Expr::Nondet => None,
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl From<i64> for Expr {
    fn from(n: i64) -> Expr {
        Expr::Int(n)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Expr {
        Expr::Var(v)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Nondet => write!(f, "nondet()"),
        }
    }
}

/// A comparison operator between integer expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison satisfied exactly when `self` is not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An atomic predicate: a single comparison between expressions.
///
/// This is the currency of predicate abstraction — the sets `P` that
/// CIRC refines are sets of `Pred`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// Left-hand expression.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub rhs: Expr,
}

impl Pred {
    /// Constructs a predicate `lhs op rhs`.
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Pred {
        Pred { lhs, op, rhs }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Pred {
        Pred::new(lhs, CmpOp::Eq, rhs)
    }

    /// The predicate true exactly when `self` is false.
    pub fn negate(&self) -> Pred {
        Pred::new(self.lhs.clone(), self.op.negate(), self.rhs.clone())
    }

    /// Collects every variable in the predicate.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = self.lhs.vars();
        self.rhs.collect_vars(&mut out);
        out
    }

    /// Substitutes `repl` for `v` on both sides.
    pub fn subst(&self, v: Var, repl: &Expr) -> Pred {
        Pred::new(self.lhs.subst(v, repl), self.op, self.rhs.subst(v, repl))
    }

    /// Evaluates the predicate on a concrete state; `None` if either
    /// side contains [`Expr::Nondet`].
    pub fn eval(&self, lookup: &impl Fn(Var) -> i64) -> Option<bool> {
        Some(self.op.eval(self.lhs.eval(lookup)?, self.rhs.eval(lookup)?))
    }

    /// A canonical form that identifies `a = b` with `b = a` (and the
    /// mirrored forms of the other comparisons), used to deduplicate
    /// mined predicates.
    pub fn canonical(&self) -> Pred {
        let mirrored = match self.op {
            CmpOp::Eq => Some(CmpOp::Eq),
            CmpOp::Ne => Some(CmpOp::Ne),
            CmpOp::Lt => Some(CmpOp::Gt),
            CmpOp::Le => Some(CmpOp::Ge),
            CmpOp::Gt => Some(CmpOp::Lt),
            CmpOp::Ge => Some(CmpOp::Le),
        };
        match mirrored {
            Some(m) if (self.rhs.clone(), self.op) < (self.lhs.clone(), m) => {
                Pred::new(self.rhs.clone(), m, self.lhs.clone())
            }
            _ => self.clone(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A boolean expression: positive/negative combinations of atomic
/// predicates. Assume edges carry a `BoolExpr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BoolExpr {
    /// Constant truth value.
    Const(bool),
    /// An atomic comparison.
    Atom(Pred),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// The constant `true`.
    pub fn tru() -> BoolExpr {
        BoolExpr::Const(true)
    }

    /// The constant `false`.
    pub fn fls() -> BoolExpr {
        BoolExpr::Const(false)
    }

    /// An atomic predicate.
    pub fn atom(p: Pred) -> BoolExpr {
        BoolExpr::Atom(p)
    }

    /// `a = b` as a boolean expression.
    pub fn eq(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Eq, b))
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Ne, b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Lt, b))
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Le, b))
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Gt, b))
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Atom(Pred::new(a, CmpOp::Ge, b))
    }

    /// Conjunction (consumes both operands).
    pub fn and(self, rhs: BoolExpr) -> BoolExpr {
        match (&self, &rhs) {
            (BoolExpr::Const(true), _) => rhs,
            (_, BoolExpr::Const(true)) => self,
            (BoolExpr::Const(false), _) | (_, BoolExpr::Const(false)) => BoolExpr::fls(),
            _ => BoolExpr::And(Box::new(self), Box::new(rhs)),
        }
    }

    /// Disjunction (consumes both operands).
    pub fn or(self, rhs: BoolExpr) -> BoolExpr {
        match (&self, &rhs) {
            (BoolExpr::Const(false), _) => rhs,
            (_, BoolExpr::Const(false)) => self,
            (BoolExpr::Const(true), _) | (_, BoolExpr::Const(true)) => BoolExpr::tru(),
            _ => BoolExpr::Or(Box::new(self), Box::new(rhs)),
        }
    }

    /// Negation (consumes the operand).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> BoolExpr {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Collects every variable in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Atom(p) => {
                p.lhs.collect_vars(out);
                p.rhs.collect_vars(out);
            }
            BoolExpr::Not(a) => a.collect_vars(out),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Collects the atomic predicates of the expression.
    pub fn atoms(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Pred>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Atom(p) => out.push(p.clone()),
            BoolExpr::Not(a) => a.collect_atoms(out),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Substitutes `repl` for `v` throughout.
    pub fn subst(&self, v: Var, repl: &Expr) -> BoolExpr {
        match self {
            BoolExpr::Const(_) => self.clone(),
            BoolExpr::Atom(p) => BoolExpr::Atom(p.subst(v, repl)),
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(a.subst(v, repl))),
            BoolExpr::And(a, b) => {
                BoolExpr::And(Box::new(a.subst(v, repl)), Box::new(b.subst(v, repl)))
            }
            BoolExpr::Or(a, b) => {
                BoolExpr::Or(Box::new(a.subst(v, repl)), Box::new(b.subst(v, repl)))
            }
        }
    }

    /// Evaluates the expression on a concrete state; `None` if any
    /// atom contains [`Expr::Nondet`] (strict — short-circuiting is
    /// not attempted, so the result is independent of operand order).
    pub fn eval(&self, lookup: &impl Fn(Var) -> i64) -> Option<bool> {
        match self {
            BoolExpr::Const(b) => Some(*b),
            BoolExpr::Atom(p) => p.eval(lookup),
            BoolExpr::Not(a) => Some(!a.eval(lookup)?),
            BoolExpr::And(a, b) => Some(a.eval(lookup)? && b.eval(lookup)?),
            BoolExpr::Or(a, b) => Some(a.eval(lookup)? || b.eval(lookup)?),
        }
    }

    /// True if any atom of the expression contains [`Expr::Nondet`].
    pub fn has_nondet(&self) -> bool {
        match self {
            BoolExpr::Const(_) => false,
            BoolExpr::Atom(p) => p.lhs.has_nondet() || p.rhs.has_nondet(),
            BoolExpr::Not(a) => a.has_nondet(),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => a.has_nondet() || b.has_nondet(),
        }
    }
}

impl From<Pred> for BoolExpr {
    fn from(p: Pred) -> BoolExpr {
        BoolExpr::Atom(p)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Atom(p) => write!(f, "{p}"),
            BoolExpr::Not(a) => write!(f, "!({a})"),
            BoolExpr::And(a, b) => write!(f, "({a} && {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} || {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::Var;

    fn v(n: u32) -> Var {
        Var::from_raw(n)
    }

    #[test]
    fn expr_eval_arithmetic() {
        let e = (Expr::var(v(0)) + Expr::int(3)) * Expr::int(2);
        let val = e.eval(&|_| 5);
        assert_eq!(val, Some(16));
    }

    #[test]
    fn eval_of_nondet_is_none_not_panic() {
        let e = Expr::Nondet + Expr::int(1);
        assert_eq!(e.eval(&|_| 0), None);
        let p = Pred::new(Expr::Nondet, CmpOp::Eq, Expr::int(0));
        assert_eq!(p.eval(&|_| 0), None);
        let b = BoolExpr::tru().and(BoolExpr::atom(p));
        assert_eq!(b.eval(&|_| 0), None);
        assert!(b.has_nondet());
        assert!(!BoolExpr::tru().has_nondet());
    }

    #[test]
    fn expr_vars_collects_all() {
        let e = Expr::var(v(0)) + Expr::var(v(2)) * Expr::int(4);
        let vars = e.vars();
        assert!(vars.contains(&v(0)));
        assert!(vars.contains(&v(2)));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn expr_subst_replaces_only_target() {
        let e = Expr::var(v(0)) + Expr::var(v(1));
        let s = e.subst(v(0), &Expr::int(7));
        assert_eq!(s.eval(&|_| 1), Some(8));
    }

    #[test]
    fn expr_linear_check() {
        assert!((Expr::var(v(0)) * Expr::int(3)).is_linear());
        assert!(!(Expr::var(v(0)) * Expr::var(v(1))).is_linear());
    }

    #[test]
    fn cmp_negate_roundtrip() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            // negation is semantic complement
            for (a, b) in [(0, 0), (1, 2), (2, 1)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn pred_negate_eval() {
        let p = Pred::new(Expr::var(v(0)), CmpOp::Lt, Expr::int(5));
        assert_eq!(p.eval(&|_| 3), Some(true));
        assert_eq!(p.negate().eval(&|_| 3), Some(false));
    }

    #[test]
    fn bool_expr_simplifying_constructors() {
        let t = BoolExpr::tru();
        let a = BoolExpr::eq(Expr::var(v(0)), Expr::int(0));
        assert_eq!(t.clone().and(a.clone()), a);
        assert_eq!(BoolExpr::fls().or(a.clone()), a);
        assert_eq!(a.clone().and(BoolExpr::fls()), BoolExpr::fls());
        assert_eq!(a.clone().not().not(), a);
    }

    #[test]
    fn bool_expr_eval() {
        let e = BoolExpr::eq(Expr::var(v(0)), Expr::int(1))
            .and(BoolExpr::lt(Expr::var(v(1)), Expr::int(10)).not());
        // v0 = 1, v1 = 12: (1=1) && !(12<10) = true
        let val = e.eval(&|x| if x == v(0) { 1 } else { 12 });
        assert_eq!(val, Some(true));
    }

    #[test]
    fn pred_canonical_identifies_mirrored() {
        let p = Pred::new(Expr::var(v(1)), CmpOp::Eq, Expr::var(v(0)));
        let q = Pred::new(Expr::var(v(0)), CmpOp::Eq, Expr::var(v(1)));
        assert_eq!(p.canonical(), q.canonical());
        let lt = Pred::new(Expr::var(v(1)), CmpOp::Lt, Expr::var(v(0)));
        let gt = Pred::new(Expr::var(v(0)), CmpOp::Gt, Expr::var(v(1)));
        assert_eq!(lt.canonical(), gt.canonical());
    }

    #[test]
    fn nondet_detection() {
        assert!((Expr::Nondet + Expr::int(1)).has_nondet());
        assert!(!Expr::var(v(0)).has_nondet());
    }
}
