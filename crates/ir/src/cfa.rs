//! Control flow automata (CFAs), per §3.2 of the paper.
//!
//! A CFA is a finite set of control locations connected by directed
//! edges labeled with operations (assignments or assumes). Some
//! locations are *atomic*: while any thread sits at an atomic
//! location, only that thread may be scheduled — this models nesC's
//! `atomic` sections. A CFA also owns its variable table, with each
//! variable marked global (shared between all threads) or local
//! (per-thread copy).

use crate::expr::{BoolExpr, Expr};
use std::collections::BTreeSet;
use std::fmt;

/// A program variable, an index into the owning CFA's variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Builds a `Var` from a raw index. Intended for tests and for
    /// tools that construct CFAs programmatically in table order.
    pub fn from_raw(ix: u32) -> Var {
        Var(ix)
    }

    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a variable is shared between threads or thread-private.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Shared by all threads.
    Global,
    /// Each thread owns a private copy.
    Local,
}

/// Name and kind of a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarInfo {
    /// Source-level name.
    pub name: String,
    /// Global or local.
    pub kind: VarKind,
}

/// A control location of a CFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(u32);

impl Loc {
    /// Builds a `Loc` from a raw index.
    pub fn from_raw(ix: u32) -> Loc {
        Loc(ix)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An edge of a CFA, an index into the edge table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Builds an `EdgeId` from a raw index.
    pub fn from_raw(ix: u32) -> EdgeId {
        EdgeId(ix)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An operation labeling a CFA edge (`Op.X` in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Assignment `x := e`.
    Assign(Var, Expr),
    /// Guard `asm [p]`: the edge may be taken only in states
    /// satisfying `p`; no variable changes.
    Assume(BoolExpr),
}

impl Op {
    /// Assignment constructor.
    pub fn assign(v: Var, e: impl Into<Expr>) -> Op {
        Op::Assign(v, e.into())
    }

    /// Assume constructor.
    pub fn assume(p: impl Into<BoolExpr>) -> Op {
        Op::Assume(p.into())
    }

    /// A no-op (`assume true`), used for skip edges.
    pub fn skip() -> Op {
        Op::Assume(BoolExpr::tru())
    }

    /// The variable written by the operation, if any.
    pub fn written(&self) -> Option<Var> {
        match self {
            Op::Assign(v, _) => Some(*v),
            Op::Assume(_) => None,
        }
    }

    /// The variables read by the operation: the right-hand side of an
    /// assignment, or all variables of an assume predicate (§4.1).
    pub fn reads(&self) -> BTreeSet<Var> {
        match self {
            Op::Assign(_, e) => e.vars(),
            Op::Assume(p) => p.vars(),
        }
    }

    /// All variables mentioned (read or written).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut s = self.reads();
        if let Some(v) = self.written() {
            s.insert(v);
        }
        s
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Assign(v, e) => write!(f, "{v} := {e}"),
            Op::Assume(p) => write!(f, "[{p}]"),
        }
    }
}

/// How an operation touches a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The variable is read.
    Read,
    /// The variable is written.
    Write,
}

/// A directed, operation-labeled edge between two locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source location.
    pub src: Loc,
    /// The operation executed when the edge is taken.
    pub op: Op,
    /// Target location.
    pub dst: Loc,
}

/// A control flow automaton: `(Q, q0, X, →, Q*)` in the paper.
#[derive(Debug, Clone)]
pub struct Cfa {
    name: String,
    vars: Vec<VarInfo>,
    num_locs: u32,
    entry: Loc,
    edges: Vec<Edge>,
    atomic: BTreeSet<Loc>,
    error: BTreeSet<Loc>,
    out: Vec<Vec<EdgeId>>,
    loc_names: Vec<Option<String>>,
}

impl Cfa {
    /// The CFA's (thread's) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of control locations.
    pub fn num_locs(&self) -> usize {
        self.num_locs as usize
    }

    /// Iterator over all locations.
    pub fn locs(&self) -> impl Iterator<Item = Loc> {
        (0..self.num_locs).map(Loc)
    }

    /// The start location `q0`.
    pub fn entry(&self) -> Loc {
        self.entry
    }

    /// Whether `l` is an atomic location.
    pub fn is_atomic(&self, l: Loc) -> bool {
        self.atomic.contains(&l)
    }

    /// The set of atomic locations.
    pub fn atomic_locs(&self) -> &BTreeSet<Loc> {
        &self.atomic
    }

    /// Whether `l` is an error location (the target of a failed
    /// `assert`).
    pub fn is_error(&self, l: Loc) -> bool {
        self.error.contains(&l)
    }

    /// The set of error locations.
    pub fn error_locs(&self) -> &BTreeSet<Loc> {
        &self.error
    }

    /// All edges, indexable by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CFA.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Ids of the out-edges of `l`.
    pub fn out_edges(&self, l: Loc) -> &[EdgeId] {
        &self.out[l.index()]
    }

    /// The variable table.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Info for one variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this CFA.
    pub fn var_info(&self, v: Var) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// The source-level name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.index()].name
    }

    /// Whether `v` is global.
    pub fn is_global(&self, v: Var) -> bool {
        self.vars[v.index()].kind == VarKind::Global
    }

    /// All global variables.
    pub fn globals(&self) -> Vec<Var> {
        (0..self.vars.len() as u32).map(Var).filter(|v| self.is_global(*v)).collect()
    }

    /// All local variables.
    pub fn locals(&self) -> Vec<Var> {
        (0..self.vars.len() as u32).map(Var).filter(|v| !self.is_global(*v)).collect()
    }

    /// Looks up a variable by source name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.vars.iter().position(|vi| vi.name == name).map(|ix| Var(ix as u32))
    }

    /// A human-readable label for a location (its source label, if the
    /// builder attached one, else `L<n>`).
    pub fn loc_label(&self, l: Loc) -> String {
        match &self.loc_names[l.index()] {
            Some(n) => n.clone(),
            None => format!("{l}"),
        }
    }

    /// Variables *written* by some out-edge of `l` — `Write.i.x` holds
    /// iff `x ∈ writes_at(pc_i)` (§4.1).
    pub fn writes_at(&self, l: Loc) -> BTreeSet<Var> {
        self.out_edges(l).iter().filter_map(|e| self.edge(*e).op.written()).collect()
    }

    /// Variables *read* by some out-edge of `l`.
    pub fn reads_at(&self, l: Loc) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for e in self.out_edges(l) {
            s.extend(self.edge(*e).op.reads());
        }
        s
    }

    /// Variables read or written by some out-edge of `l`.
    pub fn accesses_at(&self, l: Loc) -> BTreeSet<Var> {
        let mut s = self.reads_at(l);
        s.extend(self.writes_at(l));
        s
    }

    /// Whether a thread at `l` can access `v` with the given kind.
    pub fn can_access(&self, l: Loc, v: Var, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.reads_at(l).contains(&v),
            AccessKind::Write => self.writes_at(l).contains(&v),
        }
    }
}

/// Incremental builder for [`Cfa`].
///
/// The entry location is created eagerly (location 0); further
/// locations come from [`CfaBuilder::fresh_loc`]. [`CfaBuilder::build`]
/// validates the automaton.
#[derive(Debug, Clone)]
pub struct CfaBuilder {
    name: String,
    vars: Vec<VarInfo>,
    num_locs: u32,
    edges: Vec<Edge>,
    atomic: BTreeSet<Loc>,
    error: BTreeSet<Loc>,
    loc_names: Vec<Option<String>>,
}

impl CfaBuilder {
    /// Starts a new CFA with the given thread name. Location `0` is
    /// the entry.
    pub fn new(name: impl Into<String>) -> CfaBuilder {
        CfaBuilder {
            name: name.into(),
            vars: Vec::new(),
            num_locs: 1,
            edges: Vec::new(),
            atomic: BTreeSet::new(),
            error: BTreeSet::new(),
            loc_names: vec![None],
        }
    }

    /// Declares a global variable and returns its handle.
    pub fn global(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name.into(), VarKind::Global)
    }

    /// Declares a (per-thread) local variable and returns its handle.
    pub fn local(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name.into(), VarKind::Local)
    }

    fn add_var(&mut self, name: String, kind: VarKind) -> Var {
        assert!(!self.vars.iter().any(|vi| vi.name == name), "duplicate variable name `{name}`");
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarInfo { name, kind });
        v
    }

    /// The entry location.
    pub fn entry(&self) -> Loc {
        Loc(0)
    }

    /// Number of locations allocated so far.
    pub fn num_locs(&self) -> usize {
        self.num_locs as usize
    }

    /// Allocates a fresh control location.
    pub fn fresh_loc(&mut self) -> Loc {
        let l = Loc(self.num_locs);
        self.num_locs += 1;
        self.loc_names.push(None);
        l
    }

    /// Attaches a human-readable label to a location (for printing).
    pub fn name_loc(&mut self, l: Loc, name: impl Into<String>) {
        self.loc_names[l.index()] = Some(name.into());
    }

    /// Marks `l` atomic.
    pub fn mark_atomic(&mut self, l: Loc) {
        self.atomic.insert(l);
    }

    /// Marks `l` as an error location (reached when an `assert`
    /// fails). Error locations are checked by the assertion-safety
    /// analyses; the race analyses ignore them.
    pub fn mark_error(&mut self, l: Loc) {
        self.error.insert(l);
    }

    /// Adds an edge `src --op--> dst`.
    pub fn edge(&mut self, src: Loc, op: Op, dst: Loc) -> EdgeId {
        assert!(src.0 < self.num_locs && dst.0 < self.num_locs, "edge endpoints must exist");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, op, dst });
        id
    }

    /// Finalizes and validates the CFA.
    ///
    /// # Panics
    ///
    /// Panics if an edge mentions a variable outside the table, or if
    /// the entry location is atomic (the paper's semantics assume a
    /// non-atomic start so that at most one thread is ever atomic).
    pub fn build(self) -> Cfa {
        assert!(!self.atomic.contains(&Loc(0)), "entry location must not be atomic");
        let nvars = self.vars.len() as u32;
        for e in &self.edges {
            for v in e.op.vars() {
                assert!(v.0 < nvars, "edge {e:?} mentions undeclared variable {v}");
            }
        }
        let mut out = vec![Vec::new(); self.num_locs as usize];
        for (ix, e) in self.edges.iter().enumerate() {
            out[e.src.index()].push(EdgeId(ix as u32));
        }
        Cfa {
            name: self.name,
            vars: self.vars,
            num_locs: self.num_locs,
            entry: Loc(0),
            edges: self.edges,
            atomic: self.atomic,
            error: self.error,
            out,
            loc_names: self.loc_names,
        }
    }
}

/// Builds the paper's running example (Figure 1): the test-and-set
/// thread guarding the shared variable `x` with the flag `state`.
///
/// ```text
/// int x, state;
/// Thread() { int old;
///   1: while (1) { atomic {
///   2:   old := state;
///   3:   if (state = 0) {
///   4:     state := 1; } [old != 0] }
///   5:   if (old = 0) {
///   6:     x := x + 1;
///   7:     state := 0; } } }
/// ```
///
/// Locations 3 and 4 (inside the `atomic` block, after its first
/// operation) are atomic. Returns the CFA; look up `x`, `state`,
/// `old` via [`Cfa::var_by_name`].
pub fn figure1_cfa() -> Cfa {
    let mut b = CfaBuilder::new("test_and_set");
    let x = b.global("x");
    let state = b.global("state");
    let old = b.local("old");

    // Use paper numbering: entry (builder loc 0) is "1".
    let l1 = b.entry();
    b.name_loc(l1, "1");
    let l2 = b.fresh_loc(); // inside atomic, after `old := state`
    b.name_loc(l2, "2");
    let l3 = b.fresh_loc();
    b.name_loc(l3, "3");
    let l5 = b.fresh_loc();
    b.name_loc(l5, "5");
    let l6 = b.fresh_loc();
    b.name_loc(l6, "6");
    let l7 = b.fresh_loc();
    b.name_loc(l7, "7");

    // Entering the atomic block: locations 2 and 3 are atomic (the
    // thread holding them cannot be preempted).
    b.mark_atomic(l2);
    b.mark_atomic(l3);

    use crate::expr::{BoolExpr, Expr};
    // 1 -> 2 : old := state   (first op of the atomic block)
    b.edge(l1, Op::assign(old, Expr::var(state)), l2);
    // 2 -> 3 : [state = 0]; state := 1  — split in two CFA edges via 3
    b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
    b.edge(l3, Op::assign(state, Expr::int(1)), l5);
    // 2 -> 5 : [state != 0]  (else-branch leaves the atomic block)
    b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
    // 5 -> 6 : [old = 0]
    b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
    // 5 -> 1 : [old != 0]  (loop back)
    b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
    // 6 -> 7 : x := x + 1
    b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
    // 7 -> 1 : state := 0
    b.edge(l7, Op::assign(state, Expr::int(0)), l1);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BoolExpr, Expr};

    #[test]
    fn builder_basic() {
        let mut b = CfaBuilder::new("t");
        let x = b.global("x");
        let y = b.local("y");
        let l0 = b.entry();
        let l1 = b.fresh_loc();
        b.edge(l0, Op::assign(x, Expr::int(1)), l1);
        b.edge(l1, Op::assume(BoolExpr::eq(Expr::var(y), Expr::int(0))), l0);
        let cfa = b.build();
        assert_eq!(cfa.num_locs(), 2);
        assert_eq!(cfa.edges().len(), 2);
        assert!(cfa.is_global(x));
        assert!(!cfa.is_global(y));
        assert_eq!(cfa.var_by_name("x"), Some(x));
        assert_eq!(cfa.var_by_name("nope"), None);
    }

    #[test]
    fn access_queries() {
        let mut b = CfaBuilder::new("t");
        let x = b.global("x");
        let y = b.global("y");
        let l0 = b.entry();
        let l1 = b.fresh_loc();
        b.edge(l0, Op::assign(x, Expr::var(y) + Expr::int(1)), l1);
        let cfa = b.build();
        assert!(cfa.writes_at(l0).contains(&x));
        assert!(!cfa.writes_at(l0).contains(&y));
        assert!(cfa.reads_at(l0).contains(&y));
        assert!(cfa.can_access(l0, x, AccessKind::Write));
        assert!(cfa.can_access(l0, y, AccessKind::Read));
        assert!(!cfa.can_access(l1, x, AccessKind::Write));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_var_panics() {
        let mut b = CfaBuilder::new("t");
        b.global("x");
        b.global("x");
    }

    #[test]
    #[should_panic(expected = "entry location must not be atomic")]
    fn atomic_entry_panics() {
        let mut b = CfaBuilder::new("t");
        let e = b.entry();
        b.mark_atomic(e);
        b.build();
    }

    #[test]
    fn figure1_shape() {
        let cfa = figure1_cfa();
        assert_eq!(cfa.num_locs(), 6);
        assert_eq!(cfa.edges().len(), 8);
        let x = cfa.var_by_name("x").unwrap();
        let state = cfa.var_by_name("state").unwrap();
        assert!(cfa.is_global(x) && cfa.is_global(state));
        let old = cfa.var_by_name("old").unwrap();
        assert!(!cfa.is_global(old));
        // exactly one location can write x (location "6")
        let writers: Vec<_> = cfa.locs().filter(|l| cfa.writes_at(*l).contains(&x)).collect();
        assert_eq!(writers.len(), 1);
        assert_eq!(cfa.loc_label(writers[0]), "6");
        // two atomic locations
        assert_eq!(cfa.atomic_locs().len(), 2);
        assert!(!cfa.is_atomic(cfa.entry()));
    }

    #[test]
    fn op_reads_writes() {
        let x = Var::from_raw(0);
        let y = Var::from_raw(1);
        let a = Op::assign(x, Expr::var(y));
        assert_eq!(a.written(), Some(x));
        assert!(a.reads().contains(&y));
        let g = Op::assume(BoolExpr::eq(Expr::var(x), Expr::var(y)));
        assert_eq!(g.written(), None);
        assert_eq!(g.reads().len(), 2);
    }
}
