//! Concrete small-step semantics of finite instantiations of a
//! symmetric multithreaded program (§2.1, §3.1).
//!
//! The interpreter serves three roles in the reproduction:
//!
//! 1. ground truth for tests — abstract results are cross-checked
//!    against bounded concrete exploration,
//! 2. the execution substrate of the dynamic (lockset) baseline in
//!    `circ-baselines`,
//! 3. replay of concrete counterexample interleavings produced by
//!    CIRC's `Refine`.
//!
//! Scheduling follows the paper: if some thread sits at an atomic
//! location, only that thread may run; otherwise the scheduler picks
//! any thread with an enabled out-edge.

use crate::cfa::{Cfa, EdgeId, Loc, Op, Var};
use crate::expr::Expr;
use crate::program::{MtProgram, ThreadId};
use std::collections::{HashSet, VecDeque};

/// A concrete state of an `n`-thread instantiation: global values plus
/// per-thread locals and program counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConcreteState {
    /// Values of all variables' *global* slots (local slots unused).
    globals: Vec<i64>,
    /// `locals[t]` holds thread `t`'s copies (global slots unused).
    locals: Vec<Vec<i64>>,
    /// `pcs[t]` is thread `t`'s control location.
    pcs: Vec<Loc>,
}

impl ConcreteState {
    /// The initial state: every variable 0, every thread at the entry.
    pub fn initial(cfa: &Cfa, n_threads: usize) -> ConcreteState {
        let nv = cfa.vars().len();
        ConcreteState {
            globals: vec![0; nv],
            locals: vec![vec![0; nv]; n_threads],
            pcs: vec![cfa.entry(); n_threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.pcs.len()
    }

    /// Thread `t`'s program counter.
    pub fn pc(&self, t: ThreadId) -> Loc {
        self.pcs[t.index()]
    }

    /// Reads variable `v` as seen by thread `t`.
    pub fn read(&self, cfa: &Cfa, t: ThreadId, v: Var) -> i64 {
        if cfa.is_global(v) {
            self.globals[v.index()]
        } else {
            self.locals[t.index()][v.index()]
        }
    }

    /// Writes variable `v` as seen by thread `t`.
    pub fn write(&mut self, cfa: &Cfa, t: ThreadId, v: Var, val: i64) {
        if cfa.is_global(v) {
            self.globals[v.index()] = val;
        } else {
            self.locals[t.index()][v.index()] = val;
        }
    }
}

/// A concrete data race: two threads with simultaneously enabled
/// conflicting accesses (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceWitness {
    /// The raced-on variable.
    pub var: Var,
    /// A thread with an enabled *write* to the variable.
    pub writer: ThreadId,
    /// A distinct thread with an enabled read or write.
    pub other: ThreadId,
    /// Whether `other`'s enabled access is a write.
    pub other_writes: bool,
}

/// One scheduling decision: which thread takes which edge, and the
/// value chosen for any `nondet()` on the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedChoice {
    /// The scheduled thread.
    pub thread: ThreadId,
    /// The CFA edge it takes.
    pub edge: EdgeId,
    /// Value substituted for `nondet()` in the edge's expression, if
    /// the expression contains one.
    pub nondet: i64,
}

/// Interpreter for a finite instantiation of a symmetric program.
#[derive(Debug, Clone)]
pub struct Interp {
    program: MtProgram,
    n_threads: usize,
}

impl Interp {
    /// Creates an interpreter running `n_threads` copies of the
    /// program's CFA.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn new(program: MtProgram, n_threads: usize) -> Interp {
        assert!(n_threads > 0, "need at least one thread");
        Interp { program, n_threads }
    }

    /// The underlying program.
    pub fn program(&self) -> &MtProgram {
        &self.program
    }

    /// Thread count of this instantiation.
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// The initial state.
    pub fn initial(&self) -> ConcreteState {
        ConcreteState::initial(self.program.cfa(), self.n_threads)
    }

    /// Threads allowed to run in `s` by the atomic-scheduling rule:
    /// the unique atomic thread if one exists, else all threads.
    pub fn schedulable(&self, s: &ConcreteState) -> Vec<ThreadId> {
        let cfa = self.program.cfa();
        let atomic: Vec<ThreadId> =
            (0..self.n_threads as u32).map(ThreadId).filter(|t| cfa.is_atomic(s.pc(*t))).collect();
        match atomic.len() {
            0 => (0..self.n_threads as u32).map(ThreadId).collect(),
            1 => atomic,
            // Unreachable from the initial state when the entry is
            // non-atomic (§2.1), but be defensive: nobody runs.
            _ => Vec::new(),
        }
    }

    /// All `(thread, edge)` pairs executable from `s`. Edges whose
    /// assume predicate is false are filtered out; assignment edges
    /// whose expression contains `nondet()` are always enabled (some
    /// value works). A `nondet()` inside an *assume guard* is
    /// malformed — such programs are rejected by the frontend and by
    /// [`Interp::malformed`] — and its edge is treated as disabled
    /// rather than panicking, so exploration of a hand-built malformed
    /// automaton degrades instead of crashing.
    pub fn enabled(&self, s: &ConcreteState) -> Vec<(ThreadId, EdgeId)> {
        let cfa = self.program.cfa();
        let mut out = Vec::new();
        for t in self.schedulable(s) {
            for &e in cfa.out_edges(s.pc(t)) {
                let edge = cfa.edge(e);
                let ok = match &edge.op {
                    Op::Assume(p) => p.eval(&|v| s.read(cfa, t, v)).unwrap_or(false),
                    Op::Assign(_, _) => true,
                };
                if ok {
                    out.push((t, e));
                }
            }
        }
        out
    }

    /// A diagnostic if the program is malformed for concrete
    /// execution: some assume guard contains `nondet()`, which no
    /// scheduling choice can decide. The frontend never produces such
    /// automata; drivers over hand-built CFAs call this up front so a
    /// malformed program surfaces as a message, not a panic.
    pub fn malformed(&self) -> Option<String> {
        let cfa = self.program.cfa();
        cfa.edges().iter().enumerate().find_map(|(ix, edge)| match &edge.op {
            Op::Assume(p) if p.has_nondet() => {
                Some(format!("edge e{ix} ({} -> {}): nondet() in assume guard", edge.src, edge.dst))
            }
            _ => None,
        })
    }

    /// Executes one enabled move, returning the successor state.
    ///
    /// # Panics
    ///
    /// Panics if the chosen edge is not enabled for the thread in `s`.
    pub fn step(&self, s: &ConcreteState, choice: SchedChoice) -> ConcreteState {
        let cfa = self.program.cfa();
        let t = choice.thread;
        let edge = cfa.edge(choice.edge);
        assert_eq!(edge.src, s.pc(t), "edge source must match thread pc");
        let mut next = s.clone();
        match &edge.op {
            Op::Assume(p) => {
                // `None` (nondet in the guard) is "not enabled": such an
                // edge is never handed out by `enabled`, so reaching it
                // here is a caller contract violation either way.
                assert!(p.eval(&|v| s.read(cfa, t, v)).unwrap_or(false), "assume edge not enabled");
            }
            Op::Assign(v, e) => {
                let val = eval_with_nondet(e, &|v| s.read(cfa, t, v), choice.nondet);
                next.write(cfa, t, *v, val);
            }
        }
        next.pcs[t.index()] = edge.dst;
        next
    }

    /// Checks the race condition of §4.1 on a single state: no thread
    /// is atomic, one thread has an enabled write to the race
    /// variable, and a distinct thread has an enabled access.
    pub fn race(&self, s: &ConcreteState) -> Option<RaceWitness> {
        let cfa = self.program.cfa();
        let x = self.program.race_var();
        if (0..self.n_threads as u32).any(|t| cfa.is_atomic(s.pc(ThreadId(t)))) {
            return None;
        }
        let ts: Vec<ThreadId> = (0..self.n_threads as u32).map(ThreadId).collect();
        for &w in &ts {
            if !cfa.writes_at(s.pc(w)).contains(&x) {
                continue;
            }
            for &o in &ts {
                if o == w {
                    continue;
                }
                let writes = cfa.writes_at(s.pc(o)).contains(&x);
                let reads = cfa.reads_at(s.pc(o)).contains(&x);
                if writes || reads {
                    return Some(RaceWitness { var: x, writer: w, other: o, other_writes: writes });
                }
            }
        }
        None
    }

    /// A thread sitting at an error location (a failed `assert`), if
    /// any.
    pub fn assertion_violation(&self, s: &ConcreteState) -> Option<ThreadId> {
        let cfa = self.program.cfa();
        (0..self.n_threads as u32).map(ThreadId).find(|t| cfa.is_error(s.pc(*t)))
    }

    /// Bounded breadth-first exploration: searches all interleavings
    /// (with `nondet()` resolved to values from `nondet_values`) up to
    /// `max_states` distinct states, returning a race witness if one
    /// is reachable within the bound.
    ///
    /// This is exact for nondet-free programs whose reachable state
    /// space fits in the bound, and is used as ground truth in tests.
    pub fn explore_bounded(
        &self,
        max_states: usize,
        nondet_values: &[i64],
    ) -> Option<(ConcreteState, RaceWitness)> {
        let cfa = self.program.cfa();
        let init = self.initial();
        let mut seen: HashSet<ConcreteState> = HashSet::new();
        let mut queue: VecDeque<ConcreteState> = VecDeque::new();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(s) = queue.pop_front() {
            if let Some(w) = self.race(&s) {
                return Some((s, w));
            }
            if seen.len() >= max_states {
                continue;
            }
            for (t, e) in self.enabled(&s) {
                let edge = cfa.edge(e);
                let nondets: &[i64] = match &edge.op {
                    Op::Assign(_, expr) if expr.has_nondet() => nondet_values,
                    _ => &[0],
                };
                for &nv in nondets {
                    let next = self.step(&s, SchedChoice { thread: t, edge: e, nondet: nv });
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }
}

fn eval_with_nondet(e: &Expr, lookup: &impl Fn(Var) -> i64, nondet: i64) -> i64 {
    match e {
        Expr::Nondet => nondet,
        Expr::Int(n) => *n,
        Expr::Var(v) => lookup(*v),
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval_with_nondet(a, lookup, nondet), eval_with_nondet(b, lookup, nondet));
            match op {
                crate::expr::BinOp::Add => a.wrapping_add(b),
                crate::expr::BinOp::Sub => a.wrapping_sub(b),
                crate::expr::BinOp::Mul => a.wrapping_mul(b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::{figure1_cfa, CfaBuilder};
    use crate::expr::{BoolExpr, Expr};

    fn fig1_program() -> MtProgram {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        MtProgram::new(cfa, x)
    }

    #[test]
    fn initial_state_all_zero() {
        let p = fig1_program();
        let interp = Interp::new(p.clone(), 3);
        let s = interp.initial();
        assert_eq!(s.num_threads(), 3);
        let cfa = p.cfa();
        for t in 0..3 {
            assert_eq!(s.pc(ThreadId(t)), cfa.entry());
            for v in 0..cfa.vars().len() as u32 {
                assert_eq!(s.read(cfa, ThreadId(t), Var::from_raw(v)), 0);
            }
        }
    }

    #[test]
    fn atomic_scheduling_excludes_others() {
        let p = fig1_program();
        let interp = Interp::new(p.clone(), 2);
        let s = interp.initial();
        // Step thread 0 into the atomic block (edge 1->2: old := state).
        let (t, e) = interp.enabled(&s).into_iter().find(|(t, _)| *t == ThreadId(0)).unwrap();
        let s2 = interp.step(&s, SchedChoice { thread: t, edge: e, nondet: 0 });
        // Now thread 0 is atomic; only it may run.
        assert_eq!(interp.schedulable(&s2), vec![ThreadId(0)]);
        assert!(interp.enabled(&s2).iter().all(|(t, _)| *t == ThreadId(0)));
    }

    #[test]
    fn figure1_is_race_free_bounded() {
        // The paper's central safe example: exhaustive 2- and 3-thread
        // exploration finds no race on x.
        let p = fig1_program();
        for n in [2, 3] {
            let interp = Interp::new(p.clone(), n);
            assert!(
                interp.explore_bounded(200_000, &[]).is_none(),
                "unexpected race with {n} threads"
            );
        }
    }

    /// The figure-1 thread with the atomicity removed: a genuine race.
    fn broken_test_and_set() -> MtProgram {
        let mut b = CfaBuilder::new("broken");
        let x = b.global("x");
        let state = b.global("state");
        let old = b.local("old");
        let l1 = b.entry();
        let l2 = b.fresh_loc();
        let l3 = b.fresh_loc();
        let l5 = b.fresh_loc();
        let l6 = b.fresh_loc();
        let l7 = b.fresh_loc();
        // No atomic marks: the test-and-set is not atomic.
        use crate::cfa::Op;
        b.edge(l1, Op::assign(old, Expr::var(state)), l2);
        b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
        b.edge(l3, Op::assign(state, Expr::int(1)), l5);
        b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
        b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
        b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
        b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
        b.edge(l7, Op::assign(state, Expr::int(0)), l1);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        MtProgram::new(cfa, x)
    }

    #[test]
    fn broken_variant_has_race() {
        let p = broken_test_and_set();
        let interp = Interp::new(p, 2);
        let found = interp.explore_bounded(200_000, &[]);
        assert!(found.is_some(), "expected a race without atomicity");
        let (_, w) = found.unwrap();
        assert_ne!(w.writer, w.other);
    }

    #[test]
    fn race_requires_two_distinct_threads() {
        // Single thread: never a race.
        let p = broken_test_and_set();
        let interp = Interp::new(p, 1);
        assert!(interp.explore_bounded(100_000, &[]).is_none());
    }

    #[test]
    fn step_assignment_updates_locals_per_thread() {
        let p = fig1_program();
        let cfa = p.cfa();
        let old = cfa.var_by_name("old").unwrap();
        let state = cfa.var_by_name("state").unwrap();
        let interp = Interp::new(p.clone(), 2);
        let mut s = interp.initial();
        s.write(cfa, ThreadId(0), state, 7);
        // thread 1 executes old := state; only thread 1's old changes
        let e = cfa.out_edges(cfa.entry())[0];
        let s2 = interp.step(&s, SchedChoice { thread: ThreadId(1), edge: e, nondet: 0 });
        assert_eq!(s2.read(cfa, ThreadId(1), old), 7);
        assert_eq!(s2.read(cfa, ThreadId(0), old), 0);
    }

    #[test]
    fn nondet_assignment_uses_choice() {
        let mut b = CfaBuilder::new("nd");
        let x = b.global("x");
        let l0 = b.entry();
        let l1 = b.fresh_loc();
        b.edge(l0, Op::assign(x, Expr::Nondet), l1);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let interp = Interp::new(p.clone(), 1);
        let s = interp.initial();
        let (t, e) = interp.enabled(&s)[0];
        let s2 = interp.step(&s, SchedChoice { thread: t, edge: e, nondet: 42 });
        assert_eq!(s2.read(p.cfa(), t, x), 42);
    }

    #[test]
    fn nondet_in_assume_degrades_instead_of_panicking() {
        // A malformed hand-built automaton: the guard cannot be
        // decided. `enabled` must not panic, and `malformed` names the
        // offending edge.
        let mut b = CfaBuilder::new("bad");
        let _x = b.global("x");
        let l0 = b.entry();
        let l1 = b.fresh_loc();
        b.edge(l0, Op::assume(BoolExpr::eq(Expr::Nondet, Expr::int(0))), l1);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let interp = Interp::new(p, 2);
        let diag = interp.malformed().expect("must be flagged malformed");
        assert!(diag.contains("nondet() in assume guard"), "{diag}");
        assert!(interp.enabled(&interp.initial()).is_empty());
        assert!(interp.explore_bounded(1_000, &[]).is_none());
    }

    #[test]
    fn wellformed_programs_are_not_malformed() {
        assert!(Interp::new(fig1_program(), 2).malformed().is_none());
    }
}
