//! Crash-consistent storage for the CIRC pipeline.
//!
//! Every artifact the pipeline persists — the entailment-cache and
//! solver-cache snapshots, the predicate store, the batch journal —
//! routes its file I/O through this crate, so the durability rules
//! live in exactly one place:
//!
//! * **Durable atomic writes** ([`Store::write_atomic`]): write a
//!   same-directory `*.tmp` file, `fsync` it, rename it over the
//!   destination, then `fsync` the parent directory. A crash at any
//!   step leaves either the complete old snapshot or the complete new
//!   one — never a torn file — at the price of a possible stale
//!   `*.tmp`, which the next run's [`Store::sweep_stale_tmps`]
//!   removes.
//! * **A fault-injectable I/O facade** (the [`Vfs`] trait): the real
//!   backend and a seeded fault-injecting backend share one
//!   interface, so the crash-point torture harness can fail or
//!   truncate any write, fsync, rename, lock, append, or read
//!   deterministically via a [`circ_governor::FaultPlan`] armed with
//!   [`IoFaultPoint`]s. Without the `inject` cargo feature every
//!   injection decision is a constant `false` and the fault backend
//!   behaves exactly like the real one.
//! * **Advisory cross-process locking** ([`Store::lock_dir`]): a
//!   shared cache directory is guarded by an advisory file lock on
//!   `.circ.lock`, so a resident `circ serve` daemon and a concurrent
//!   `circ batch` run flush under mutual exclusion and can
//!   read-merge-write instead of last-writer-wins clobbering each
//!   other's learned entries.
//!
//! The degradation contract mirrors the rest of the workspace: any
//! I/O failure here may cost warm-start time (a cold start, a
//! re-check, a skipped persist that leaves the previous snapshot
//! intact) but can never flip a verdict, because callers treat every
//! error as "no usable snapshot" and re-derive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circ_governor::{FaultPlan, IoFaultPoint};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Suffix of the temporary files [`Store::write_atomic`] stages
/// through (`<artifact>.tmp`, same directory as the artifact).
pub const TMP_SUFFIX: &str = ".tmp";

/// Name of the advisory lock file guarding a cache directory.
pub const LOCK_FILE: &str = ".circ.lock";

/// The primitive file operations the storage layer is built from.
///
/// Implementations: [`RealVfs`] (thin wrappers over `std::fs`) and
/// [`FaultVfs`] (same, but each operation first consults a
/// [`FaultPlan`] and fails — or yields truncated data — when its
/// [`IoFaultPoint`] is armed). Keeping the surface this small is what
/// makes the crash-point enumeration exhaustive: there is no write,
/// sync, rename, lock, append, or read the harness cannot fail.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads a whole file to a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Creates/truncates `path` and writes `bytes` to it (the staging
    /// write of the atomic-write protocol).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes a written file's contents and metadata to disk.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` over `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes a directory entry table to disk (makes a completed
    /// rename durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Appends `bytes` to an open file and flushes (the journal's
    /// one-`write_all`-per-line discipline).
    fn append(&self, file: &mut fs::File, bytes: &[u8]) -> io::Result<()>;
    /// Takes an exclusive advisory lock on an open file, blocking
    /// until the current holder (possibly in another process)
    /// releases it.
    fn lock_exclusive(&self, file: &fs::File) -> io::Result<()>;
}

/// The production backend: direct `std::fs` operations with real
/// `fsync`s.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn append(&self, file: &mut fs::File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)?;
        file.flush()
    }

    fn lock_exclusive(&self, file: &fs::File) -> io::Result<()> {
        file.lock()
    }
}

/// The fault-injecting backend: consults a [`FaultPlan`] before each
/// operation and simulates the corresponding crash when its
/// [`IoFaultPoint`] fires.
///
/// Failure shapes are chosen to match what a real crash or full disk
/// leaves behind: a failed staging write leaves a *truncated* temp
/// file, a failed append leaves a torn journal line, a failed read
/// yields a truncated prefix (which the checksum envelope must
/// reject), disk-full is sticky across subsequent writes. Without the
/// `inject` cargo feature [`FaultPlan::io_fail`] is a constant
/// `false`, so this backend degenerates to [`RealVfs`].
#[derive(Debug, Clone)]
pub struct FaultVfs {
    plan: FaultPlan,
    real: RealVfs,
}

impl FaultVfs {
    /// Wraps the real backend with `plan`'s I/O fault schedule.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs { plan, real: RealVfs }
    }

    fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
        io::Error::new(kind, format!("injected fault: {what}"))
    }
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let text = self.real.read_to_string(path)?;
        if self.plan.io_fail(IoFaultPoint::Read) {
            // A truncated read: yield only a prefix, as a torn page
            // or short read would. The caller's checksum envelope is
            // responsible for rejecting it.
            return Ok(text[..floor_char_boundary(&text, text.len() / 2)].to_string());
        }
        Ok(text)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::NoSpace) {
            let _ = self.real.write(path, &bytes[..bytes.len() / 2]);
            return Err(FaultVfs::injected(io::ErrorKind::StorageFull, "disk full during write"));
        }
        if self.plan.io_fail(IoFaultPoint::TmpWrite) {
            // Crash mid-write: leave a truncated file behind, exactly
            // what the startup sweep must clean up.
            let _ = self.real.write(path, &bytes[..bytes.len() / 2]);
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash during staging write"));
        }
        self.real.write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::FileSync) {
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash during file fsync"));
        }
        self.real.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::Rename) {
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash during rename"));
        }
        self.real.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::DirSync) {
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash during directory fsync"));
        }
        self.real.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.real.create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.real.remove_file(path)
    }

    fn append(&self, file: &mut fs::File, bytes: &[u8]) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::NoSpace) {
            let _ = self.real.append(file, &bytes[..bytes.len() / 2]);
            return Err(FaultVfs::injected(io::ErrorKind::StorageFull, "disk full during append"));
        }
        if self.plan.io_fail(IoFaultPoint::JournalAppend) {
            // Crash mid-append: tear the line. The journal loader
            // degrades a torn line to a re-check of that file.
            let _ = self.real.append(file, &bytes[..bytes.len() / 2]);
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash during journal append"));
        }
        self.real.append(file, bytes)
    }

    fn lock_exclusive(&self, file: &fs::File) -> io::Result<()> {
        if self.plan.io_fail(IoFaultPoint::LockAcquire) {
            return Err(FaultVfs::injected(io::ErrorKind::Other, "crash acquiring advisory lock"));
        }
        self.real.lock_exclusive(file)
    }
}

/// Largest index `<= ix` that lies on a `char` boundary of `s`.
fn floor_char_boundary(s: &str, mut ix: usize) -> usize {
    while ix > 0 && !s.is_char_boundary(ix) {
        ix -= 1;
    }
    ix
}

/// A handle on the storage layer: a cheaply clonable wrapper around
/// one [`Vfs`] backend. Every persistence site takes one of these (or
/// defaults to [`Store::real`]), so arming I/O faults for a torture
/// run is a matter of constructing the store with
/// [`Store::with_faults`] — no call site changes shape.
#[derive(Debug, Clone)]
pub struct Store {
    vfs: Arc<dyn Vfs>,
}

impl Default for Store {
    fn default() -> Store {
        Store::real()
    }
}

impl Store {
    /// The production store (real filesystem, real fsyncs).
    pub fn real() -> Store {
        Store { vfs: Arc::new(RealVfs) }
    }

    /// A store whose operations follow `plan`'s I/O fault schedule.
    /// With an inert plan (or without the `inject` feature) this
    /// behaves exactly like [`Store::real`].
    pub fn with_faults(plan: &FaultPlan) -> Store {
        Store { vfs: Arc::new(FaultVfs::new(plan.clone())) }
    }

    /// A store over an arbitrary backend (tests).
    pub fn from_vfs(vfs: Arc<dyn Vfs>) -> Store {
        Store { vfs }
    }

    /// Reads a whole file to a string through the backend.
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.vfs.read_to_string(path)
    }

    /// Writes `text` to `path` with the full durability discipline:
    /// stage into `<path>.tmp`, `fsync` the staged file, rename it
    /// over `path`, `fsync` the parent directory. An interrupted
    /// write leaves either the old complete file or the new complete
    /// file (plus possibly a stale `*.tmp` for the next
    /// [`Store::sweep_stale_tmps`]); a reader can never observe a
    /// torn artifact.
    pub fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(parent) = parent {
            self.vfs.create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(TMP_SUFFIX);
        let tmp = PathBuf::from(tmp);
        self.vfs.write(&tmp, text.as_bytes())?;
        self.vfs.sync_file(&tmp)?;
        self.vfs.rename(&tmp, path)?;
        match parent {
            Some(parent) => self.vfs.sync_dir(parent),
            None => self.vfs.sync_dir(Path::new(".")),
        }
    }

    /// Appends one line (caller includes the trailing `\n`) to an
    /// open file with a single write-and-flush, so concurrent writers
    /// interleave lines, never bytes.
    pub fn append_line(&self, file: &mut fs::File, line: &str) -> io::Result<()> {
        self.vfs.append(file, line.as_bytes())
    }

    /// Removes stale `*.tmp` staging files left in `dir` by a crash
    /// between write and rename. Returns the number removed plus one
    /// warning per removal (callers surface them and count them as
    /// recoveries). A missing or unreadable directory sweeps nothing,
    /// and a failure to take the directory lock skips the sweep with
    /// a warning: this runs on the startup path and must never fail
    /// it.
    ///
    /// The sweep holds the directory's advisory lock: a concurrent
    /// process mid-flush has a live `*.tmp` staged between its write
    /// and rename, and sweeping that would make the rename fail.
    /// Locking serializes sweeps against flushes, so the only `*.tmp`
    /// files ever observed here are genuinely stale.
    pub fn sweep_stale_tmps(&self, dir: &Path) -> (u64, Vec<String>) {
        let mut removed = 0;
        let mut warnings = Vec::new();
        if !dir.is_dir() {
            return (0, warnings);
        }
        let _lock = match self.lock_dir(dir) {
            Ok(lock) => lock,
            Err(e) => {
                warnings.push(format!(
                    "cannot lock cache dir `{}`: {e}; skipping stale-file sweep",
                    dir.display()
                ));
                return (0, warnings);
            }
        };
        let Ok(entries) = fs::read_dir(dir) else { return (0, warnings) };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(TMP_SUFFIX) {
                continue;
            }
            let path = entry.path();
            match self.vfs.remove_file(&path) {
                Ok(()) => {
                    removed += 1;
                    warnings.push(format!(
                        "removed stale staging file `{}` left by an interrupted flush",
                        path.display()
                    ));
                }
                Err(e) => warnings
                    .push(format!("cannot remove stale staging file `{}`: {e}", path.display())),
            }
        }
        (removed, warnings)
    }

    /// Takes the advisory cross-process lock guarding cache directory
    /// `dir` (creating the directory and its `.circ.lock` file as
    /// needed), blocking until any concurrent holder releases it. The
    /// lock is held until the returned guard drops. Every flush of a
    /// shared cache directory runs its read-merge-write cycle under
    /// this lock; a failure here degrades to a logged no-persist.
    pub fn lock_dir(&self, dir: &Path) -> io::Result<DirLock> {
        self.vfs.create_dir_all(dir)?;
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOCK_FILE))?;
        self.vfs.lock_exclusive(&file)?;
        Ok(DirLock { _file: file })
    }
}

/// An exclusive advisory lock on a cache directory, released when
/// dropped (closing the lock file releases the OS lock).
#[derive(Debug)]
pub struct DirLock {
    _file: fs::File,
}

/// Reads a file through the production backend (convenience for call
/// sites that have no [`Store`] in hand).
pub fn read_to_string(path: &Path) -> io::Result<String> {
    Store::real().read_to_string(path)
}

/// Writes `text` to `path` with the full durability discipline via
/// the production backend — the drop-in successor of the pipeline's
/// original temp-file-plus-rename helper, now with the missing
/// `fsync`s.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    Store::real().write_atomic(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("circ-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_creates_parents() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("nested/deep/snapshot.cache");
        let store = Store::real();
        store.write_atomic(&path, "hello snapshot\n").unwrap();
        assert_eq!(store.read_to_string(&path).unwrap(), "hello snapshot\n");
        // Overwrite is atomic too: the tmp staging file never lingers
        // on the success path.
        store.write_atomic(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        assert!(!path.parent().unwrap().join("snapshot.cache.tmp").exists());
    }

    #[test]
    fn sweep_removes_only_stale_tmps() {
        let dir = tmp_dir("sweep");
        fs::write(dir.join("abs.cache"), "keep me").unwrap();
        fs::write(dir.join("abs.cache.tmp"), "stale staging").unwrap();
        fs::write(dir.join("solver.cache.tmp"), "stale too").unwrap();
        let store = Store::real();
        let (removed, warnings) = store.sweep_stale_tmps(&dir);
        assert_eq!(removed, 2);
        assert_eq!(warnings.len(), 2);
        assert!(warnings.iter().all(|w| w.contains("stale staging file")), "{warnings:?}");
        assert!(dir.join("abs.cache").exists(), "real artifact must survive the sweep");
        assert!(!dir.join("abs.cache.tmp").exists());
        assert!(!dir.join("solver.cache.tmp").exists());
        // Sweeping a missing directory is a quiet no-op.
        let (removed, warnings) = store.sweep_stale_tmps(&dir.join("missing"));
        assert_eq!((removed, warnings.len()), (0, 0));
    }

    #[test]
    fn dir_lock_excludes_a_second_holder() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let dir = tmp_dir("lock");
        let store = Store::real();
        let guard = store.lock_dir(&dir).unwrap();
        let acquired = Arc::new(AtomicBool::new(false));
        let handle = {
            let acquired = Arc::clone(&acquired);
            let dir = dir.clone();
            std::thread::spawn(move || {
                // A second open file description must block until the
                // first guard drops (same contention shape as a
                // second process).
                let store = Store::real();
                let _guard = store.lock_dir(&dir).unwrap();
                acquired.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!acquired.load(Ordering::SeqCst), "second lock acquired while first held");
        drop(guard);
        handle.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn append_line_appends_whole_lines() {
        let dir = tmp_dir("append");
        let path = dir.join("journal.jsonl");
        let store = Store::real();
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&path).unwrap();
        store.append_line(&mut file, "{\"row\":1}\n").unwrap();
        store.append_line(&mut file, "{\"row\":2}\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"row\":1}\n{\"row\":2}\n");
    }

    #[test]
    fn floor_char_boundary_respects_utf8() {
        let s = "ab\u{00e9}cd"; // é is two bytes
        for ix in 0..=s.len() {
            let b = floor_char_boundary(s, ix);
            assert!(s.is_char_boundary(b));
            assert!(b <= ix);
        }
    }
}
