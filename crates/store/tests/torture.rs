//! Crash-point torture at the storage layer: arm every
//! [`IoFaultPoint`] in turn against raw artifacts and assert the
//! durability contract — after any single injected crash the artifact
//! on disk is either the complete old snapshot or the complete new
//! one, never a torn file, and the startup sweep restores a clean
//! directory. Requires the `inject` cargo feature; without it every
//! injection decision compiles to a constant `false` and there is
//! nothing to torture.
#![cfg(feature = "inject")]

use circ_governor::{FaultPlan, IoFaultPoint};
use circ_store::{Store, TMP_SUFFIX};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("circ-store-torture-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const OLD: &str = "old snapshot line 1\nold snapshot line 2\n";
const NEW: &str = "new snapshot line 1\nnew snapshot line 2\nnew snapshot line 3\n";

/// Every crash point along the atomic-write protocol leaves either
/// the complete old artifact or the complete new one, and after a
/// sweep plus a retry the new snapshot is durably in place.
#[test]
fn every_write_crash_point_leaves_old_or_new_never_torn() {
    let write_points = [
        IoFaultPoint::TmpWrite,
        IoFaultPoint::FileSync,
        IoFaultPoint::Rename,
        IoFaultPoint::DirSync,
        IoFaultPoint::NoSpace,
    ];
    for point in write_points {
        let dir = tmp_dir(point.name());
        let path = dir.join("artifact.cache");
        Store::real().write_atomic(&path, OLD).unwrap();

        let store = Store::with_faults(&FaultPlan::seeded(11).with_io_fault(point, 0));
        let err = store.write_atomic(&path, NEW).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{point:?}: {err}");

        let on_disk = fs::read_to_string(&path).unwrap();
        assert!(
            on_disk == OLD || on_disk == NEW,
            "{point:?}: torn artifact after crash: {on_disk:?}"
        );

        // Recovery: sweep whatever staging the crash left, then a
        // clean retry must land the new snapshot durably.
        let clean = Store::real();
        let (_, warnings) = clean.sweep_stale_tmps(&dir);
        assert!(
            warnings.iter().all(|w| w.contains("stale staging file")),
            "{point:?}: {warnings:?}"
        );
        clean.write_atomic(&path, NEW).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), NEW, "{point:?}");
        assert!(
            !dir.join(format!("artifact.cache{TMP_SUFFIX}")).exists(),
            "{point:?}: staging file survived recovery"
        );
    }
}

/// The crash is single-shot: armed at the *second* staging write, the
/// first atomic write goes through untouched.
#[test]
fn nth_occurrence_arming_is_single_shot() {
    let dir = tmp_dir("nth");
    let path = dir.join("artifact.cache");
    let store = Store::with_faults(&FaultPlan::seeded(3).with_io_fault(IoFaultPoint::TmpWrite, 1));
    store.write_atomic(&path, OLD).unwrap();
    assert_eq!(fs::read_to_string(&path).unwrap(), OLD);
    store.write_atomic(&path, NEW).unwrap_err();
    assert_eq!(fs::read_to_string(&path).unwrap(), OLD, "second write must not land");
}

/// Disk-full is sticky: once `NoSpace` fires, every later write fails
/// too — a full disk does not heal between artifacts.
#[test]
fn no_space_is_sticky_across_writes() {
    let dir = tmp_dir("enospc");
    let store = Store::with_faults(&FaultPlan::seeded(5).with_io_fault(IoFaultPoint::NoSpace, 0));
    for name in ["a.cache", "b.cache", "c.cache"] {
        let err = store.write_atomic(&dir.join(name), NEW).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull, "{name}: {err}");
    }
}

/// A truncated read returns a strict prefix — the shape a torn page
/// gives a reader, which the checksum envelope upstream must reject.
#[test]
fn injected_read_yields_a_strict_prefix() {
    let dir = tmp_dir("read");
    let path = dir.join("artifact.cache");
    Store::real().write_atomic(&path, OLD).unwrap();
    let store = Store::with_faults(&FaultPlan::seeded(7).with_io_fault(IoFaultPoint::Read, 0));
    let got = store.read_to_string(&path).unwrap();
    assert!(got.len() < OLD.len(), "read was not truncated");
    assert!(OLD.starts_with(&got), "truncated read is not a prefix: {got:?}");
}

/// A crash while acquiring the advisory lock surfaces as an error the
/// flush path degrades to a logged no-persist.
#[test]
fn injected_lock_failure_surfaces_as_error() {
    let dir = tmp_dir("lock");
    let store =
        Store::with_faults(&FaultPlan::seeded(9).with_io_fault(IoFaultPoint::LockAcquire, 0));
    let err = store.lock_dir(&dir).unwrap_err();
    assert!(err.to_string().contains("advisory lock"), "{err}");
    // Single-shot: the retry (next process start) succeeds.
    let _guard = store.lock_dir(&dir).unwrap();
}

/// A crashed append tears exactly one line mid-byte; earlier lines
/// are untouched and later appends still go through.
#[test]
fn injected_append_tears_one_line_only() {
    let dir = tmp_dir("append");
    let path = dir.join("journal.jsonl");
    let store =
        Store::with_faults(&FaultPlan::seeded(13).with_io_fault(IoFaultPoint::JournalAppend, 1));
    let mut file = fs::OpenOptions::new().create(true).append(true).open(&path).unwrap();
    store.append_line(&mut file, "{\"row\":1}\n").unwrap();
    store.append_line(&mut file, "{\"row\":2}\n").unwrap_err();
    store.append_line(&mut file, "{\"row\":3}\n").unwrap();
    let text = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.first(), Some(&"{\"row\":1}"), "{text:?}");
    assert!(text.contains("{\"row\":3}"), "append after the torn line must land: {text:?}");
    assert!(!text.contains("{\"row\":2}"), "torn line must not be whole: {text:?}");
}
