//! The crash-point torture harness (`--features inject`): enumerate
//! every [`IoFaultPoint`] against a full batch run over a small
//! corpus and assert the storage contract end to end —
//!
//! * the crashed run's *verdicts* are byte-identical to an
//!   undisturbed reference (storage faults cost warm-start time,
//!   never answers);
//! * the recovery run over the same cache directory again matches the
//!   reference and leaves no staging litter behind;
//! * the `store_recoveries` / `flush_errors` counters are invariant
//!   under `jobs`, because all storage I/O happens in the driver.

#![cfg(feature = "inject")]

use circ_batch::{collect_inputs, run_batch, BatchConfig, BatchReport};
use circ_governor::{FaultPlan, IoFaultPoint};
use std::fs;
use std::path::{Path, PathBuf};

const SAFE_SRC: &str = "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n";
const RACY_SRC: &str = "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n";

fn corpus(name: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    for i in 0..4 {
        let body = if i == 2 { RACY_SRC.to_string() } else { format!("{SAFE_SRC}// {i}\n") };
        fs::write(dir.join(format!("t{i}.nesl")), body).unwrap();
    }
    collect_inputs(&dir).unwrap()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(cache_dir: &Path, faults: FaultPlan, jobs: usize) -> BatchConfig {
    BatchConfig {
        cache_dir: Some(cache_dir.to_path_buf()),
        journal: Some(cache_dir.join("run.journal")),
        jobs,
        faults,
        ..BatchConfig::default()
    }
}

/// The part of a report a storage fault must never change: every
/// row's file, verdict, detail, and stage, in input order.
fn verdict_essence(report: &BatchReport) -> String {
    report
        .rows
        .iter()
        .map(|r| format!("{}\t{:?}\t{}\t{}\n", r.file, r.verdict, r.detail, r.stage))
        .collect()
}

/// Copies the persisted artifacts of `src` into a fresh directory so
/// two runs can start from identical warm state.
fn clone_dir(src: &Path, name: &str) -> PathBuf {
    let dst = fresh_dir(name);
    for entry in fs::read_dir(src).unwrap().flatten() {
        let from = entry.path();
        if from.is_file() {
            fs::copy(&from, dst.join(entry.file_name())).unwrap();
        }
    }
    dst
}

fn tmp_litter(dir: &Path) -> Vec<String> {
    fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(circ_store::TMP_SUFFIX))
        .collect()
}

/// One crash point at a time, across the full batch lifecycle: warm
/// load → pool run with journaling → locked merge-flush. Whatever the
/// crash leaves behind, the crashed run and the recovery run must
/// both reproduce the reference verdicts exactly.
#[test]
fn every_crash_point_recovers_warm_or_cold_with_identical_verdicts() {
    let inputs = corpus("torture-corpus");

    // Reference: an undisturbed cold run, then a warm run to pre-seed
    // the cache directory every torture case starts from.
    let seed_dir = fresh_dir("torture-seed");
    let reference = run_batch(&inputs, &config(&seed_dir, FaultPlan::inert(), 1));
    assert!(reference.warnings.is_empty(), "{:?}", reference.warnings);
    let essence = verdict_essence(&reference);
    let warm = run_batch(&inputs, &config(&seed_dir, FaultPlan::inert(), 1));
    assert_eq!(verdict_essence(&warm), essence, "warm reference diverged");

    for point in IoFaultPoint::ALL {
        let dir = clone_dir(&seed_dir, &format!("torture-{}", point.name()));
        let plan = FaultPlan::seeded(21).with_io_fault(point, 0);

        let crashed = run_batch(&inputs, &config(&dir, plan, 1));
        assert_eq!(
            verdict_essence(&crashed),
            essence,
            "{}: crashed run changed a verdict",
            point.name()
        );
        let observed = crashed.totals.pipeline.store_recoveries
            + crashed.totals.pipeline.flush_errors
            + u64::from(!crashed.warnings.is_empty());
        assert!(observed > 0, "{}: the armed fault was never observed", point.name());

        let recovery = run_batch(&inputs, &config(&dir, FaultPlan::inert(), 1));
        assert_eq!(
            verdict_essence(&recovery),
            essence,
            "{}: recovery run changed a verdict",
            point.name()
        );
        assert_eq!(recovery.totals.pipeline.flush_errors, 0, "{}", point.name());
        assert_eq!(tmp_litter(&dir), Vec::<String>::new(), "{}", point.name());

        // And the directory is fully healed: one more clean run sees
        // no anomalies at all.
        let healed = run_batch(&inputs, &config(&dir, FaultPlan::inert(), 1));
        assert_eq!(verdict_essence(&healed), essence, "{}", point.name());
        assert_eq!(healed.totals.pipeline.store_recoveries, 0, "{}", point.name());
        assert!(healed.warnings.is_empty(), "{}: {:?}", point.name(), healed.warnings);
    }
}

/// The storage counters come from the driver, not the workers, so
/// `jobs = 1` and `jobs = 4` must report identical values for the
/// same crash point over identical starting state.
#[test]
fn storage_counters_are_jobs_invariant_under_injection() {
    let inputs = corpus("torture-jobs-corpus");
    let seed_dir = fresh_dir("torture-jobs-seed");
    run_batch(&inputs, &config(&seed_dir, FaultPlan::inert(), 1));

    for point in IoFaultPoint::ALL {
        let d1 = clone_dir(&seed_dir, &format!("torture-j1-{}", point.name()));
        let d4 = clone_dir(&seed_dir, &format!("torture-j4-{}", point.name()));
        let r1 = run_batch(&inputs, &config(&d1, FaultPlan::seeded(21).with_io_fault(point, 0), 1));
        let r4 = run_batch(&inputs, &config(&d4, FaultPlan::seeded(21).with_io_fault(point, 0), 4));
        assert_eq!(
            (r1.totals.pipeline.store_recoveries, r1.totals.pipeline.flush_errors),
            (r4.totals.pipeline.store_recoveries, r4.totals.pipeline.flush_errors),
            "{}: storage counters depend on jobs",
            point.name()
        );
    }
}

/// Sticky disk-full across the whole flush: every artifact write
/// fails, each with a warning naming the intact previous snapshot,
/// and the prior on-disk state survives byte-for-byte.
#[test]
fn enospc_during_flush_degrades_to_logged_no_persist() {
    let inputs = corpus("torture-enospc-corpus");
    let dir = fresh_dir("torture-enospc");
    run_batch(&inputs, &config(&dir, FaultPlan::inert(), 1));
    let before: Vec<(String, String)> = ["abs.cache", "solver.cache", "preds.store"]
        .iter()
        .map(|n| (n.to_string(), fs::read_to_string(dir.join(n)).unwrap()))
        .collect();

    // Arm NoSpace from the fourth write event on: the four journal
    // appends (one per corpus file) come first, then the flush's
    // three artifact writes all hit the full disk.
    let crashed = run_batch(
        &inputs,
        &config(&dir, FaultPlan::seeded(21).with_io_fault(IoFaultPoint::NoSpace, 4), 1),
    );
    assert!(crashed.totals.pipeline.flush_errors > 0);
    assert!(
        crashed.warnings.iter().any(|w| w.contains("previous snapshot intact")),
        "{:?}",
        crashed.warnings
    );
    for (name, text) in before {
        assert_eq!(
            fs::read_to_string(dir.join(&name)).unwrap(),
            text,
            "{name}: previous snapshot was not left intact"
        );
    }
}
