//! Batch supervision under seeded fault injection (`--features
//! inject`): a transient worker fault that clears on the retry must
//! land on the clean verdict, and the supervision counters —
//! `totals.retries`, `totals.isolated_crashes` — must be
//! jobs-invariant, because every injection schedule is a pure function
//! of the input file's content digest and the attempt number, never of
//! scheduling order.

#![cfg(feature = "inject")]

use circ_batch::{collect_inputs, run_batch, BatchConfig, Verdict};
use circ_governor::{FaultPlan, RetryPolicy};
use std::path::PathBuf;

const SAFE_SRC: &str = "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n";
const RACY_SRC: &str = "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n";

fn corpus(name: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Distinct contents (trailing comment) so every file draws an
    // independent injection schedule from its own digest.
    for i in 0..6 {
        let body = if i == 3 { RACY_SRC.to_string() } else { format!("{SAFE_SRC}// {i}\n") };
        std::fs::write(dir.join(format!("m{i}.nesl")), body).unwrap();
    }
    collect_inputs(&dir).unwrap()
}

/// Zeroes every `"time...":<number>` value in a JSON report (same
/// scanner as `tests/determinism.rs`).
fn strip_times(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(ix) = rest.find("\"time") {
        let Some(key_len) = rest[ix + 1..].find('"') else { break };
        let key_end = ix + 1 + key_len + 1;
        let Some(colon) = rest[key_end..].find(':') else { break };
        let val_start = key_end + colon + 1;
        let val_len = rest[val_start..].find([',', '}']).unwrap_or(rest.len() - val_start);
        out.push_str(&rest[..val_start]);
        out.push('0');
        rest = &rest[val_start + val_len..];
    }
    out.push_str(rest);
    out
}

#[test]
fn transient_fault_clears_on_retry_and_counters_are_jobs_invariant() {
    let inputs = corpus("inject-supervision");
    let baseline = run_batch(&inputs, &BatchConfig::default());
    assert_eq!(baseline.totals.retries, 0);

    // Injection schedules are deterministic per (seed, digest,
    // attempt), so scan seeds for one where some file's early attempt
    // is poisoned but a later retry comes back clean — the
    // transient-fault shape the retry policy exists for.
    let mut found = None;
    for seed in 0..64u64 {
        let cfg = BatchConfig {
            faults: FaultPlan::seeded(seed).with_task_panic(60),
            retry: RetryPolicy::with_retries(3, seed),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        let recovered = report.rows.iter().zip(&baseline.rows).any(|(r, b)| {
            r.retries > 0 && r.verdict == b.verdict && r.verdict != Verdict::InternalError
        });
        if recovered {
            found = Some((seed, report));
            break;
        }
    }
    let (seed, retried) = found.expect("no seed in 0..64 produced a recoverable transient fault");
    assert!(retried.totals.retries > 0);

    // Every recovered row answers exactly as the clean baseline;
    // unrecovered rows only ever degrade to internal-error, and the
    // quarantine lists precisely those.
    for (row, base) in retried.rows.iter().zip(&baseline.rows) {
        assert!(
            row.verdict == base.verdict || row.verdict == Verdict::InternalError,
            "seed {seed}: {} flipped {:?} -> {:?}",
            row.file,
            base.verdict,
            row.verdict
        );
    }
    let expect_quarantine: Vec<String> = retried
        .rows
        .iter()
        .filter(|r| r.verdict == Verdict::InternalError)
        .map(|r| r.file.clone())
        .collect();
    assert_eq!(retried.quarantine, expect_quarantine);

    // And the whole report — rows, retry counters, quarantine — is
    // byte-identical at jobs=4, modulo wall-times.
    let par = run_batch(
        &inputs,
        &BatchConfig {
            faults: FaultPlan::seeded(seed).with_task_panic(60),
            retry: RetryPolicy::with_retries(3, seed),
            jobs: 4,
            ..BatchConfig::default()
        },
    );
    assert_eq!(
        par.totals.retries, retried.totals.retries,
        "seed {seed}: retries not jobs-invariant"
    );
    assert_eq!(
        strip_times(&par.to_json()),
        strip_times(&retried.to_json()),
        "seed {seed}: fault-heavy report not jobs-invariant"
    );
}

/// Faults may only degrade: under heavy injection with no retries, a
/// racy file never turns Safe and a safe file never turns Race — the
/// poisoned rows read `internal-error` and the batch exit reflects the
/// worst *surviving* verdict.
#[test]
fn injected_faults_only_degrade_batch_verdicts() {
    let inputs = corpus("inject-degrade");
    let baseline = run_batch(&inputs, &BatchConfig::default());
    for seed in 0..8u64 {
        let cfg = BatchConfig {
            faults: FaultPlan::seeded(seed).with_task_panic(250),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        for (row, base) in report.rows.iter().zip(&baseline.rows) {
            assert!(
                row.verdict == base.verdict || row.verdict == Verdict::InternalError,
                "seed {seed}: {} flipped {:?} -> {:?}",
                row.file,
                base.verdict,
                row.verdict
            );
        }
        // Quarantine lists exactly the internal-error rows.
        let expect: Vec<String> = report
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::InternalError)
            .map(|r| r.file.clone())
            .collect();
        assert_eq!(report.quarantine, expect);
    }
}

/// Isolated-child crash accounting is jobs-invariant too: a scripted
/// child that dies for one specific input produces the same rows, the
/// same `isolated_crashes`, and the same quarantine at any `--jobs`.
#[cfg(unix)]
#[test]
fn isolated_crash_counters_are_jobs_invariant() {
    use std::os::unix::fs::PermissionsExt;
    let inputs = corpus("inject-isolate");
    let dir = inputs[0].parent().unwrap();

    let fake_row = circ_batch::render_row_json(&circ_batch::FileRow::new(
        "canned".into(),
        Verdict::Safe,
        "1 race variable(s) race-free".into(),
    ));
    let script = dir.join("fake-circ.sh");
    std::fs::write(
        &script,
        format!("#!/bin/sh\ncase \"$2\" in\n  *m3*) kill -ABRT $$;;\nesac\necho '{fake_row}'\n"),
    )
    .unwrap();
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();

    let run = |jobs: usize| {
        run_batch(
            &inputs,
            &BatchConfig {
                isolate: true,
                isolate_binary: Some(script.clone()),
                retry: RetryPolicy::with_retries(1, 7),
                jobs,
                ..BatchConfig::default()
            },
        )
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.totals.isolated_crashes, 2, "1 retry = 2 attempts on the dying child");
    assert_eq!(seq.totals.isolated_crashes, par.totals.isolated_crashes);
    assert_eq!(seq.totals.retries, par.totals.retries);
    assert_eq!(seq.quarantine, par.quarantine);
    assert_eq!(strip_times(&seq.to_json()), strip_times(&par.to_json()));
}
