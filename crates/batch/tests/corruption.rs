//! Corruption torture over every persisted artifact — the entailment
//! cache, the solver cache, the predicate store, and the journal —
//! plus the read-merge-write pin for shared cache directories.
//!
//! Single contract: no damaged byte on disk may ever flip a verdict.
//! Snapshot artifacts carry a checksummed envelope, so any bit flip,
//! truncation, or version bump must be *rejected wholesale* (a logged
//! cold start). The journal is line-granular: a damaged line degrades
//! to a re-check of that one file while intact lines keep replaying.

use circ_batch::journal;
use circ_batch::{
    flush_caches_in, load_caches_in, run_batch, BatchConfig, FileRow, Verdict, ABS_CACHE_FILE,
    PRED_STORE_FILE, SOLVER_CACHE_FILE,
};
use circ_core::pred_store::{self, PredStore, StoredPreds};
use circ_core::{persist as abs_persist, AbsSeed, SolverPersist};
use circ_smt::persist as smt_persist;
use circ_smt::{Atom, Formula, LinExpr, SVar, SatResult};
use circ_store::Store;
use std::fs;
use std::path::{Path, PathBuf};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn var(i: u32) -> LinExpr {
    LinExpr::var(SVar(i))
}

/// A small synthetic seed for each artifact, enough that every wire
/// feature (entry counts, atom encodings, checksums) is exercised.
fn abs_seed(tag: u32) -> AbsSeed {
    let premises = vec![Atom::eq(var(tag)), Atom::le(var(tag + 1) - LinExpr::constant(3))];
    AbsSeed::from_entries(
        vec![((premises.clone(), Atom::le(var(tag + 2))), true)],
        vec![(premises, tag.is_multiple_of(2))],
    )
}

fn solver_entries(tag: u32) -> Vec<(Formula, SatResult)> {
    vec![
        (Formula::Atom(Atom::eq(var(tag))), SatResult::Sat(Default::default())),
        (Formula::Atom(Atom::le(var(tag + 1))), SatResult::Unsat),
    ]
}

fn pred_entry(tag: u64) -> PredStore {
    let mut store = PredStore::new();
    store.record(tag, 7, StoredPreds { preds: Vec::new(), k: 2, rounds: tag });
    store
}

/// Writes one valid copy of every artifact into `dir`.
fn seed_artifacts(dir: &Path) {
    let io = Store::real();
    let outcome = flush_caches_in(
        &io,
        dir,
        &abs_seed(0),
        &SolverPersist::with_seed(solver_entries(0)),
        Some(&pred_entry(1)),
    );
    assert_eq!(outcome.flush_errors, 0, "{:?}", outcome.warnings);
}

/// Every artifact loader must reject every single-bit flip and every
/// truncation of its file — never silently accept damaged warm-start
/// state. One loop over all three snapshot artifacts keeps the suite
/// in lockstep: a new artifact added to the flush path gets cover by
/// joining this list.
#[test]
fn every_bit_flip_and_truncation_is_rejected_for_every_artifact() {
    let dir = fresh_dir("corruption-flips");
    seed_artifacts(&dir);
    type Rejects = fn(&str) -> bool;
    let artifacts: [(&str, Rejects); 3] = [
        (ABS_CACHE_FILE, |text| abs_persist::parse_abs_cache(text).is_err()),
        (SOLVER_CACHE_FILE, |text| smt_persist::parse_solver_cache(text).is_err()),
        (PRED_STORE_FILE, |text| pred_store::parse_pred_store(text).is_err()),
    ];
    for (name, rejects) in artifacts {
        let text = fs::read_to_string(dir.join(name)).unwrap();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            let Ok(s) = String::from_utf8(mutated) else { continue };
            assert!(rejects(&s), "{name}: flip at byte {i} accepted");
        }
        for i in 0..text.len() {
            if !text.is_char_boundary(i) {
                continue;
            }
            assert!(rejects(&text[..i]), "{name}: prefix of {i} bytes accepted");
        }
        assert!(rejects(&text.replace("format=1", "format=2")), "{name}: version bump accepted");
        assert!(rejects(&text.replace("atoms=1", "atoms=9")), "{name}: atom bump accepted");
    }
}

/// A damaged artifact degrades to a warned cold start — counted as a
/// recovery — and never aborts the load of its healthy siblings.
#[test]
fn damaged_artifacts_degrade_to_counted_cold_starts() {
    let dir = fresh_dir("corruption-degrade");
    seed_artifacts(&dir);
    let io = Store::real();

    let clean = load_caches_in(&io, &dir);
    assert_eq!((clean.recovered, clean.warnings.len()), (0, 0), "{:?}", clean.warnings);
    assert!(!clean.abs_seed.is_empty());
    assert!(!clean.solver_seed.is_empty());

    // Damage the solver cache only: its seed cold-starts with a
    // warning, the abs seed still loads warm.
    let solver_path = dir.join(SOLVER_CACHE_FILE);
    let text = fs::read_to_string(&solver_path).unwrap();
    fs::write(&solver_path, &text[..text.len() / 2]).unwrap();
    let loaded = load_caches_in(&io, &dir);
    assert_eq!(loaded.recovered, 1);
    assert!(loaded.solver_seed.is_empty());
    assert!(!loaded.abs_seed.is_empty(), "healthy sibling must still load warm");
    assert!(loaded.warnings.iter().any(|w| w.contains(SOLVER_CACHE_FILE)), "{:?}", loaded.warnings);
}

fn row(name: &str) -> FileRow {
    FileRow::new(name.to_string(), Verdict::Safe, "safe".to_string())
}

/// Journal damage is line-granular: a flipped byte in one line drops
/// exactly that row to a re-check; every intact line keeps replaying.
#[test]
fn journal_corruption_degrades_per_line_not_per_file() {
    let dir = fresh_dir("corruption-journal");
    let path = dir.join("run.journal");
    let cfg = journal::config_fingerprint(true, 1, true, None, None, false);
    let j = journal::Journal::create(&path).unwrap();
    j.append(&row("a.nesl"), 100, cfg).unwrap();
    j.append(&row("b.nesl"), 200, cfg).unwrap();
    j.append(&row("c.nesl"), 300, cfg).unwrap();
    drop(j);

    let (replayed, warnings) = journal::load(&path, cfg);
    assert_eq!(replayed.len(), 3);
    assert!(warnings.is_empty(), "{warnings:?}");

    // Flip one byte in the middle line (its verdict name, which the
    // parser validates), leaving neighbors intact.
    let text = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let damaged = format!(
        "{}\n{}\n{}\n",
        lines[0],
        lines[1].replace("\"verdict\":\"safe\"", "\"verdict\":\"sife\""),
        lines[2]
    );
    assert_ne!(text, damaged, "damage must actually change the middle line");
    fs::write(&path, damaged).unwrap();
    let (replayed, warnings) = journal::load(&path, cfg);
    assert_eq!(replayed.len(), 2, "only the damaged line may be dropped");
    assert!(replayed.contains_key(&100));
    assert!(replayed.contains_key(&300));
    assert_eq!(warnings.len(), 1, "{warnings:?}");
}

/// The read-merge-write pin for shared cache directories: two flushes
/// whose in-memory snapshots are *disjoint* (the second never loaded
/// the first's entries) still compose to the union on disk. Before
/// the locked merge this was last-writer-wins, and flush B erased
/// everything A had learned.
#[test]
fn two_disjoint_flushes_union_instead_of_clobbering() {
    let dir = fresh_dir("corruption-merge");
    let io = Store::real();

    let a = flush_caches_in(
        &io,
        &dir,
        &abs_seed(0),
        &SolverPersist::with_seed(solver_entries(0)),
        Some(&pred_entry(1)),
    );
    assert_eq!(a.flush_errors, 0, "{:?}", a.warnings);
    // Flush B deliberately starts from different entries — the state
    // of a concurrent process that loaded before A flushed.
    let b = flush_caches_in(
        &io,
        &dir,
        &abs_seed(10),
        &SolverPersist::with_seed(solver_entries(10)),
        Some(&pred_entry(2)),
    );
    assert_eq!(b.flush_errors, 0, "{:?}", b.warnings);

    let merged = load_caches_in(&io, &dir);
    assert_eq!(merged.recovered, 0, "{:?}", merged.warnings);
    assert_eq!(merged.abs_seed.len(), abs_seed(0).len() + abs_seed(10).len());
    assert_eq!(merged.solver_seed.len(), solver_entries(0).len() + solver_entries(10).len());
    let preds = pred_store::load_pred_store(&dir.join(PRED_STORE_FILE)).unwrap().unwrap();
    assert_eq!(preds.len(), 2, "predicate stores must merge, not clobber");
    assert!(preds.lookup(1, 7).is_some() && preds.lookup(2, 7).is_some());

    // And the reported counts are the merged totals.
    assert_eq!(b.abs_saved, merged.abs_seed.len());
    assert_eq!(b.solver_saved, merged.solver_seed.len());
    assert_eq!(b.preds_saved, 2);
}

/// End-to-end degrade check: a batch run over a corpus whose cache
/// dir holds damaged artifacts completes with the same verdicts as a
/// clean cold run.
#[test]
fn batch_run_over_damaged_cache_dir_keeps_its_verdicts() {
    let corpus = fresh_dir("corruption-corpus");
    fs::write(
        corpus.join("safe.nesl"),
        "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n",
    )
    .unwrap();
    fs::write(
        corpus.join("racy.nesl"),
        "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n",
    )
    .unwrap();
    let inputs = circ_batch::collect_inputs(&corpus).unwrap();

    let clean_dir = fresh_dir("corruption-clean-cache");
    let config =
        |dir: &Path| BatchConfig { cache_dir: Some(dir.to_path_buf()), ..BatchConfig::default() };
    let reference = run_batch(&inputs, &config(&clean_dir));

    let damaged_dir = fresh_dir("corruption-damaged-cache");
    seed_artifacts(&damaged_dir);
    for name in [ABS_CACHE_FILE, SOLVER_CACHE_FILE, PRED_STORE_FILE] {
        let path = damaged_dir.join(name);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("sum=", "sun=")).unwrap();
    }
    let damaged = run_batch(&inputs, &config(&damaged_dir));
    let verdicts = |r: &circ_batch::BatchReport| {
        r.rows.iter().map(|x| format!("{} {:?}", x.file, x.verdict)).collect::<Vec<_>>()
    };
    let fix = |v: Vec<String>| {
        v.into_iter()
            .map(|s| s.split('/').next_back().unwrap_or_default().to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(fix(verdicts(&reference)), fix(verdicts(&damaged)));
    assert_eq!(damaged.totals.pipeline.store_recoveries, 3);
    assert_eq!(damaged.warnings.len(), 3, "{:?}", damaged.warnings);
}
