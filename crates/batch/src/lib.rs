//! Corpus-level fan-out for the CIRC race checker.
//!
//! `circ batch <dir|manifest.json|file.nesl>` checks many NesL
//! programs in one invocation. This crate is the engine behind it:
//!
//! * [`collect_inputs`] turns a directory, a JSON manifest, or a
//!   single file into a sorted work list;
//! * [`run_batch`] fans the list out over a [`circ_par::Pool`], giving
//!   each file an equal slice of the global `--timeout-secs` /
//!   `--mem-limit-mb` budget (see `circ_governor::carve_timeout`) and
//!   an *isolated* entailment cache seeded from the shared warm start,
//!   so per-file statistics are independent of scheduling;
//! * the result is a [`BatchReport`] whose rows are in input order and
//!   whose JSON rendering is byte-identical at any `--jobs` setting
//!   once wall-time fields are stripped.
//!
//! # Crash-safe supervision
//!
//! Around the bare fan-out sits a supervision layer (`--journal`,
//! `--resume`, `--isolate`, retries):
//!
//! * every completed row is appended to a JSONL **journal** keyed by a
//!   content digest of the input bytes (see [`journal`]); a `--resume`
//!   run replays journaled rows for inputs whose bytes still match and
//!   re-checks everything else — including rows a graceful shutdown
//!   drained, which are deliberately never journaled;
//! * a tripped [`CancelToken`] (the CLI wires SIGINT/SIGTERM to it)
//!   drains remaining work: in-flight files stop at their next budget
//!   poll and surface as `budget-exhausted` rows marked cancelled,
//!   not-yet-started files drain immediately, and the partial report
//!   plus cache files are still produced;
//! * `--isolate` re-runs each file in a child process
//!   (`circ check --row-json`, see [`check_single`]), so a crash or
//!   OOM kill in one input degrades to an `internal-error` row with
//!   the child's stderr captured, while sibling rows are unaffected;
//! * a deterministic [`RetryPolicy`] re-runs files whose verdict is a
//!   transient `internal-error` (contained panic, crashed child) with
//!   seeded backoff bounded by the file's remaining budget; files that
//!   still fail land on the report's quarantine list.
//!
//! Supervision never flips a verdict: it only degrades failures to
//! `Unknown`-family rows, and resume only substitutes rows that a real
//! check produced for identical input bytes.
//!
//! # Cache persistence
//!
//! With a cache directory, [`run_batch`] warm-starts from
//! [`ABS_CACHE_FILE`] (atom-level entailment answers) and
//! [`SOLVER_CACHE_FILE`] (formula-level solver answers), and writes
//! both back — seed plus everything the run learned — on completion.
//! Anything wrong with a cache file (corruption, truncation, a format
//! or atom-encoding version bump) degrades to a logged cold start:
//! the loaders in `circ_core::persist` / `circ_smt::persist` validate
//! a checksum before any entry is trusted, so a damaged file can
//! never smuggle in a wrong memoized verdict.
//!
//! Determinism contract: every file is checked with an inner
//! `CircConfig { jobs: 1 }` against a frozen seed, learned entries are
//! merged *sequentially in input order* after the pool run, and cache
//! files render canonically (sorted lines). Same inputs + same seed
//! files ⇒ bit-identical report (minus wall times) and cache files.
//! Fault plans are reseeded per file and per attempt from the content
//! digest, so injected faults are a pure function of the input bytes —
//! never of scheduling — and `stats.retries` is jobs-invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod mjson;

use circ_core::{
    circ_with_caches, pred_store, AbsCache, AbsSeed, CircConfig, CircOutcome, PredStore,
    SolverPersist, UnknownReason,
};
use circ_governor::{
    carve_mem_limit, carve_timeout, panic_message, CancelToken, FaultPlan, RetryPolicy,
};
use circ_ir::{structural_digest, MtProgram};
use circ_par::Pool;
use circ_smt::{Atom, Formula, SatResult};
use circ_stats::{BatchTotals, PipelineStats};
use circ_triage::{TriageConfig, TriageDecision};
use std::collections::BTreeMap;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// File name of the entailment-cache snapshot inside `--cache-dir`.
pub const ABS_CACHE_FILE: &str = "abs.cache";
/// File name of the solver-cache snapshot inside `--cache-dir`.
pub const SOLVER_CACHE_FILE: &str = "solver.cache";
/// File name of the predicate-store snapshot inside `--cache-dir`.
pub const PRED_STORE_FILE: &str = "preds.store";

/// Configuration for one batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Run ω-CIRC (the default, matching `circ check`).
    pub omega: bool,
    /// Initial counter parameter for every file.
    pub initial_k: u32,
    /// Memoize entailment and solver queries. Disabling this also
    /// disables persistence (`cache_dir` is ignored).
    pub use_cache: bool,
    /// Worker threads for the *outer* file fan-out (0 = all cores).
    /// Each file runs its pipeline sequentially (`jobs = 1` inside),
    /// so the report is identical at any setting.
    pub jobs: usize,
    /// Global wall-clock budget, split evenly across files (and then
    /// across a file's race variables).
    pub timeout: Option<Duration>,
    /// Global accounted-memory budget in bytes, split the same way.
    pub mem_limit_bytes: Option<u64>,
    /// Directory holding [`ABS_CACHE_FILE`] / [`SOLVER_CACHE_FILE`];
    /// loaded on start (cold start if absent or damaged) and written
    /// back on completion.
    pub cache_dir: Option<PathBuf>,
    /// Seed each check's predicates and `k` from [`PRED_STORE_FILE`]
    /// inside `cache_dir`, and record what each check discovered back
    /// into it. Only effective with a cache directory (and
    /// `use_cache`); on by default, `--no-pred-store` turns it off.
    pub pred_store: bool,
    /// Path of the crash-safety journal ([`journal`]). `None` runs
    /// without one. A non-resume run truncates any existing file.
    pub journal: Option<PathBuf>,
    /// Replay journaled rows for inputs whose content digest matches
    /// instead of re-checking them. Only meaningful with `journal`.
    pub resume: bool,
    /// Check each file in a separate child process (`circ check
    /// --row-json`) so a crash or OOM kill degrades to one
    /// `internal-error` row instead of taking down the batch.
    pub isolate: bool,
    /// Binary to re-exec for `isolate`. Defaults to the
    /// `CIRC_ISOLATE_BIN` environment variable, then to the current
    /// executable. Exposed so tests can substitute a scripted child.
    pub isolate_binary: Option<PathBuf>,
    /// Retry policy for transient `internal-error` rows (contained
    /// panics, crashed isolated children). The default never retries.
    pub retry: RetryPolicy,
    /// Cooperative cancellation: tripping this token (the CLI does so
    /// on SIGINT/SIGTERM) drains remaining work as cancelled rows
    /// while still producing the partial report and cache files.
    pub cancel: CancelToken,
    /// Test hook: trip `cancel` after this many files have completed
    /// a real check (replayed rows don't count). With `jobs = 1` this
    /// makes an "interrupted" run fully deterministic.
    pub cancel_after: Option<usize>,
    /// Base fault-injection plan (testing only; inert by default).
    /// Reseeded per file and per attempt from the content digest, so
    /// injection is independent of scheduling.
    pub faults: FaultPlan,
    /// Run the tiered triage pipeline in front of the engine: a race
    /// variable the sound flow pre-filter clears is Safe without a
    /// CIRC run, one a bounded random schedule convicts (with a
    /// replay-validated witness) is a race without a CIRC run, and
    /// only the residue reaches the full engine. Off by default
    /// (`--triage` enables it); verdicts are identical either way.
    pub triage: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            omega: true,
            initial_k: 1,
            use_cache: true,
            jobs: 1,
            timeout: None,
            mem_limit_bytes: None,
            cache_dir: None,
            pred_store: true,
            journal: None,
            resume: false,
            isolate: false,
            isolate_binary: None,
            retry: RetryPolicy::none(),
            cancel: CancelToken::new(),
            cancel_after: None,
            faults: FaultPlan::inert(),
            triage: false,
        }
    }
}

/// Per-file verdict, ordered by how bad it is for the batch exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every race variable proved race-free.
    Safe,
    /// The analysis gave up within its own bounds.
    Inconclusive,
    /// A worker task died (fault injection, an internal panic, or a
    /// crashed isolated child).
    InternalError,
    /// The file's resource slice ran out (including cancellation).
    BudgetExhausted,
    /// The file did not compile (or could not be read).
    CompileError,
    /// A genuine race with a concrete schedule.
    Race,
}

impl Verdict {
    /// Stable lowercase name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Safe => "safe",
            Verdict::Race => "race",
            Verdict::Inconclusive => "inconclusive",
            Verdict::InternalError => "internal-error",
            Verdict::BudgetExhausted => "budget-exhausted",
            Verdict::CompileError => "compile-error",
        }
    }

    /// The inverse of [`Verdict::name`], for journal replay and
    /// `--row-json` parsing.
    pub fn from_name(name: &str) -> Option<Verdict> {
        Some(match name {
            "safe" => Verdict::Safe,
            "race" => Verdict::Race,
            "inconclusive" => Verdict::Inconclusive,
            "internal-error" => Verdict::InternalError,
            "budget-exhausted" => Verdict::BudgetExhausted,
            "compile-error" => Verdict::CompileError,
            _ => return None,
        })
    }

    /// The exit code this verdict would produce for a single file,
    /// mirroring `circ check` (0/1/2/3/65).
    pub fn exit_code(self) -> u8 {
        match self {
            Verdict::Safe => 0,
            Verdict::Race => 1,
            Verdict::Inconclusive | Verdict::InternalError => 2,
            Verdict::BudgetExhausted => 3,
            Verdict::CompileError => 65,
        }
    }

    /// Dominance rank for worst-wins aggregation: race > compile
    /// error > budget exhaustion > internal error > inconclusive >
    /// safe. (Internal error and inconclusive share an exit code; the
    /// finer rank makes a transient failure win the within-file
    /// dominance so the retry policy can see it.)
    fn rank(self) -> u8 {
        match self {
            Verdict::Safe => 0,
            Verdict::Inconclusive => 1,
            Verdict::InternalError => 2,
            Verdict::BudgetExhausted => 3,
            Verdict::CompileError => 4,
            Verdict::Race => 5,
        }
    }
}

/// One checked file in the aggregate report.
#[derive(Debug, Clone)]
pub struct FileRow {
    /// The path as given on the work list.
    pub file: String,
    /// Worst verdict across the file's race variables.
    pub verdict: Verdict,
    /// Human detail: the racy variable and schedule size, the
    /// give-up reason, or the compile error.
    pub detail: String,
    /// Stage attribution: which pipeline stage decided each race
    /// variable, `+`-joined in variable order (`flow` = triage
    /// stage 0, `sched` = triage stage 1, `circ` = the full engine).
    /// `-` for rows that never reached a checker (compile errors,
    /// drained rows).
    pub stage: String,
    /// Wall clock for the whole file including retries (stripped by
    /// the determinism comparison; every wall-time key starts with
    /// `time`). Replayed rows keep the journaled value.
    pub time_s: f64,
    /// Summed pipeline counters across the file's race variables.
    pub pipeline: PipelineStats,
    /// Extra attempts spent on this file beyond the first.
    pub retries: u64,
    /// Isolated-child crashes observed across this file's attempts.
    pub isolated_crashes: u64,
    /// Whether this row was replayed from the journal (`--resume`).
    pub resumed: bool,
    /// Whether this row was drained by cancellation. Cancelled rows
    /// are never journaled, so a resumed run re-checks them.
    pub cancelled: bool,
}

impl FileRow {
    /// A zeroed row carrying only a verdict and its explanation.
    pub fn new(file: String, verdict: Verdict, detail: String) -> FileRow {
        FileRow {
            file,
            verdict,
            detail,
            stage: "-".to_string(),
            time_s: 0.0,
            pipeline: PipelineStats::default(),
            retries: 0,
            isolated_crashes: 0,
            resumed: false,
            cancelled: false,
        }
    }
}

/// What the persistence layer did, for the report's `cache` block.
#[derive(Debug, Clone)]
pub struct CacheSummary {
    /// The cache directory.
    pub dir: String,
    /// Entailment entries loaded as the warm seed.
    pub abs_seeded: usize,
    /// Solver entries loaded as the warm seed.
    pub solver_seeded: usize,
    /// Entailment entries written back (seed plus learned).
    pub abs_saved: usize,
    /// Solver entries written back (seed plus learned, minus
    /// non-persistable `Unknown` answers).
    pub solver_saved: usize,
    /// Predicate-store entries loaded as the warm seed (0 when the
    /// store is disabled).
    pub preds_seeded: usize,
    /// Predicate-store entries written back (seed plus learned).
    pub preds_saved: usize,
}

/// The aggregate result of [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One row per input file, in input order.
    pub rows: Vec<FileRow>,
    /// Roll-up counts and summed pipeline counters.
    pub totals: BatchTotals,
    /// Files whose verdict is still `internal-error` after the retry
    /// policy ran out of attempts, in input order.
    pub quarantine: Vec<String>,
    /// Persistence summary when a cache directory was active.
    pub cache: Option<CacheSummary>,
    /// Worst-wins exit code: 1 (race) > 65 (compile error) > 3
    /// (budget) > 2 (inconclusive) > 0 (all safe).
    pub exit: u8,
    /// Non-fatal problems (damaged cache files, failed saves, torn
    /// journal lines). Not part of the JSON report; the CLI prints
    /// them to stderr.
    pub warnings: Vec<String>,
}

/// Escapes a string for embedding in a JSON literal — the exact
/// escaping every renderer in this workspace uses, exported so the
/// serve protocol layer produces wire lines [`mjson`] reads back.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one report row as a JSON object (no trailing newline) —
/// the same shape the aggregate report embeds and a `--row-json`
/// child prints, so isolated and in-process rows agree byte-for-byte
/// by construction. Supervision flags (`resumed`, `cancelled`) are
/// deliberately absent: a resumed report must not differ from the
/// cold one it reproduces.
pub fn render_row_json(row: &FileRow) -> String {
    format!(
        "{{\"file\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\",\"stage\":\"{}\",\"exit\":{},\
         \"time_s\":{:.6},\"pipeline\":{}}}",
        json_escape(&row.file),
        row.verdict.name(),
        json_escape(&row.detail),
        json_escape(&row.stage),
        row.verdict.exit_code(),
        row.time_s,
        row.pipeline.to_json(),
    )
}

/// The worst-wins exit code for a set of rows — the dominance
/// [`run_batch`] applies to a report and `circ serve` applies to a
/// request's rows, shared so the two can never disagree: race >
/// compile error > budget exhaustion > internal error > inconclusive
/// > safe. An empty slice is a clean 0.
pub fn worst_exit(rows: &[FileRow]) -> u8 {
    rows.iter().map(|r| r.verdict).max_by_key(|v| v.rank()).map(Verdict::exit_code).unwrap_or(0)
}

/// Parses a row printed by a `--row-json` child back into a
/// [`FileRow`]. Any structural damage (a child killed mid-print) is
/// an `Err`; the supervisor degrades it to an `internal-error` row.
pub fn parse_row_json(line: &str) -> Result<FileRow, String> {
    let v = mjson::parse(line.trim())?;
    let str_field = |key: &str| -> Result<&str, String> {
        v.get(key).and_then(mjson::Value::as_str).ok_or(format!("missing string `{key}`"))
    };
    let verdict_name = str_field("verdict")?;
    let verdict =
        Verdict::from_name(verdict_name).ok_or(format!("unknown verdict `{verdict_name}`"))?;
    let time_s = v
        .get("time_s")
        .and_then(mjson::Value::as_f64)
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or("missing or unusable `time_s`")?;
    let pipeline = journal::pipeline_from_json(v.get("pipeline").ok_or("missing `pipeline`")?)?;
    let mut row =
        FileRow::new(str_field("file")?.to_string(), verdict, str_field("detail")?.to_string());
    row.stage = str_field("stage")?.to_string();
    row.time_s = time_s;
    row.pipeline = pipeline;
    Ok(row)
}

impl BatchReport {
    /// Renders the aggregate report as one JSON object. Key order is
    /// fixed and there is no `jobs` field, so two runs over the same
    /// inputs agree byte-for-byte once `"time*"` values are stripped.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"report\":\"circ-batch\",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&render_row_json(row));
        }
        s.push_str("],\"totals\":");
        s.push_str(&self.totals.to_json());
        s.push_str(",\"quarantine\":[");
        for (i, f) in self.quarantine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", json_escape(f)));
        }
        s.push_str("],\"cache\":");
        match &self.cache {
            None => s.push_str("null"),
            Some(c) => s.push_str(&format!(
                "{{\"dir\":\"{}\",\"abs_seeded\":{},\"solver_seeded\":{},\
                 \"abs_saved\":{},\"solver_saved\":{},\
                 \"preds_seeded\":{},\"preds_saved\":{}}}",
                json_escape(&c.dir),
                c.abs_seeded,
                c.solver_seeded,
                c.abs_saved,
                c.solver_saved,
                c.preds_seeded,
                c.preds_saved,
            )),
        }
        s.push_str(&format!(",\"exit\":{}}}", self.exit));
        s
    }

    /// Renders a human-readable table plus the totals summary.
    pub fn render_table(&self) -> String {
        let width = self.rows.iter().map(|r| r.file.len()).max().unwrap_or(4).max(4);
        let mut s = String::new();
        for row in &self.rows {
            s.push_str(&format!(
                "{:<width$}  {:<16}  {:<10}  {:>8.2}s  {}\n",
                row.file,
                row.verdict.name().to_uppercase(),
                row.stage,
                row.time_s,
                row.detail,
            ));
        }
        s.push_str(&self.totals.render_summary());
        if !s.ends_with('\n') {
            s.push('\n');
        }
        if !self.quarantine.is_empty() {
            s.push_str(&format!("quarantined: {}\n", self.quarantine.join(", ")));
        }
        s
    }
}

/// Parses a batch manifest: a JSON array of path strings. Only the
/// escapes `\" \\ \/ \b \f \n \r \t \uXXXX` are recognized; anything
/// beyond the closing `]` other than whitespace is an error.
pub fn parse_manifest(text: &str) -> Result<Vec<String>, String> {
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    skip_ws(&mut chars);
    if chars.next() != Some('[') {
        return Err("manifest must be a JSON array of path strings".into());
    }
    let mut paths = Vec::new();
    let mut after_comma = false;
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some(']') if !after_comma => {
                chars.next();
                break;
            }
            Some('"') => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated string in manifest".into()),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('u') => {
                                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}` in manifest"))?;
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or(format!("bad code point \\u{hex} in manifest"))?,
                                );
                            }
                            other => return Err(format!("bad escape {other:?} in manifest")),
                        },
                        Some(c) => s.push(c),
                    }
                }
                paths.push(s);
                skip_ws(&mut chars);
                match chars.next() {
                    Some(',') => after_comma = true,
                    Some(']') => break,
                    other => return Err(format!("expected `,` or `]` in manifest, got {other:?}")),
                }
            }
            other => return Err(format!("expected a path string in manifest, got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(junk) = chars.next() {
        return Err(format!("trailing content after manifest array: `{junk}`"));
    }
    Ok(paths)
}

/// Builds the batch work list from a directory (all `*.nesl` entries,
/// sorted by name), a `.json` manifest (paths resolved relative to the
/// manifest's directory), or a single `.nesl` file.
pub fn collect_inputs(path: &Path) -> Result<Vec<PathBuf>, String> {
    let meta = fs::metadata(path).map_err(|e| format!("cannot stat `{}`: {e}", path.display()))?;
    if meta.is_dir() {
        let entries =
            fs::read_dir(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "nesl") && p.is_file() {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no .nesl files in `{}`", path.display()));
        }
        Ok(files)
    } else if path.extension().is_some_and(|e| e == "json") {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let rel = parse_manifest(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if rel.is_empty() {
            return Err(format!("{}: empty manifest", path.display()));
        }
        let base = path.parent().unwrap_or(Path::new("."));
        Ok(rel.iter().map(|r| base.join(r)).collect())
    } else if path.extension().is_some_and(|e| e == "nesl") {
        Ok(vec![path.to_path_buf()])
    } else {
        Err(format!("`{}` is not a directory, .nesl file, or .json manifest", path.display()))
    }
}

/// The warm-start state loaded from a cache directory.
pub struct LoadedCaches {
    /// Entailment-cache seed ([`ABS_CACHE_FILE`]), empty on cold start.
    pub abs_seed: AbsSeed,
    /// Solver-cache seed ([`SOLVER_CACHE_FILE`]), empty on cold start.
    pub solver_seed: Vec<(Formula, SatResult)>,
    /// One message per damaged file that was ignored.
    pub warnings: Vec<String>,
    /// How many damaged artifacts degraded to a cold start (each one
    /// also has a warning). Feeds the `store_recoveries` counter.
    pub recovered: u64,
}

/// Loads both cache files, degrading each to an empty (cold) seed
/// with a warning if the file is missing the right header, fails its
/// checksum, or does not parse. A genuinely missing file is a silent
/// cold start.
pub fn load_caches(dir: &Path) -> LoadedCaches {
    load_caches_in(&circ_store::Store::real(), dir)
}

/// [`load_caches`] through an explicit storage handle, so torture
/// runs can fail or truncate the reads deterministically. Does not
/// sweep stale staging files — the run driver does that once, before
/// any load (see [`run_batch`]), so worker-side loads stay read-only.
pub fn load_caches_in(io: &circ_store::Store, dir: &Path) -> LoadedCaches {
    let mut warnings = Vec::new();
    let mut recovered = 0u64;
    let abs_path = dir.join(ABS_CACHE_FILE);
    let abs_seed = match circ_core::persist::load_abs_cache_in(io, &abs_path) {
        Ok(Some(seed)) => seed,
        Ok(None) => AbsSeed::empty(),
        Err(e) => {
            warnings.push(format!("ignoring cache `{}`: {e}", abs_path.display()));
            recovered += 1;
            AbsSeed::empty()
        }
    };
    let solver_path = dir.join(SOLVER_CACHE_FILE);
    let solver_seed = match circ_smt::persist::load_solver_cache_in(io, &solver_path) {
        Ok(Some(entries)) => entries,
        Ok(None) => Vec::new(),
        Err(e) => {
            warnings.push(format!("ignoring cache `{}`: {e}", solver_path.display()));
            recovered += 1;
            Vec::new()
        }
    };
    LoadedCaches { abs_seed, solver_seed, warnings, recovered }
}

/// Outcome of one locked merge-flush of a cache directory.
pub struct FlushOutcome {
    /// Entries in the merged entailment cache on disk after the flush.
    pub abs_saved: usize,
    /// Entries in the merged solver cache (`Unknown` is never persisted).
    pub solver_saved: usize,
    /// Entries in the merged predicate store (0 when the store is off).
    pub preds_saved: usize,
    /// Failed persistence steps: lock acquisition or artifact writes.
    /// Feeds the `flush_errors` counter; each failure also warns.
    pub flush_errors: u64,
    /// One message per failed step, phrased so the reader knows the
    /// previous on-disk snapshot is still intact.
    pub warnings: Vec<String>,
}

/// Merges `disk` and `ours` entry-wise, ours winning on key
/// collisions. Both sides key by canonical LIA atoms and the solver
/// is deterministic, so colliding values are identical anyway; the
/// union only ever *adds* warm-start coverage.
fn merge_abs_seeds(disk: &AbsSeed, ours: &AbsSeed) -> AbsSeed {
    let mut entails: BTreeMap<(Vec<Atom>, Atom), bool> = BTreeMap::new();
    let mut sat: BTreeMap<Vec<Atom>, bool> = BTreeMap::new();
    for (key, result) in disk.entails_entries().iter().chain(ours.entails_entries()) {
        entails.insert(key.clone(), *result);
    }
    for (key, result) in disk.sat_entries().iter().chain(ours.sat_entries()) {
        sat.insert(key.clone(), *result);
    }
    AbsSeed::from_entries(entails.into_iter().collect(), sat.into_iter().collect())
}

/// Flushes the run's learned state to `dir` under the directory's
/// advisory lock: re-reads whatever is on disk *now*, merges our
/// entries in (read-merge-write), and rewrites each artifact with a
/// durable atomic write. The lock closes the window in which two
/// processes sharing `--cache-dir` would otherwise clobber each
/// other's learning — concurrent runs compose instead.
///
/// Every failure degrades, never corrupts: if the lock cannot be
/// taken, nothing is written; if an individual write fails (ENOSPC,
/// injected crash point), the rename never happened, so the previous
/// snapshot of that artifact is intact. Both paths warn and count
/// into [`FlushOutcome::flush_errors`]. A *damaged* on-disk artifact
/// found during the re-read is simply replaced by our complete
/// snapshot — that is the recovery, not an error.
pub fn flush_caches_in(
    io: &circ_store::Store,
    dir: &Path,
    snapshot: &AbsSeed,
    persist: &SolverPersist,
    preds: Option<&PredStore>,
) -> FlushOutcome {
    let mut out = FlushOutcome {
        abs_saved: 0,
        solver_saved: 0,
        preds_saved: 0,
        flush_errors: 0,
        warnings: Vec::new(),
    };
    let _lock = match io.lock_dir(dir) {
        Ok(lock) => lock,
        Err(e) => {
            out.flush_errors += 1;
            out.warnings.push(format!(
                "cannot lock cache dir `{}`: {e}; skipping persist (previous snapshot intact)",
                dir.display()
            ));
            return out;
        }
    };
    let save = |path: &Path, text: &str, out: &mut FlushOutcome| match io.write_atomic(path, text) {
        Ok(()) => true,
        Err(e) => {
            out.flush_errors += 1;
            out.warnings
                .push(format!("cannot save `{}`: {e}; previous snapshot intact", path.display()));
            false
        }
    };

    let abs_path = dir.join(ABS_CACHE_FILE);
    let disk_abs = circ_core::persist::load_abs_cache_in(io, &abs_path)
        .ok()
        .flatten()
        .unwrap_or_else(AbsSeed::empty);
    let merged_abs = merge_abs_seeds(&disk_abs, snapshot);
    if save(&abs_path, &circ_core::persist::render_abs_cache(&merged_abs), &mut out) {
        out.abs_saved = merged_abs.len();
    }

    let solver_path = dir.join(SOLVER_CACHE_FILE);
    let disk_solver = circ_smt::persist::load_solver_cache_in(io, &solver_path)
        .ok()
        .flatten()
        .unwrap_or_default();
    // Ours first: `merged_entries` is first-wins per formula, and the
    // solver is deterministic, so the order only breaks ties between
    // identical values.
    let merged_solver = SolverPersist::with_seed(persist.merged_entries());
    merged_solver.absorb(disk_solver);
    let merged_solver_entries = merged_solver.merged_entries();
    if save(&solver_path, &circ_smt::persist::render_solver_cache(&merged_solver_entries), &mut out)
    {
        out.solver_saved =
            merged_solver_entries.iter().filter(|(_, r)| !matches!(r, SatResult::Unknown)).count();
    }

    if let Some(ours) = preds {
        let path = dir.join(PRED_STORE_FILE);
        let mut merged =
            pred_store::load_pred_store_in(io, &path).ok().flatten().unwrap_or_default();
        // `absorb` is later-wins, so absorbing *ours* into the disk
        // store gives our fresher outcome counts precedence.
        merged.absorb(ours.clone());
        if save(&path, &pred_store::render_pred_store(&merged), &mut out) {
            out.preds_saved = merged.len();
        }
    }
    out
}

/// Everything one source-level check needs from its surroundings: the
/// batch configuration, this unit's budget slice, the caches to run
/// against, and the (already reseeded) fault plan for this attempt.
/// [`run_batch`] builds one per file attempt and `circ serve` builds
/// one per request unit, so batch rows and serve rows come out of the
/// same code path by construction.
pub struct CheckCtx<'a> {
    /// Batch-level options (mode, `k`, cache policy, triage, cancel).
    pub config: &'a BatchConfig,
    /// Wall-clock slice for this unit, carved further across its race
    /// variables.
    pub file_timeout: Option<Duration>,
    /// Accounted-memory slice for this unit.
    pub file_mem: Option<u64>,
    /// Entailment cache the check runs against: an isolated seeded
    /// cache for jobs-invariant per-file counters (batch) or a shared
    /// warm master (serve) — per-run counters are deltas either way.
    pub cache: &'a AbsCache,
    /// Solver-answer store shared across the run.
    pub persist: &'a SolverPersist,
    /// Predicate-store seed to warm-start refinement from.
    pub pred_seed: Option<&'a PredStore>,
    /// Fault plan for this attempt (reseeded by the caller from the
    /// content digest, so injection stays scheduling-independent).
    pub faults: &'a FaultPlan,
}

/// Checks one named source text: compile, then worst-wins over its
/// race variables against the caches in `ctx`. Budget-exhausted and
/// cancelled outcomes keep the partial pipeline counters sealed up to
/// that point. Returns the row plus the predicate-store entries the
/// check discovered, for sequential post-run merging.
pub fn check_source(name: &str, src: &str, ctx: &CheckCtx) -> (FileRow, PredStore) {
    let start = Instant::now();
    let config = ctx.config;
    let row = |verdict: Verdict, detail: String, pipeline: PipelineStats, start: Instant| {
        let mut r = FileRow::new(name.to_string(), verdict, detail);
        r.time_s = start.elapsed().as_secs_f64();
        r.pipeline = pipeline;
        r
    };
    let compiled = match circ_frontend::compile(src) {
        Ok(c) => c,
        Err(e) => {
            let r = row(Verdict::CompileError, e.to_string(), Default::default(), start);
            return (r, PredStore::new());
        }
    };
    if compiled.race_vars.is_empty() {
        let detail = "no `#race` directive — nothing to check".to_string();
        let r = row(Verdict::CompileError, detail, Default::default(), start);
        return (r, PredStore::new());
    }
    let n_vars = compiled.race_vars.len();
    let cache = ctx.cache;
    let (file_timeout, file_mem) = (ctx.file_timeout, ctx.file_mem);
    let (persist, pred_seed, faults) = (ctx.persist, ctx.pred_seed, ctx.faults);
    let cfg = CircConfig {
        omega_mode: config.omega,
        initial_k: config.initial_k,
        use_cache: config.use_cache,
        jobs: 1,
        timeout: carve_timeout(file_timeout, n_vars),
        mem_limit_bytes: carve_mem_limit(file_mem, n_vars),
        cancel: config.cancel.clone(),
        faults: faults.clone(),
        ..CircConfig::default()
    };
    // Keyed by the *structural* digest of the lowered automaton plus a
    // per-race-variable config fingerprint — computed from the base
    // config, before seeding, so warm runs rebuild the recorded key.
    let cfa_digest = structural_digest(&compiled.cfa);
    let mut learned = PredStore::new();
    let mut verdict = Verdict::Safe;
    let mut detail = String::new();
    let mut pipeline = PipelineStats::default();
    let mut cancelled = false;
    let mut stages: Vec<&'static str> = Vec::with_capacity(n_vars);
    for &var in &compiled.race_vars {
        let program = MtProgram::new(compiled.cfa.clone(), var);
        let vname = compiled.cfa.var_name(var).to_string();
        if config.triage {
            // Cheap stages first: each can decide in one direction
            // only (stage 0 Safe, stage 1 Unsafe), so a decided
            // variable gets the same verdict the engine would have
            // produced — minus the engine run.
            match circ_triage::triage(&program, &TriageConfig::default()) {
                TriageDecision::Stage0Safe => {
                    pipeline.triage_stage0_decided += 1;
                    stages.push("flow");
                    continue; // verdict stays at the Safe floor
                }
                TriageDecision::Stage1Race(w) => {
                    pipeline.triage_stage1_decided += 1;
                    stages.push("sched");
                    let d = format!(
                        "race on {vname}: {} threads, {} steps",
                        w.n_threads,
                        w.steps.len()
                    );
                    if Verdict::Race.rank() > verdict.rank() {
                        verdict = Verdict::Race;
                        detail = d;
                    }
                    continue;
                }
                TriageDecision::Fallthrough => {
                    pipeline.triage_fallthrough += 1;
                    stages.push("circ");
                }
            }
        } else {
            stages.push("circ");
        }
        let config_fp = pred_store::config_fingerprint(
            cfg.initial_k,
            cfg.omega_mode,
            cfg.minimize,
            &cfg.initial_preds,
            &format!("race v{}", var.index()),
        );
        let mut var_cfg = cfg.clone();
        let prior =
            pred_seed.and_then(|s| pred_store::seed_config(s, cfa_digest, config_fp, &mut var_cfg));
        let outcome = circ_with_caches(&program, &var_cfg, cache, persist);
        let mut run_stats = outcome.stats().pipeline.clone();
        if let Some(prior_rounds) = prior {
            run_stats.preds_seeded = var_cfg.initial_preds.len() as u64;
            run_stats.refine_rounds_saved = prior_rounds.saturating_sub(run_stats.refine_rounds);
        }
        pipeline.add(&run_stats);
        pred_store::record_outcome(
            &mut learned,
            cfa_digest,
            config_fp,
            &outcome,
            prior.unwrap_or(0),
        );
        let (v, d) = match outcome {
            CircOutcome::Safe(_) => (Verdict::Safe, String::new()),
            CircOutcome::Unsafe(r) => (
                Verdict::Race,
                format!(
                    "race on {vname}: {} threads, {} steps",
                    r.cex.n_threads,
                    r.cex.steps.len()
                ),
            ),
            CircOutcome::Unknown(r) => {
                let v = match &r.reason {
                    UnknownReason::Cancelled => {
                        cancelled = true;
                        Verdict::BudgetExhausted
                    }
                    UnknownReason::InternalError(_) => Verdict::InternalError,
                    reason if reason.is_budget_exhausted() => Verdict::BudgetExhausted,
                    _ => Verdict::Inconclusive,
                };
                (v, format!("{vname}: {:?}", r.reason))
            }
        };
        if v.rank() > verdict.rank() {
            verdict = v;
            detail = d;
        }
        // Draining: once cancellation is observed there is no point
        // starting the remaining variables; the row is re-checked on
        // resume anyway because cancelled rows are never journaled.
        if cancelled {
            break;
        }
    }
    if verdict == Verdict::Safe {
        detail = format!("{n_vars} race variable(s) race-free");
    }
    let mut r = row(verdict, detail, pipeline, start);
    r.stage = stages.join("+");
    r.cancelled = cancelled;
    (r, learned)
}

/// Checks one file: read it, then run [`check_source`] against an
/// isolated cache seeded from the shared warm start, so per-file
/// statistics are independent of which worker ran it. Returns the
/// row, the file's cache, and the learned predicate-store entries —
/// both for sequential post-run merging.
#[allow(clippy::too_many_arguments)]
fn check_file(
    path: &Path,
    config: &BatchConfig,
    file_timeout: Option<Duration>,
    file_mem: Option<u64>,
    abs_seed: &AbsSeed,
    persist: &SolverPersist,
    pred_seed: Option<&PredStore>,
    faults: &FaultPlan,
) -> (FileRow, AbsCache, PredStore) {
    let start = Instant::now();
    let file = path.display().to_string();
    let src = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            let mut r = FileRow::new(file, Verdict::CompileError, format!("cannot read: {e}"));
            r.time_s = start.elapsed().as_secs_f64();
            return (r, AbsCache::disabled(), PredStore::new());
        }
    };
    let cache = if config.use_cache { AbsCache::with_seed(abs_seed) } else { AbsCache::disabled() };
    let ctx =
        CheckCtx { config, file_timeout, file_mem, cache: &cache, persist, pred_seed, faults };
    let (row, learned) = check_source(&file, &src, &ctx);
    (row, cache, learned)
}

/// Checks one file exactly as an in-process batch worker would — the
/// same budget carving across race variables, the same cache seeding,
/// the same counters — and returns the completed row plus any
/// cache-load warnings. This is the child half of `--isolate`:
/// `circ check <file> --row-json` calls it and prints the row, so an
/// isolated batch produces rows identical to an in-process one by
/// construction. Learned cache entries are discarded — an isolated
/// child never writes cache files (the parent would race it).
pub fn check_single(path: &Path, config: &BatchConfig) -> (FileRow, Vec<String>) {
    let io = circ_store::Store::with_faults(&config.faults);
    let cache_dir = if config.use_cache { config.cache_dir.as_deref() } else { None };
    let (abs_seed, solver_seed, mut warnings) = match cache_dir {
        Some(dir) => {
            let loaded = load_caches_in(&io, dir);
            (loaded.abs_seed, loaded.solver_seed, loaded.warnings)
        }
        None => (AbsSeed::empty(), Vec::new(), Vec::new()),
    };
    let persist = if cache_dir.is_some() {
        SolverPersist::with_seed(solver_seed)
    } else {
        SolverPersist::inert()
    };
    // The isolated child never persists, so recovery bookkeeping stays
    // with the parent driver (keeps per-row counters jobs-invariant).
    let mut recovered = 0u64;
    let pred_seed = load_pred_seed(&io, config, cache_dir, &mut warnings, &mut recovered);
    let key = content_key(path);
    let faults = config.faults.reseeded(key ^ 1);
    let (row, _cache, _learned) = check_file(
        path,
        config,
        config.timeout,
        config.mem_limit_bytes,
        &abs_seed,
        &persist,
        pred_seed.as_ref(),
        &faults,
    );
    (row, warnings)
}

/// Loads the predicate-store seed for a run: `Some(store)` when the
/// store is enabled and a cache directory is active (an empty store on
/// a cold start or after logged damage), `None` when disabled. A
/// damaged file degrades to a warning plus a cold start, exactly like
/// the cache snapshots.
fn load_pred_seed(
    io: &circ_store::Store,
    config: &BatchConfig,
    cache_dir: Option<&Path>,
    warnings: &mut Vec<String>,
    recovered: &mut u64,
) -> Option<PredStore> {
    if !config.pred_store {
        return None;
    }
    let dir = cache_dir?;
    let path = dir.join(PRED_STORE_FILE);
    match pred_store::load_pred_store_in(io, &path) {
        Ok(Some(store)) => Some(store),
        Ok(None) => Some(PredStore::new()),
        Err(e) => {
            warnings.push(format!("ignoring predicate store `{}`: {e}", path.display()));
            *recovered += 1;
            Some(PredStore::new())
        }
    }
}

/// The deterministic per-file key used to reseed fault plans and draw
/// retry backoffs: the content digest when the file is readable, a
/// path-derived fallback otherwise. A pure function of the input, so
/// supervision behavior is independent of scheduling.
fn content_key(path: &Path) -> u64 {
    match fs::read(path) {
        Ok(bytes) => journal::digest_bytes(&bytes),
        Err(_) => journal::digest_bytes(path.display().to_string().as_bytes()),
    }
}

/// One unit of batch work: the input path, its content digest (when
/// readable), and the journaled row to replay instead of re-checking
/// (when resuming and the digest matched).
struct FileTask {
    path: PathBuf,
    digest: Option<u64>,
    replay: Option<journal::JournalEntry>,
}

/// Shared context for supervised per-file checking: retry loop, panic
/// containment, process isolation, journaling, and the cancellation
/// drain.
struct Supervisor<'a> {
    config: &'a BatchConfig,
    file_timeout: Option<Duration>,
    file_mem: Option<u64>,
    abs_seed: &'a AbsSeed,
    persist: &'a SolverPersist,
    pred_seed: Option<&'a PredStore>,
    journal: Option<&'a journal::Journal>,
    /// Configuration fingerprint stamped on every journal line (and
    /// required of replayed ones).
    journal_config: u64,
    /// Files that completed a real check (drives `cancel_after`).
    completed: &'a AtomicUsize,
    /// Journal lines that failed to write (reported once, at the end).
    append_failures: &'a AtomicUsize,
}

impl Supervisor<'_> {
    /// Runs one file to a final row: replay, drain, or check with
    /// retries — then journal the result.
    fn supervise(&self, task: &FileTask) -> (FileRow, AbsCache, PredStore) {
        let file = task.path.display().to_string();
        if let Some(entry) = &task.replay {
            let mut row = entry.row.clone();
            row.file = file;
            row.resumed = true;
            return (row, AbsCache::disabled(), PredStore::new());
        }
        let start = Instant::now();
        if self.config.cancel.is_cancelled() {
            let mut row =
                FileRow::new(file, Verdict::BudgetExhausted, "cancelled before start".to_string());
            row.cancelled = true;
            return (row, AbsCache::disabled(), PredStore::new());
        }
        let key = task.digest.unwrap_or_else(|| content_key(&task.path));
        let mut retries: u64 = 0;
        let mut crashes: u64 = 0;
        let mut attempt: u32 = 1;
        loop {
            let remaining = self.file_timeout.map(|t| t.saturating_sub(start.elapsed()));
            let (mut row, cache, learned) =
                self.attempt(&task.path, remaining, key, attempt, &mut crashes);
            let out_of_budget = remaining.is_some_and(|r| r.is_zero());
            if row.verdict == Verdict::InternalError
                && self.config.retry.should_retry(attempt)
                && !self.config.cancel.is_cancelled()
                && !out_of_budget
            {
                retries += 1;
                let left = self.file_timeout.map(|t| t.saturating_sub(start.elapsed()));
                std::thread::sleep(self.config.retry.backoff(key, attempt, left));
                attempt += 1;
                continue;
            }
            row.retries = retries;
            row.isolated_crashes = crashes;
            row.time_s = start.elapsed().as_secs_f64();
            if let (Some(journal), Some(digest)) = (self.journal, task.digest) {
                // Cancelled rows are deliberately not journaled: their
                // absence is what makes `--resume` re-check them.
                if !row.cancelled && journal.append(&row, digest, self.journal_config).is_err() {
                    self.append_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
            if self.config.cancel_after.is_some_and(|limit| done >= limit) {
                self.config.cancel.cancel();
            }
            return (row, cache, learned);
        }
    }

    /// One attempt at one file: in-process (panic-contained) or in an
    /// isolated child, with the fault plan reseeded from
    /// `content digest ⊕ attempt` so injection is jobs-invariant.
    fn attempt(
        &self,
        path: &Path,
        attempt_timeout: Option<Duration>,
        key: u64,
        attempt: u32,
        crashes: &mut u64,
    ) -> (FileRow, AbsCache, PredStore) {
        if self.config.isolate {
            return (
                self.isolated(path, attempt_timeout, crashes),
                AbsCache::disabled(),
                PredStore::new(),
            );
        }
        let faults = self.config.faults.reseeded(key ^ u64::from(attempt));
        match catch_unwind(AssertUnwindSafe(|| {
            check_file(
                path,
                self.config,
                attempt_timeout,
                self.file_mem,
                self.abs_seed,
                self.persist,
                self.pred_seed,
                &faults,
            )
        })) {
            Ok(result) => result,
            Err(payload) => {
                let row = FileRow::new(
                    path.display().to_string(),
                    Verdict::InternalError,
                    format!("contained worker panic: {}", panic_message(payload.as_ref())),
                );
                (row, AbsCache::disabled(), PredStore::new())
            }
        }
    }

    /// Runs one attempt in a child process (`circ check --row-json`).
    /// A child killed by a signal, or one that exits without printing
    /// a parseable row, becomes an `internal-error` row carrying the
    /// child's stderr tail; it never takes down the batch.
    fn isolated(
        &self,
        path: &Path,
        attempt_timeout: Option<Duration>,
        crashes: &mut u64,
    ) -> FileRow {
        let file = path.display().to_string();
        let internal = |detail: String| FileRow::new(file.clone(), Verdict::InternalError, detail);
        let binary = self
            .config
            .isolate_binary
            .clone()
            .or_else(|| std::env::var_os("CIRC_ISOLATE_BIN").map(PathBuf::from))
            .or_else(|| std::env::current_exe().ok());
        let Some(binary) = binary else {
            return internal("cannot locate a binary for --isolate (set CIRC_ISOLATE_BIN)".into());
        };
        let mut cmd = Command::new(&binary);
        cmd.arg("check").arg(path).arg("--row-json");
        cmd.arg("--mode").arg(if self.config.omega { "omega" } else { "circ" });
        cmd.arg("--k").arg(self.config.initial_k.to_string());
        if !self.config.use_cache {
            cmd.arg("--no-cache");
        } else if let Some(dir) = &self.config.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        if !self.config.pred_store {
            cmd.arg("--no-pred-store");
        }
        if self.config.triage {
            cmd.arg("--triage");
        }
        if let Some(t) = attempt_timeout {
            cmd.arg("--timeout-millis").arg(t.as_millis().to_string());
        }
        if let Some(m) = self.file_mem {
            cmd.arg("--mem-limit-bytes").arg(m.to_string());
        }
        let out = match cmd.output() {
            Ok(out) => out,
            Err(e) => {
                return internal(format!("cannot spawn isolated child `{}`: {e}", binary.display()))
            }
        };
        let stderr_tail = || {
            let text = String::from_utf8_lossy(&out.stderr);
            let trimmed = text.trim();
            let chars: Vec<char> = trimmed.chars().collect();
            let skip = chars.len().saturating_sub(240);
            chars[skip..].iter().collect::<String>()
        };
        if out.status.code().is_none() {
            // Killed by a signal — the crash/OOM case isolation is for.
            *crashes += 1;
            return internal(format!(
                "isolated child died ({}); stderr: {}",
                describe_status(&out.status),
                stderr_tail()
            ));
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let row_line = stdout.lines().rev().find(|l| !l.trim().is_empty());
        match row_line.map(parse_row_json) {
            Some(Ok(mut row)) => {
                // Keep the parent's path string; the child echoed the
                // same one, but the parent's copy is authoritative.
                row.file = file;
                row
            }
            Some(Err(e)) => {
                *crashes += 1;
                internal(format!(
                    "isolated child (exit {:?}) printed an unreadable row ({e}); stderr: {}",
                    out.status.code(),
                    stderr_tail()
                ))
            }
            None => {
                *crashes += 1;
                internal(format!(
                    "isolated child (exit {:?}) printed no row; stderr: {}",
                    out.status.code(),
                    stderr_tail()
                ))
            }
        }
    }
}

/// Human description of a child exit status — names the signal on
/// Unix, falls back to the OS rendering elsewhere.
#[cfg(unix)]
fn describe_status(status: &std::process::ExitStatus) -> String {
    use std::os::unix::process::ExitStatusExt;
    match status.signal() {
        Some(sig) => format!("signal {sig}"),
        None => status.to_string(),
    }
}

#[cfg(not(unix))]
fn describe_status(status: &std::process::ExitStatus) -> String {
    status.to_string()
}

/// Runs the whole batch: load caches and journal, fan out under
/// supervision, aggregate, save.
///
/// Rows come back in input order regardless of `jobs`; a worker panic
/// becomes an `internal-error` row (retried under the configured
/// policy) rather than killing the batch; a tripped [`CancelToken`]
/// drains the remaining work but still produces the partial report
/// and cache files. Cache files are written even on non-zero exits —
/// a racy corpus still warms the cache.
pub fn run_batch(inputs: &[PathBuf], config: &BatchConfig) -> BatchReport {
    let io = circ_store::Store::with_faults(&config.faults);
    let cache_dir = if config.use_cache { config.cache_dir.as_deref() } else { None };
    // All storage recovery and flush accounting happens here in the
    // driver — loads before the pool starts, the flush after it
    // drains — so both counters are invariant under `jobs`.
    let mut store_recoveries = 0u64;
    let (abs_seed, solver_seed, mut warnings) = match cache_dir {
        Some(dir) => {
            let (swept, sweep_warnings) = io.sweep_stale_tmps(dir);
            store_recoveries += swept;
            let loaded = load_caches_in(&io, dir);
            store_recoveries += loaded.recovered;
            let mut w = sweep_warnings;
            w.extend(loaded.warnings);
            (loaded.abs_seed, loaded.solver_seed, w)
        }
        None => (AbsSeed::empty(), Vec::new(), Vec::new()),
    };
    let abs_seeded = abs_seed.len();
    let solver_seeded = solver_seed.len();
    // An active store even when the seed is empty: with a cache dir
    // we must *collect* what the run learns, not just replay it.
    let persist = if cache_dir.is_some() {
        SolverPersist::with_seed(solver_seed)
    } else {
        SolverPersist::inert()
    };
    let pred_seed = load_pred_seed(&io, config, cache_dir, &mut warnings, &mut store_recoveries);
    let preds_seeded = pred_seed.as_ref().map_or(0, PredStore::len);

    // Journal replay map (resume) and writer. Opening the writer
    // truncates on a fresh run: stale entries from a previous corpus
    // must not survive for a later `--resume` to trust. Rows are only
    // replayable under the configuration that produced them.
    let journal_config = journal::config_fingerprint(
        config.omega,
        config.initial_k,
        config.use_cache,
        config.timeout,
        config.mem_limit_bytes,
        config.triage,
    );
    let mut replayed = std::collections::HashMap::new();
    if config.resume {
        if let Some(jpath) = &config.journal {
            let (map, journal_warnings) = journal::load(jpath, journal_config);
            warnings.extend(journal_warnings);
            replayed = map;
        }
    }
    let tasks: Vec<FileTask> = inputs
        .iter()
        .map(|path| {
            let digest = fs::read(path).ok().map(|bytes| journal::digest_bytes(&bytes));
            let replay = digest.and_then(|d| replayed.get(&d).cloned());
            FileTask { path: path.clone(), digest, replay }
        })
        .collect();
    let journal_out = config.journal.as_ref().and_then(|path| {
        let opened = if config.resume {
            journal::Journal::open_append_in(&io, path)
        } else {
            journal::Journal::create_in(&io, path)
        };
        match opened {
            Ok(j) => Some(j),
            Err(e) => {
                warnings.push(format!(
                    "cannot open journal `{}`: {e}; running without one",
                    path.display()
                ));
                None
            }
        }
    });

    let n = inputs.len();
    let completed = AtomicUsize::new(0);
    let append_failures = AtomicUsize::new(0);
    let supervisor = Supervisor {
        config,
        file_timeout: carve_timeout(config.timeout, n),
        file_mem: carve_mem_limit(config.mem_limit_bytes, n),
        abs_seed: &abs_seed,
        persist: &persist,
        pred_seed: pred_seed.as_ref(),
        journal: journal_out.as_ref(),
        journal_config,
        completed: &completed,
        append_failures: &append_failures,
    };
    let pool = Pool::new(config.jobs);
    let results = pool.try_map(&tasks, |task| supervisor.supervise(task));

    let mut rows = Vec::with_capacity(n);
    let mut caches = Vec::with_capacity(n);
    let mut learned_stores = Vec::with_capacity(n);
    for (path, result) in inputs.iter().zip(results) {
        match result {
            Ok((row, cache, learned)) => {
                rows.push(row);
                caches.push(cache);
                learned_stores.push(learned);
            }
            Err(e) => {
                // Last-resort containment: a panic that escaped the
                // supervisor itself (journal I/O, bookkeeping).
                rows.push(FileRow::new(
                    path.display().to_string(),
                    Verdict::InternalError,
                    e.message,
                ));
                caches.push(AbsCache::disabled());
                learned_stores.push(PredStore::new());
            }
        }
    }
    if append_failures.load(Ordering::Relaxed) > 0 {
        warnings.push(format!(
            "{} journal append(s) failed; a resume may re-check those files",
            append_failures.load(Ordering::Relaxed)
        ));
    }

    let mut totals = BatchTotals { files: rows.len() as u64, ..BatchTotals::default() };
    for row in &rows {
        match row.verdict {
            Verdict::Safe => totals.safe += 1,
            Verdict::Race => totals.races += 1,
            Verdict::Inconclusive | Verdict::InternalError => totals.inconclusive += 1,
            Verdict::BudgetExhausted => totals.budget_exhausted += 1,
            Verdict::CompileError => totals.compile_errors += 1,
        }
        totals.retries += row.retries;
        totals.isolated_crashes += row.isolated_crashes;
        totals.resumed += u64::from(row.resumed);
        totals.cancelled += u64::from(row.cancelled);
        totals.pipeline.add(&row.pipeline);
    }
    let quarantine: Vec<String> = rows
        .iter()
        .filter(|r| r.verdict == Verdict::InternalError)
        .map(|r| r.file.clone())
        .collect();
    let exit = worst_exit(&rows);

    // Merge and save sequentially in input order — scheduling never
    // touches the persisted state, so warm files are reproducible.
    // (Under --isolate the children learn into their own memory and
    // are discarded; the save then round-trips the seed unchanged.)
    let mut flush_errors = append_failures.load(Ordering::Relaxed) as u64;
    let cache = cache_dir.map(|dir| {
        let master = AbsCache::with_seed(&abs_seed);
        for file_cache in &caches {
            master.absorb(file_cache);
        }
        let snapshot = master.snapshot();
        let pred_master = pred_seed.map(|seed| {
            let mut master = seed;
            for learned in learned_stores {
                master.absorb(learned);
            }
            master
        });
        let outcome = flush_caches_in(&io, dir, &snapshot, &persist, pred_master.as_ref());
        warnings.extend(outcome.warnings);
        flush_errors += outcome.flush_errors;
        CacheSummary {
            dir: dir.display().to_string(),
            abs_seeded,
            solver_seeded,
            abs_saved: outcome.abs_saved,
            solver_saved: outcome.solver_saved,
            preds_seeded,
            preds_saved: outcome.preds_saved,
        }
    });
    totals.pipeline.store_recoveries += store_recoveries;
    totals.pipeline.flush_errors += flush_errors;

    BatchReport { rows, totals, quarantine, cache, exit, warnings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("circ-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SAFE_SRC: &str = "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n";
    const RACY_SRC: &str = "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n";

    #[test]
    fn manifest_parses_paths_and_escapes() {
        let paths =
            parse_manifest(" [ \"a.nesl\" , \"dir\\/b.nesl\", \"c\\u0041.nesl\" ] ").unwrap();
        assert_eq!(paths, vec!["a.nesl", "dir/b.nesl", "cA.nesl"]);
        assert_eq!(parse_manifest("[]").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn manifest_rejects_garbage() {
        for bad in ["", "{", "[\"a\"", "[\"a\",]", "[\"a\"] x", "[1]", "[\"\\q\"]"] {
            assert!(parse_manifest(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn collect_inputs_scans_sorted_and_reads_manifests() {
        let dir = tmp_root("collect");
        fs::write(dir.join("b.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("notes.txt"), "x").unwrap();
        let got = collect_inputs(&dir).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl"), dir.join("b.nesl")]);

        fs::write(dir.join("m.json"), "[\"a.nesl\", \"b.nesl\"]").unwrap();
        let got = collect_inputs(&dir.join("m.json")).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl"), dir.join("b.nesl")]);

        let got = collect_inputs(&dir.join("a.nesl")).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl")]);

        assert!(collect_inputs(&dir.join("notes.txt")).is_err());
        assert!(collect_inputs(&dir.join("missing.nesl")).is_err());
        let empty = tmp_root("collect-empty");
        assert!(collect_inputs(&empty).is_err());
    }

    #[test]
    fn batch_worst_wins_and_orders_rows() {
        let dir = tmp_root("worst");
        fs::write(dir.join("a_safe.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b_racy.nesl"), RACY_SRC).unwrap();
        fs::write(dir.join("c_broken.nesl"), "global int").unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let report = run_batch(&inputs, &BatchConfig::default());
        assert_eq!(report.exit, 1, "race dominates compile error");
        let verdicts: Vec<_> = report.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(verdicts, vec![Verdict::Safe, Verdict::Race, Verdict::CompileError]);
        assert_eq!(report.totals.files, 3);
        assert_eq!(report.totals.safe, 1);
        assert_eq!(report.totals.races, 1);
        assert_eq!(report.totals.compile_errors, 1);
        assert!(report.cache.is_none());
        assert!(report.quarantine.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"verdict\":\"race\""), "{json}");
        assert!(json.contains("\"quarantine\":[]"), "{json}");
        assert!(!json.contains("\"jobs\""), "report must not mention jobs: {json}");
    }

    #[test]
    fn batch_compile_error_dominates_inconclusive() {
        let dir = tmp_root("dominance");
        fs::write(dir.join("broken.nesl"), "thread {").unwrap();
        fs::write(dir.join("safe.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let report = run_batch(&inputs, &BatchConfig::default());
        assert_eq!(report.exit, 65);
    }

    #[test]
    fn warm_run_hits_where_cold_missed() {
        let dir = tmp_root("warm");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig { cache_dir: Some(cache_dir.clone()), ..BatchConfig::default() };

        let cold = run_batch(&inputs, &cfg);
        assert_eq!(cold.exit, 0);
        let cold_cache = cold.cache.as_ref().unwrap();
        assert_eq!(cold_cache.abs_seeded, 0);
        assert!(cold_cache.abs_saved > 0, "a safe proof must learn entailments");
        assert!(cache_dir.join(ABS_CACHE_FILE).is_file());
        assert!(cache_dir.join(SOLVER_CACHE_FILE).is_file());

        let warm = run_batch(&inputs, &cfg);
        assert_eq!(warm.exit, 0);
        let warm_cache = warm.cache.as_ref().unwrap();
        assert_eq!(warm_cache.abs_seeded, cold_cache.abs_saved);
        assert!(
            warm.totals.pipeline.abs.cache_misses < cold.totals.pipeline.abs.cache_misses,
            "warm run must miss strictly less: warm {} vs cold {}",
            warm.totals.pipeline.abs.cache_misses,
            cold.totals.pipeline.abs.cache_misses
        );
        // Identical verdicts, and the cache reaches a fixpoint.
        assert_eq!(warm.rows[0].verdict, cold.rows[0].verdict);
        assert_eq!(warm_cache.abs_saved, cold_cache.abs_saved);
    }

    #[test]
    fn damaged_cache_degrades_to_cold_start() {
        let dir = tmp_root("damaged");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig { cache_dir: Some(cache_dir.clone()), ..BatchConfig::default() };
        let cold = run_batch(&inputs, &cfg);

        // Corrupt one byte in the body of the saved entailment cache.
        let path = cache_dir.join(ABS_CACHE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let ix = bytes.len() - 2;
        bytes[ix] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let damaged = run_batch(&inputs, &cfg);
        assert_eq!(damaged.exit, 0);
        assert!(
            damaged.warnings.iter().any(|w| w.contains("ignoring cache")),
            "expected a degradation warning, got {:?}",
            damaged.warnings
        );
        let summary = damaged.cache.as_ref().unwrap();
        assert_eq!(summary.abs_seeded, 0, "damaged file must not seed anything");
        assert_eq!(damaged.rows[0].verdict, cold.rows[0].verdict);
        // The save path rewrote a valid file; the next run is warm again.
        let healed = run_batch(&inputs, &cfg);
        assert!(healed.warnings.is_empty());
        assert_eq!(healed.cache.as_ref().unwrap().abs_seeded, summary.abs_saved);
    }

    #[test]
    fn no_cache_ignores_cache_dir() {
        let dir = tmp_root("nocache");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig {
            use_cache: false,
            cache_dir: Some(cache_dir.clone()),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.exit, 0);
        assert!(report.cache.is_none());
        assert!(!cache_dir.exists(), "no cache files may be written with --no-cache");
    }

    #[test]
    fn report_is_jobs_invariant_modulo_wall_times() {
        let dir = tmp_root("jobs");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b.nesl"), RACY_SRC).unwrap();
        fs::write(dir.join("c.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let seq = run_batch(&inputs, &BatchConfig { jobs: 1, ..BatchConfig::default() });
        let par = run_batch(&inputs, &BatchConfig { jobs: 4, ..BatchConfig::default() });
        assert_eq!(strip_times(&seq.to_json()), strip_times(&par.to_json()));
        assert_eq!(seq.exit, par.exit);
    }

    #[test]
    fn budget_exhausted_rows_carry_partial_stats() {
        let dir = tmp_root("partial-stats");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig { timeout: Some(Duration::from_nanos(1)), ..BatchConfig::default() };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.exit, 3);
        let row = &report.rows[0];
        assert_eq!(row.verdict, Verdict::BudgetExhausted);
        assert!(
            row.pipeline.budget_polls > 0,
            "an exhausted row must keep the partial counters sealed up to the trip: {:?}",
            row.pipeline
        );
        assert!(row.detail.contains("Deadline"), "{}", row.detail);
    }

    #[test]
    fn journal_resume_replays_rows_byte_identically() {
        let dir = tmp_root("resume");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b.nesl"), RACY_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let journal_path = dir.join("run.journal");
        let cfg = BatchConfig { journal: Some(journal_path.clone()), ..BatchConfig::default() };

        let cold = run_batch(&inputs, &cfg);
        assert_eq!(cold.totals.resumed, 0);
        assert!(journal_path.is_file());

        let resumed = run_batch(&inputs, &BatchConfig { resume: true, ..cfg.clone() });
        assert_eq!(resumed.totals.resumed, 2, "both rows must replay");
        assert!(resumed.rows.iter().all(|r| r.resumed));
        // Replayed rows reproduce the cold rows byte-for-byte —
        // including wall times, which come from the journal.
        for (cold_row, resumed_row) in cold.rows.iter().zip(&resumed.rows) {
            assert_eq!(render_row_json(cold_row), render_row_json(resumed_row));
        }
        // A second resume is byte-stable against the first.
        let again = run_batch(&inputs, &BatchConfig { resume: true, ..cfg.clone() });
        assert_eq!(resumed.to_json(), again.to_json());

        // Editing a file invalidates only that file's entry.
        fs::write(dir.join("a.nesl"), RACY_SRC.replace('y', "z")).unwrap();
        let partial = run_batch(&inputs, &BatchConfig { resume: true, ..cfg });
        assert_eq!(partial.totals.resumed, 1, "edited file must be re-checked");
        assert_eq!(partial.rows[0].verdict, Verdict::Race, "re-check sees the new content");
    }

    #[test]
    fn interrupted_run_drains_and_resume_completes() {
        let dir = tmp_root("interrupt");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b.nesl"), RACY_SRC).unwrap();
        fs::write(dir.join("c.nesl"), SAFE_SRC.replace('x', "w")).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let journal_path = dir.join("run.journal");

        let baseline = run_batch(&inputs, &BatchConfig::default());

        // "Interrupt" deterministically after the first completed file.
        let cfg = BatchConfig {
            journal: Some(journal_path.clone()),
            cancel_after: Some(1),
            ..BatchConfig::default()
        };
        let interrupted = run_batch(&inputs, &cfg);
        assert_eq!(interrupted.totals.cancelled, 2, "files after the trip must drain");
        assert_eq!(interrupted.rows[0].verdict, Verdict::Safe);
        assert!(interrupted.rows[1].cancelled && interrupted.rows[2].cancelled);
        assert_eq!(interrupted.exit, 3, "a drained batch exits with the budget code");
        let journal_text = fs::read_to_string(&journal_path).unwrap();
        assert_eq!(journal_text.lines().count(), 1, "cancelled rows must not be journaled");

        // Resume finishes the rest; verdicts match the uninterrupted run.
        let resumed = run_batch(
            &inputs,
            &BatchConfig {
                journal: Some(journal_path.clone()),
                resume: true,
                ..BatchConfig::default()
            },
        );
        assert_eq!(resumed.totals.resumed, 1);
        assert_eq!(resumed.totals.cancelled, 0);
        let essence = |r: &BatchReport| -> Vec<(String, &'static str, String)> {
            r.rows
                .iter()
                .map(|row| (row.file.clone(), row.verdict.name(), row.detail.clone()))
                .collect()
        };
        assert_eq!(essence(&resumed), essence(&baseline));
        assert_eq!(resumed.exit, baseline.exit);
    }

    #[test]
    fn pre_tripped_cancel_drains_everything_but_still_reports() {
        let dir = tmp_root("drain");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b.nesl"), RACY_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig::default();
        cfg.cancel.cancel();
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.totals.cancelled, 2);
        assert_eq!(report.exit, 3);
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::BudgetExhausted && r.cancelled));
    }

    #[cfg(unix)]
    fn write_script(path: &Path, body: &str) {
        use std::os::unix::fs::PermissionsExt;
        fs::write(path, body).unwrap();
        let mut perms = fs::metadata(path).unwrap().permissions();
        perms.set_mode(0o755);
        fs::set_permissions(path, perms).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn isolated_child_rows_parse_and_crashes_degrade() {
        let dir = tmp_root("isolate");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();

        // A scripted "child" that prints a canned row.
        let fake_row = render_row_json(&FileRow::new(
            "ignored-by-parent".into(),
            Verdict::Safe,
            "1 race variable(s) race-free".into(),
        ));
        let ok_script = dir.join("fake-circ-ok.sh");
        write_script(&ok_script, &format!("#!/bin/sh\necho '{fake_row}'\nexit 0\n"));
        let cfg = BatchConfig {
            isolate: true,
            isolate_binary: Some(ok_script),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.rows[0].verdict, Verdict::Safe);
        assert_eq!(report.rows[0].file, inputs[0].display().to_string());
        assert_eq!(report.totals.isolated_crashes, 0);

        // A "child" that dies on a signal: one internal-error row,
        // stderr captured, batch survives.
        let crash_script = dir.join("fake-circ-crash.sh");
        write_script(&crash_script, "#!/bin/sh\necho boom-stderr >&2\nkill -ABRT $$\n");
        let cfg = BatchConfig {
            isolate: true,
            isolate_binary: Some(crash_script),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.rows[0].verdict, Verdict::InternalError);
        assert!(report.rows[0].detail.contains("signal 6"), "{}", report.rows[0].detail);
        assert!(report.rows[0].detail.contains("boom-stderr"), "{}", report.rows[0].detail);
        assert_eq!(report.totals.isolated_crashes, 1);
        assert_eq!(report.quarantine, vec![inputs[0].display().to_string()]);
        assert_eq!(report.exit, 2);
    }

    #[cfg(unix)]
    #[test]
    fn retry_policy_reruns_flaky_children_and_quarantines_hopeless_ones() {
        let dir = tmp_root("retry");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();

        // Fails on the first call, succeeds on the second (a marker
        // file carries the attempt count across processes).
        let fake_row = render_row_json(&FileRow::new(
            "x".into(),
            Verdict::Safe,
            "1 race variable(s) race-free".into(),
        ));
        let marker = dir.join("attempted");
        let flaky_script = dir.join("fake-circ-flaky.sh");
        write_script(
            &flaky_script,
            &format!(
                "#!/bin/sh\nif [ -e '{}' ]; then echo '{fake_row}'; exit 0; fi\n\
                 touch '{}'\nkill -KILL $$\n",
                marker.display(),
                marker.display()
            ),
        );
        let cfg = BatchConfig {
            isolate: true,
            isolate_binary: Some(flaky_script),
            retry: RetryPolicy::with_retries(2, 42),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.rows[0].verdict, Verdict::Safe, "{}", report.rows[0].detail);
        assert_eq!(report.rows[0].retries, 1);
        assert_eq!(report.rows[0].isolated_crashes, 1);
        assert_eq!(report.totals.retries, 1);
        assert!(report.quarantine.is_empty());
        assert_eq!(report.exit, 0);

        // A child that always crashes exhausts the policy and lands in
        // quarantine with the full attempt count.
        let dead_script = dir.join("fake-circ-dead.sh");
        write_script(&dead_script, "#!/bin/sh\nkill -KILL $$\n");
        let cfg = BatchConfig {
            isolate: true,
            isolate_binary: Some(dead_script),
            retry: RetryPolicy::with_retries(2, 42),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.rows[0].verdict, Verdict::InternalError);
        assert_eq!(report.rows[0].retries, 2, "2 retries = 3 attempts");
        assert_eq!(report.rows[0].isolated_crashes, 3);
        assert_eq!(report.quarantine.len(), 1);
    }

    #[test]
    fn row_json_round_trips() {
        let mut row = FileRow::new(
            "examples/fig1.nesl".into(),
            Verdict::Race,
            "race on x: 2 threads, 7 steps".into(),
        );
        row.time_s = 0.125;
        row.pipeline.outer_rounds = 4;
        row.pipeline.arg_nodes = 99;
        let parsed = parse_row_json(&render_row_json(&row)).unwrap();
        assert_eq!(parsed.file, row.file);
        assert_eq!(parsed.verdict, row.verdict);
        assert_eq!(parsed.detail, row.detail);
        assert_eq!(parsed.pipeline, row.pipeline);
        assert_eq!(render_row_json(&parsed), render_row_json(&row));
        assert!(parse_row_json("{\"file\":\"x\"}").is_err());
        assert!(parse_row_json("not json").is_err());
    }

    /// Zeroes every `"time...":<number>` value so wall clocks do not
    /// break byte comparisons (same scanner as tests/determinism.rs).
    fn strip_times(json: &str) -> String {
        let mut out = String::with_capacity(json.len());
        let mut rest = json;
        while let Some(ix) = rest.find("\"time") {
            let key_end = match rest[ix + 1..].find('"') {
                Some(e) => ix + 1 + e + 1,
                None => break,
            };
            let Some(colon) = rest[key_end..].find(':') else { break };
            let val_start = key_end + colon + 1;
            let val_len = rest[val_start..].find([',', '}']).unwrap_or(rest.len() - val_start);
            out.push_str(&rest[..val_start]);
            out.push('0');
            rest = &rest[val_start + val_len..];
        }
        out.push_str(rest);
        out
    }
}
