//! Corpus-level fan-out for the CIRC race checker.
//!
//! `circ batch <dir|manifest.json|file.nesl>` checks many NesL
//! programs in one invocation. This crate is the engine behind it:
//!
//! * [`collect_inputs`] turns a directory, a JSON manifest, or a
//!   single file into a sorted work list;
//! * [`run_batch`] fans the list out over a [`circ_par::Pool`], giving
//!   each file an equal slice of the global `--timeout-secs` /
//!   `--mem-limit-mb` budget (see `circ_governor::carve_timeout`) and
//!   an *isolated* entailment cache seeded from the shared warm start,
//!   so per-file statistics are independent of scheduling;
//! * the result is a [`BatchReport`] whose rows are in input order and
//!   whose JSON rendering is byte-identical at any `--jobs` setting
//!   once wall-time fields are stripped.
//!
//! # Cache persistence
//!
//! With a cache directory, [`run_batch`] warm-starts from
//! [`ABS_CACHE_FILE`] (atom-level entailment answers) and
//! [`SOLVER_CACHE_FILE`] (formula-level solver answers), and writes
//! both back — seed plus everything the run learned — on completion.
//! Anything wrong with a cache file (corruption, truncation, a format
//! or atom-encoding version bump) degrades to a logged cold start:
//! the loaders in `circ_core::persist` / `circ_smt::persist` validate
//! a checksum before any entry is trusted, so a damaged file can
//! never smuggle in a wrong memoized verdict.
//!
//! Determinism contract: every file is checked with an inner
//! `CircConfig { jobs: 1 }` against a frozen seed, learned entries are
//! merged *sequentially in input order* after the pool run, and cache
//! files render canonically (sorted lines). Same inputs + same seed
//! files ⇒ bit-identical report (minus wall times) and cache files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circ_core::{circ_with_caches, AbsCache, AbsSeed, CircConfig, CircOutcome, SolverPersist};
use circ_governor::{carve_mem_limit, carve_timeout};
use circ_ir::MtProgram;
use circ_par::Pool;
use circ_smt::{Formula, SatResult};
use circ_stats::{BatchTotals, PipelineStats};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File name of the entailment-cache snapshot inside `--cache-dir`.
pub const ABS_CACHE_FILE: &str = "abs.cache";
/// File name of the solver-cache snapshot inside `--cache-dir`.
pub const SOLVER_CACHE_FILE: &str = "solver.cache";

/// Configuration for one batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Run ω-CIRC (the default, matching `circ check`).
    pub omega: bool,
    /// Initial counter parameter for every file.
    pub initial_k: u32,
    /// Memoize entailment and solver queries. Disabling this also
    /// disables persistence (`cache_dir` is ignored).
    pub use_cache: bool,
    /// Worker threads for the *outer* file fan-out (0 = all cores).
    /// Each file runs its pipeline sequentially (`jobs = 1` inside),
    /// so the report is identical at any setting.
    pub jobs: usize,
    /// Global wall-clock budget, split evenly across files (and then
    /// across a file's race variables).
    pub timeout: Option<Duration>,
    /// Global accounted-memory budget in bytes, split the same way.
    pub mem_limit_bytes: Option<u64>,
    /// Directory holding [`ABS_CACHE_FILE`] / [`SOLVER_CACHE_FILE`];
    /// loaded on start (cold start if absent or damaged) and written
    /// back on completion.
    pub cache_dir: Option<PathBuf>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            omega: true,
            initial_k: 1,
            use_cache: true,
            jobs: 1,
            timeout: None,
            mem_limit_bytes: None,
            cache_dir: None,
        }
    }
}

/// Per-file verdict, ordered by how bad it is for the batch exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every race variable proved race-free.
    Safe,
    /// The analysis gave up within its own bounds.
    Inconclusive,
    /// A worker task died (fault injection / internal panic).
    InternalError,
    /// The file's resource slice ran out.
    BudgetExhausted,
    /// The file did not compile (or could not be read).
    CompileError,
    /// A genuine race with a concrete schedule.
    Race,
}

impl Verdict {
    /// Stable lowercase name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Safe => "safe",
            Verdict::Race => "race",
            Verdict::Inconclusive => "inconclusive",
            Verdict::InternalError => "internal-error",
            Verdict::BudgetExhausted => "budget-exhausted",
            Verdict::CompileError => "compile-error",
        }
    }

    /// The exit code this verdict would produce for a single file,
    /// mirroring `circ check` (0/1/2/3/65).
    pub fn exit_code(self) -> u8 {
        match self {
            Verdict::Safe => 0,
            Verdict::Race => 1,
            Verdict::Inconclusive | Verdict::InternalError => 2,
            Verdict::BudgetExhausted => 3,
            Verdict::CompileError => 65,
        }
    }

    /// Dominance rank for worst-wins aggregation: race > compile
    /// error > budget exhaustion > inconclusive > safe.
    fn rank(self) -> u8 {
        match self {
            Verdict::Safe => 0,
            Verdict::Inconclusive | Verdict::InternalError => 2,
            Verdict::BudgetExhausted => 3,
            Verdict::CompileError => 4,
            Verdict::Race => 5,
        }
    }
}

/// One checked file in the aggregate report.
#[derive(Debug, Clone)]
pub struct FileRow {
    /// The path as given on the work list.
    pub file: String,
    /// Worst verdict across the file's race variables.
    pub verdict: Verdict,
    /// Human detail: the racy variable and schedule size, the
    /// give-up reason, or the compile error.
    pub detail: String,
    /// Wall clock for the whole file (stripped by the determinism
    /// comparison; every wall-time key starts with `time`).
    pub time_s: f64,
    /// Summed pipeline counters across the file's race variables.
    pub pipeline: PipelineStats,
}

/// What the persistence layer did, for the report's `cache` block.
#[derive(Debug, Clone)]
pub struct CacheSummary {
    /// The cache directory.
    pub dir: String,
    /// Entailment entries loaded as the warm seed.
    pub abs_seeded: usize,
    /// Solver entries loaded as the warm seed.
    pub solver_seeded: usize,
    /// Entailment entries written back (seed plus learned).
    pub abs_saved: usize,
    /// Solver entries written back (seed plus learned, minus
    /// non-persistable `Unknown` answers).
    pub solver_saved: usize,
}

/// The aggregate result of [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One row per input file, in input order.
    pub rows: Vec<FileRow>,
    /// Roll-up counts and summed pipeline counters.
    pub totals: BatchTotals,
    /// Persistence summary when a cache directory was active.
    pub cache: Option<CacheSummary>,
    /// Worst-wins exit code: 1 (race) > 65 (compile error) > 3
    /// (budget) > 2 (inconclusive) > 0 (all safe).
    pub exit: u8,
    /// Non-fatal problems (damaged cache files, failed saves). Not
    /// part of the JSON report; the CLI prints them to stderr.
    pub warnings: Vec<String>,
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BatchReport {
    /// Renders the aggregate report as one JSON object. Key order is
    /// fixed and there is no `jobs` field, so two runs over the same
    /// inputs agree byte-for-byte once `"time*"` values are stripped.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"report\":\"circ-batch\",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\",\"exit\":{},\
                 \"time_s\":{:.6},\"pipeline\":{}}}",
                json_escape(&row.file),
                row.verdict.name(),
                json_escape(&row.detail),
                row.verdict.exit_code(),
                row.time_s,
                row.pipeline.to_json(),
            ));
        }
        s.push_str("],\"totals\":");
        s.push_str(&self.totals.to_json());
        s.push_str(",\"cache\":");
        match &self.cache {
            None => s.push_str("null"),
            Some(c) => s.push_str(&format!(
                "{{\"dir\":\"{}\",\"abs_seeded\":{},\"solver_seeded\":{},\
                 \"abs_saved\":{},\"solver_saved\":{}}}",
                json_escape(&c.dir),
                c.abs_seeded,
                c.solver_seeded,
                c.abs_saved,
                c.solver_saved,
            )),
        }
        s.push_str(&format!(",\"exit\":{}}}", self.exit));
        s
    }

    /// Renders a human-readable table plus the totals summary.
    pub fn render_table(&self) -> String {
        let width = self.rows.iter().map(|r| r.file.len()).max().unwrap_or(4).max(4);
        let mut s = String::new();
        for row in &self.rows {
            s.push_str(&format!(
                "{:<width$}  {:<16}  {:>8.2}s  {}\n",
                row.file,
                row.verdict.name().to_uppercase(),
                row.time_s,
                row.detail,
            ));
        }
        s.push_str(&self.totals.render_summary());
        if !s.ends_with('\n') {
            s.push('\n');
        }
        s
    }
}

/// Parses a batch manifest: a JSON array of path strings. Only the
/// escapes `\" \\ \/ \b \f \n \r \t \uXXXX` are recognized; anything
/// beyond the closing `]` other than whitespace is an error.
pub fn parse_manifest(text: &str) -> Result<Vec<String>, String> {
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    skip_ws(&mut chars);
    if chars.next() != Some('[') {
        return Err("manifest must be a JSON array of path strings".into());
    }
    let mut paths = Vec::new();
    let mut after_comma = false;
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some(']') if !after_comma => {
                chars.next();
                break;
            }
            Some('"') => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated string in manifest".into()),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('u') => {
                                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| format!("bad \\u escape `{hex}` in manifest"))?;
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or(format!("bad code point \\u{hex} in manifest"))?,
                                );
                            }
                            other => return Err(format!("bad escape {other:?} in manifest")),
                        },
                        Some(c) => s.push(c),
                    }
                }
                paths.push(s);
                skip_ws(&mut chars);
                match chars.next() {
                    Some(',') => after_comma = true,
                    Some(']') => break,
                    other => return Err(format!("expected `,` or `]` in manifest, got {other:?}")),
                }
            }
            other => return Err(format!("expected a path string in manifest, got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(junk) = chars.next() {
        return Err(format!("trailing content after manifest array: `{junk}`"));
    }
    Ok(paths)
}

/// Builds the batch work list from a directory (all `*.nesl` entries,
/// sorted by name), a `.json` manifest (paths resolved relative to the
/// manifest's directory), or a single `.nesl` file.
pub fn collect_inputs(path: &Path) -> Result<Vec<PathBuf>, String> {
    let meta = fs::metadata(path).map_err(|e| format!("cannot stat `{}`: {e}", path.display()))?;
    if meta.is_dir() {
        let entries =
            fs::read_dir(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "nesl") && p.is_file() {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("no .nesl files in `{}`", path.display()));
        }
        Ok(files)
    } else if path.extension().is_some_and(|e| e == "json") {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let rel = parse_manifest(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if rel.is_empty() {
            return Err(format!("{}: empty manifest", path.display()));
        }
        let base = path.parent().unwrap_or(Path::new("."));
        Ok(rel.iter().map(|r| base.join(r)).collect())
    } else if path.extension().is_some_and(|e| e == "nesl") {
        Ok(vec![path.to_path_buf()])
    } else {
        Err(format!("`{}` is not a directory, .nesl file, or .json manifest", path.display()))
    }
}

/// The warm-start state loaded from a cache directory.
pub struct LoadedCaches {
    /// Entailment-cache seed ([`ABS_CACHE_FILE`]), empty on cold start.
    pub abs_seed: AbsSeed,
    /// Solver-cache seed ([`SOLVER_CACHE_FILE`]), empty on cold start.
    pub solver_seed: Vec<(Formula, SatResult)>,
    /// One message per damaged file that was ignored.
    pub warnings: Vec<String>,
}

/// Loads both cache files, degrading each to an empty (cold) seed
/// with a warning if the file is missing the right header, fails its
/// checksum, or does not parse. A genuinely missing file is a silent
/// cold start.
pub fn load_caches(dir: &Path) -> LoadedCaches {
    let mut warnings = Vec::new();
    let abs_path = dir.join(ABS_CACHE_FILE);
    let abs_seed = match circ_core::persist::load_abs_cache(&abs_path) {
        Ok(Some(seed)) => seed,
        Ok(None) => AbsSeed::empty(),
        Err(e) => {
            warnings.push(format!("ignoring cache `{}`: {e}", abs_path.display()));
            AbsSeed::empty()
        }
    };
    let solver_path = dir.join(SOLVER_CACHE_FILE);
    let solver_seed = match circ_smt::persist::load_solver_cache(&solver_path) {
        Ok(Some(entries)) => entries,
        Ok(None) => Vec::new(),
        Err(e) => {
            warnings.push(format!("ignoring cache `{}`: {e}", solver_path.display()));
            Vec::new()
        }
    };
    LoadedCaches { abs_seed, solver_seed, warnings }
}

/// Writes both cache files (atomically, via a temp-file rename) and
/// returns `(abs_saved, solver_saved, warnings)`. The solver count
/// excludes `Unknown` answers, which are never persisted.
pub fn save_caches(
    dir: &Path,
    snapshot: &AbsSeed,
    persist: &SolverPersist,
) -> (usize, usize, Vec<String>) {
    let mut warnings = Vec::new();
    if let Err(e) = circ_core::persist::save_abs_cache(&dir.join(ABS_CACHE_FILE), snapshot) {
        warnings.push(format!("cannot save `{}`: {e}", dir.join(ABS_CACHE_FILE).display()));
    }
    if let Err(e) = circ_smt::persist::save_solver_cache(&dir.join(SOLVER_CACHE_FILE), persist) {
        warnings.push(format!("cannot save `{}`: {e}", dir.join(SOLVER_CACHE_FILE).display()));
    }
    let solver_saved =
        persist.merged_entries().iter().filter(|(_, r)| !matches!(r, SatResult::Unknown)).count();
    (snapshot.len(), solver_saved, warnings)
}

/// Checks one file: compile, then worst-wins over its race variables,
/// all against an isolated seeded cache so counters are independent
/// of which worker ran it. Returns the row plus the file's cache for
/// sequential post-run merging.
fn check_file(
    path: &Path,
    config: &BatchConfig,
    file_timeout: Option<Duration>,
    file_mem: Option<u64>,
    abs_seed: &AbsSeed,
    persist: &SolverPersist,
) -> (FileRow, AbsCache) {
    let start = Instant::now();
    let file = path.display().to_string();
    let row = |verdict: Verdict, detail: String, pipeline: PipelineStats, start: Instant| FileRow {
        file: file.clone(),
        verdict,
        detail,
        time_s: start.elapsed().as_secs_f64(),
        pipeline,
    };
    let src = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            let r =
                row(Verdict::CompileError, format!("cannot read: {e}"), Default::default(), start);
            return (r, AbsCache::disabled());
        }
    };
    let compiled = match circ_frontend::compile(&src) {
        Ok(c) => c,
        Err(e) => {
            let r = row(Verdict::CompileError, e.to_string(), Default::default(), start);
            return (r, AbsCache::disabled());
        }
    };
    if compiled.race_vars.is_empty() {
        let detail = "no `#race` directive — nothing to check".to_string();
        let r = row(Verdict::CompileError, detail, Default::default(), start);
        return (r, AbsCache::disabled());
    }
    let n_vars = compiled.race_vars.len();
    let cache = if config.use_cache { AbsCache::with_seed(abs_seed) } else { AbsCache::disabled() };
    let cfg = CircConfig {
        omega_mode: config.omega,
        initial_k: config.initial_k,
        use_cache: config.use_cache,
        jobs: 1,
        timeout: carve_timeout(file_timeout, n_vars),
        mem_limit_bytes: carve_mem_limit(file_mem, n_vars),
        ..CircConfig::default()
    };
    let mut verdict = Verdict::Safe;
    let mut detail = String::new();
    let mut pipeline = PipelineStats::default();
    for &var in &compiled.race_vars {
        let program = MtProgram::new(compiled.cfa.clone(), var);
        let vname = compiled.cfa.var_name(var).to_string();
        let outcome = circ_with_caches(&program, &cfg, &cache, persist);
        pipeline.add(&outcome.stats().pipeline);
        let (v, d) = match outcome {
            CircOutcome::Safe(_) => (Verdict::Safe, String::new()),
            CircOutcome::Unsafe(r) => (
                Verdict::Race,
                format!(
                    "race on {vname}: {} threads, {} steps",
                    r.cex.n_threads,
                    r.cex.steps.len()
                ),
            ),
            CircOutcome::Unknown(r) => {
                let v = if r.reason.is_budget_exhausted() {
                    Verdict::BudgetExhausted
                } else {
                    Verdict::Inconclusive
                };
                (v, format!("{vname}: {:?}", r.reason))
            }
        };
        if v.rank() > verdict.rank() {
            verdict = v;
            detail = d;
        }
    }
    if verdict == Verdict::Safe {
        detail = format!("{n_vars} race variable(s) race-free");
    }
    (row(verdict, detail, pipeline, start), cache)
}

/// Runs the whole batch: load caches, fan out, aggregate, save.
///
/// Rows come back in input order regardless of `jobs`; a worker panic
/// (possible only under fault injection) becomes an `internal-error`
/// row rather than killing the batch. Cache files are written even on
/// non-zero exits — a racy corpus still warms the cache.
pub fn run_batch(inputs: &[PathBuf], config: &BatchConfig) -> BatchReport {
    let cache_dir = if config.use_cache { config.cache_dir.as_deref() } else { None };
    let (abs_seed, solver_seed, mut warnings) = match cache_dir {
        Some(dir) => {
            let loaded = load_caches(dir);
            (loaded.abs_seed, loaded.solver_seed, loaded.warnings)
        }
        None => (AbsSeed::empty(), Vec::new(), Vec::new()),
    };
    let abs_seeded = abs_seed.len();
    let solver_seeded = solver_seed.len();
    // An active store even when the seed is empty: with a cache dir
    // we must *collect* what the run learns, not just replay it.
    let persist = if cache_dir.is_some() {
        SolverPersist::with_seed(solver_seed)
    } else {
        SolverPersist::inert()
    };

    let n = inputs.len();
    let file_timeout = carve_timeout(config.timeout, n);
    let file_mem = carve_mem_limit(config.mem_limit_bytes, n);
    let pool = Pool::new(config.jobs);
    let results = pool.try_map(inputs, |path| {
        check_file(path, config, file_timeout, file_mem, &abs_seed, &persist)
    });

    let mut rows = Vec::with_capacity(n);
    let mut caches = Vec::with_capacity(n);
    for (path, result) in inputs.iter().zip(results) {
        match result {
            Ok((row, cache)) => {
                rows.push(row);
                caches.push(cache);
            }
            Err(e) => {
                rows.push(FileRow {
                    file: path.display().to_string(),
                    verdict: Verdict::InternalError,
                    detail: e.message,
                    time_s: 0.0,
                    pipeline: PipelineStats::default(),
                });
                caches.push(AbsCache::disabled());
            }
        }
    }

    let mut totals = BatchTotals { files: rows.len() as u64, ..BatchTotals::default() };
    for row in &rows {
        match row.verdict {
            Verdict::Safe => totals.safe += 1,
            Verdict::Race => totals.races += 1,
            Verdict::Inconclusive | Verdict::InternalError => totals.inconclusive += 1,
            Verdict::BudgetExhausted => totals.budget_exhausted += 1,
            Verdict::CompileError => totals.compile_errors += 1,
        }
        totals.pipeline.add(&row.pipeline);
    }
    let exit = rows
        .iter()
        .map(|r| r.verdict)
        .max_by_key(|v| v.rank())
        .map(Verdict::exit_code)
        .unwrap_or(0);

    // Merge and save sequentially in input order — scheduling never
    // touches the persisted state, so warm files are reproducible.
    let cache = cache_dir.map(|dir| {
        let master = AbsCache::with_seed(&abs_seed);
        for file_cache in &caches {
            master.absorb(file_cache);
        }
        let snapshot = master.snapshot();
        let (abs_saved, solver_saved, save_warnings) = save_caches(dir, &snapshot, &persist);
        warnings.extend(save_warnings);
        CacheSummary {
            dir: dir.display().to_string(),
            abs_seeded,
            solver_seeded,
            abs_saved,
            solver_saved,
        }
    });

    BatchReport { rows, totals, cache, exit, warnings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("circ-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SAFE_SRC: &str = "global int x;\n#race x;\nthread t { loop { atomic { x = x + 1; } } }\n";
    const RACY_SRC: &str = "global int y;\n#race y;\nthread t { loop { y = y + 1; } }\n";

    #[test]
    fn manifest_parses_paths_and_escapes() {
        let paths =
            parse_manifest(" [ \"a.nesl\" , \"dir\\/b.nesl\", \"c\\u0041.nesl\" ] ").unwrap();
        assert_eq!(paths, vec!["a.nesl", "dir/b.nesl", "cA.nesl"]);
        assert_eq!(parse_manifest("[]").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn manifest_rejects_garbage() {
        for bad in ["", "{", "[\"a\"", "[\"a\",]", "[\"a\"] x", "[1]", "[\"\\q\"]"] {
            assert!(parse_manifest(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn collect_inputs_scans_sorted_and_reads_manifests() {
        let dir = tmp_root("collect");
        fs::write(dir.join("b.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("notes.txt"), "x").unwrap();
        let got = collect_inputs(&dir).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl"), dir.join("b.nesl")]);

        fs::write(dir.join("m.json"), "[\"a.nesl\", \"b.nesl\"]").unwrap();
        let got = collect_inputs(&dir.join("m.json")).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl"), dir.join("b.nesl")]);

        let got = collect_inputs(&dir.join("a.nesl")).unwrap();
        assert_eq!(got, vec![dir.join("a.nesl")]);

        assert!(collect_inputs(&dir.join("notes.txt")).is_err());
        assert!(collect_inputs(&dir.join("missing.nesl")).is_err());
        let empty = tmp_root("collect-empty");
        assert!(collect_inputs(&empty).is_err());
    }

    #[test]
    fn batch_worst_wins_and_orders_rows() {
        let dir = tmp_root("worst");
        fs::write(dir.join("a_safe.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b_racy.nesl"), RACY_SRC).unwrap();
        fs::write(dir.join("c_broken.nesl"), "global int").unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let report = run_batch(&inputs, &BatchConfig::default());
        assert_eq!(report.exit, 1, "race dominates compile error");
        let verdicts: Vec<_> = report.rows.iter().map(|r| r.verdict).collect();
        assert_eq!(verdicts, vec![Verdict::Safe, Verdict::Race, Verdict::CompileError]);
        assert_eq!(report.totals.files, 3);
        assert_eq!(report.totals.safe, 1);
        assert_eq!(report.totals.races, 1);
        assert_eq!(report.totals.compile_errors, 1);
        assert!(report.cache.is_none());
        let json = report.to_json();
        assert!(json.contains("\"verdict\":\"race\""), "{json}");
        assert!(!json.contains("\"jobs\""), "report must not mention jobs: {json}");
    }

    #[test]
    fn batch_compile_error_dominates_inconclusive() {
        let dir = tmp_root("dominance");
        fs::write(dir.join("broken.nesl"), "thread {").unwrap();
        fs::write(dir.join("safe.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let report = run_batch(&inputs, &BatchConfig::default());
        assert_eq!(report.exit, 65);
    }

    #[test]
    fn warm_run_hits_where_cold_missed() {
        let dir = tmp_root("warm");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig { cache_dir: Some(cache_dir.clone()), ..BatchConfig::default() };

        let cold = run_batch(&inputs, &cfg);
        assert_eq!(cold.exit, 0);
        let cold_cache = cold.cache.as_ref().unwrap();
        assert_eq!(cold_cache.abs_seeded, 0);
        assert!(cold_cache.abs_saved > 0, "a safe proof must learn entailments");
        assert!(cache_dir.join(ABS_CACHE_FILE).is_file());
        assert!(cache_dir.join(SOLVER_CACHE_FILE).is_file());

        let warm = run_batch(&inputs, &cfg);
        assert_eq!(warm.exit, 0);
        let warm_cache = warm.cache.as_ref().unwrap();
        assert_eq!(warm_cache.abs_seeded, cold_cache.abs_saved);
        assert!(
            warm.totals.pipeline.abs.cache_misses < cold.totals.pipeline.abs.cache_misses,
            "warm run must miss strictly less: warm {} vs cold {}",
            warm.totals.pipeline.abs.cache_misses,
            cold.totals.pipeline.abs.cache_misses
        );
        // Identical verdicts, and the cache reaches a fixpoint.
        assert_eq!(warm.rows[0].verdict, cold.rows[0].verdict);
        assert_eq!(warm_cache.abs_saved, cold_cache.abs_saved);
    }

    #[test]
    fn damaged_cache_degrades_to_cold_start() {
        let dir = tmp_root("damaged");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig { cache_dir: Some(cache_dir.clone()), ..BatchConfig::default() };
        let cold = run_batch(&inputs, &cfg);

        // Corrupt one byte in the body of the saved entailment cache.
        let path = cache_dir.join(ABS_CACHE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let ix = bytes.len() - 2;
        bytes[ix] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let damaged = run_batch(&inputs, &cfg);
        assert_eq!(damaged.exit, 0);
        assert!(
            damaged.warnings.iter().any(|w| w.contains("ignoring cache")),
            "expected a degradation warning, got {:?}",
            damaged.warnings
        );
        let summary = damaged.cache.as_ref().unwrap();
        assert_eq!(summary.abs_seeded, 0, "damaged file must not seed anything");
        assert_eq!(damaged.rows[0].verdict, cold.rows[0].verdict);
        // The save path rewrote a valid file; the next run is warm again.
        let healed = run_batch(&inputs, &cfg);
        assert!(healed.warnings.is_empty());
        assert_eq!(healed.cache.as_ref().unwrap().abs_seeded, summary.abs_saved);
    }

    #[test]
    fn no_cache_ignores_cache_dir() {
        let dir = tmp_root("nocache");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        let cache_dir = dir.join("cache");
        let inputs = collect_inputs(&dir).unwrap();
        let cfg = BatchConfig {
            use_cache: false,
            cache_dir: Some(cache_dir.clone()),
            ..BatchConfig::default()
        };
        let report = run_batch(&inputs, &cfg);
        assert_eq!(report.exit, 0);
        assert!(report.cache.is_none());
        assert!(!cache_dir.exists(), "no cache files may be written with --no-cache");
    }

    #[test]
    fn report_is_jobs_invariant_modulo_wall_times() {
        let dir = tmp_root("jobs");
        fs::write(dir.join("a.nesl"), SAFE_SRC).unwrap();
        fs::write(dir.join("b.nesl"), RACY_SRC).unwrap();
        fs::write(dir.join("c.nesl"), SAFE_SRC).unwrap();
        let inputs = collect_inputs(&dir).unwrap();
        let seq = run_batch(&inputs, &BatchConfig { jobs: 1, ..BatchConfig::default() });
        let par = run_batch(&inputs, &BatchConfig { jobs: 4, ..BatchConfig::default() });
        assert_eq!(strip_times(&seq.to_json()), strip_times(&par.to_json()));
        assert_eq!(seq.exit, par.exit);
    }

    /// Zeroes every `"time...":<number>` value so wall clocks do not
    /// break byte comparisons (same scanner as tests/determinism.rs).
    fn strip_times(json: &str) -> String {
        let mut out = String::with_capacity(json.len());
        let mut rest = json;
        while let Some(ix) = rest.find("\"time") {
            let key_end = match rest[ix + 1..].find('"') {
                Some(e) => ix + 1 + e + 1,
                None => break,
            };
            let Some(colon) = rest[key_end..].find(':') else { break };
            let val_start = key_end + colon + 1;
            let val_len = rest[val_start..].find([',', '}']).unwrap_or(rest.len() - val_start);
            out.push_str(&rest[..val_start]);
            out.push('0');
            rest = &rest[val_start + val_len..];
        }
        out.push_str(rest);
        out
    }
}
