//! The crash-safety journal behind `circ batch --journal / --resume`.
//!
//! The journal is an append-only JSONL file: one self-describing line
//! per *completed* file, written with a single `write_all` so a crash
//! can tear at most the final line. Entries are keyed by a content
//! digest (FNV-1a over the file's bytes, the same hash the cache
//! snapshots use for their checksums), not by path: a resumed run
//! replays a row whenever an input's *bytes* match a journaled check,
//! so renames are free and edited files are transparently re-checked.
//!
//! Damage tolerance mirrors the cache loaders: a line that does not
//! parse — torn by a crash mid-write, truncated by a full disk,
//! hand-mangled — degrades to a warning and a re-check of whatever
//! file it described. A corrupt journal can cost time, never a wrong
//! verdict, because replay only ever substitutes a row that a real
//! check produced for identical input bytes.
//!
//! Rows drained by a graceful shutdown (`cancelled`) are *not*
//! journaled: their absence is what makes `--resume` re-check them.

use crate::mjson::{self, Value};
use crate::{FileRow, Verdict};
use circ_stats::{AbsCounters, PhaseTimes, PipelineStats, SolverCounters};
use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Format tag carried by every line; bump [`JOURNAL_VERSION`] on any
/// incompatible change so old journals degrade to re-checks instead of
/// misparsing.
pub const JOURNAL_TAG: &str = "circ-batch";
/// Current journal line format version. v4 added the storage-layer
/// counters (`store_recoveries`/`flush_errors`) to the embedded
/// pipeline block; v3 added the `stage` attribution field and the
/// triage pipeline counters; v2 added the `config` fingerprint field.
/// Older lines degrade to re-checks.
pub const JOURNAL_VERSION: u64 = 4;

/// Content digest of a file's bytes (FNV-1a 64, shared with the cache
/// snapshot checksums).
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    circ_smt::persist::fnv1a64(bytes)
}

/// Fingerprint of the batch configuration knobs that change what a
/// check *means*: a journaled row is only replayable when the resumed
/// run would have produced it. Identical input bytes checked under a
/// different `--k`, `--omega`, cache policy, or budget are a different
/// check, so `--resume` must re-run them, not replay them.
pub fn config_fingerprint(
    omega: bool,
    initial_k: u32,
    use_cache: bool,
    timeout: Option<Duration>,
    mem_limit_bytes: Option<u64>,
    triage: bool,
) -> u64 {
    let timeout_ms = timeout.map(|t| t.as_millis().to_string()).unwrap_or_else(|| "-".into());
    let mem = mem_limit_bytes.map(|m| m.to_string()).unwrap_or_else(|| "-".into());
    let text = format!(
        "batch-config omega={omega} k={initial_k} cache={use_cache} \
         timeout_ms={timeout_ms} mem_bytes={mem} triage={triage}"
    );
    circ_smt::persist::fnv1a64(text.as_bytes())
}

/// One replayable journal entry: the digest of the input bytes it was
/// computed from, the fingerprint of the configuration it was checked
/// under, plus the completed row.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// FNV-1a digest of the checked file's bytes.
    pub digest: u64,
    /// [`config_fingerprint`] of the run that produced the row.
    pub config: u64,
    /// The completed row (verdict, detail, wall time, counters).
    pub row: FileRow,
}

/// Renders one journal line (with trailing newline) for a completed
/// row. The row's wire fields round-trip exactly: integers verbatim,
/// floats through the same `{:.6}` formatting the report uses.
pub fn render_line(row: &FileRow, digest: u64, config: u64) -> String {
    format!(
        "{{\"journal\":\"{JOURNAL_TAG}\",\"v\":{JOURNAL_VERSION},\"digest\":\"{digest:016x}\",\
         \"config\":\"{config:016x}\",\
         \"file\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\",\"stage\":\"{}\",\"retries\":{},\
         \"time_s\":{:.6},\"pipeline\":{}}}\n",
        crate::json_escape(&row.file),
        row.verdict.name(),
        crate::json_escape(&row.detail),
        crate::json_escape(&row.stage),
        row.retries,
        row.time_s,
        row.pipeline.to_json(),
    )
}

/// Parses one journal line back into an entry. Any structural problem
/// is an `Err` describing it; the caller degrades to a re-check.
pub fn parse_line(line: &str) -> Result<JournalEntry, String> {
    let v = mjson::parse(line)?;
    let str_field = |key: &str| -> Result<&str, String> {
        v.get(key).and_then(Value::as_str).ok_or(format!("missing string `{key}`"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key).and_then(Value::as_u64).ok_or(format!("missing counter `{key}`"))
    };
    if str_field("journal")? != JOURNAL_TAG {
        return Err("not a circ-batch journal line".into());
    }
    if u64_field("v")? != JOURNAL_VERSION {
        return Err(format!("unsupported journal version (want {JOURNAL_VERSION})"));
    }
    let digest = u64::from_str_radix(str_field("digest")?, 16)
        .map_err(|_| "bad digest field".to_string())?;
    let config = u64::from_str_radix(str_field("config")?, 16)
        .map_err(|_| "bad config field".to_string())?;
    let verdict_name = str_field("verdict")?;
    let verdict =
        Verdict::from_name(verdict_name).ok_or(format!("unknown verdict `{verdict_name}`"))?;
    let time_s = v
        .get("time_s")
        .and_then(Value::as_f64)
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or("missing or unusable `time_s`")?;
    let pipeline = pipeline_from_json(v.get("pipeline").ok_or("missing `pipeline`")?)?;
    Ok(JournalEntry {
        digest,
        config,
        row: FileRow {
            file: str_field("file")?.to_string(),
            verdict,
            detail: str_field("detail")?.to_string(),
            stage: str_field("stage")?.to_string(),
            time_s,
            pipeline,
            retries: u64_field("retries")?,
            isolated_crashes: 0,
            resumed: false,
            cancelled: false,
        },
    })
}

/// Rebuilds [`PipelineStats`] from its `to_json` rendering. The two
/// derived `*_hit_rate` keys are recomputed, not parsed; durations
/// round-trip through the same `{:.6}` seconds formatting, so a
/// parse→render cycle is byte-stable.
pub fn pipeline_from_json(v: &Value) -> Result<PipelineStats, String> {
    let u = |key: &str| -> Result<u64, String> {
        v.get(key).and_then(Value::as_u64).ok_or(format!("missing pipeline counter `{key}`"))
    };
    let d = |key: &str| -> Result<Duration, String> {
        let secs =
            v.get(key).and_then(Value::as_f64).ok_or(format!("missing pipeline span `{key}`"))?;
        Duration::try_from_secs_f64(secs).map_err(|_| format!("unusable span `{key}`"))
    };
    Ok(PipelineStats {
        solver: SolverCounters {
            queries: u("solver_queries")?,
            cache_hits: u("solver_cache_hits")?,
            cache_misses: u("solver_cache_misses")?,
            theory_rounds: u("theory_rounds")?,
        },
        abs: AbsCounters {
            queries: u("abs_queries")?,
            cache_hits: u("abs_cache_hits")?,
            cache_misses: u("abs_cache_misses")?,
        },
        outer_rounds: u("outer_rounds")?,
        reach_runs: u("reach_runs")?,
        arg_nodes: u("arg_nodes")?,
        sim_checks: u("sim_checks")?,
        sim_edge_pairs: u("sim_edge_pairs")?,
        collapse_runs: u("collapse_runs")?,
        collapse_iterations: u("collapse_iterations")?,
        refine_rounds: u("refine_rounds")?,
        k_increments: u("k_increments")?,
        preds_seeded: u("preds_seeded")?,
        refine_rounds_saved: u("refine_rounds_saved")?,
        mem_charged_bytes: u("mem_charged_bytes")?,
        budget_polls: u("budget_polls")?,
        faults_injected: u("faults_injected")?,
        triage_stage0_decided: u("triage_stage0_decided")?,
        triage_stage1_decided: u("triage_stage1_decided")?,
        triage_fallthrough: u("triage_fallthrough")?,
        store_recoveries: u("store_recoveries")?,
        flush_errors: u("flush_errors")?,
        phases: PhaseTimes {
            reach: d("time_reach_s")?,
            sim: d("time_sim_s")?,
            collapse: d("time_collapse_s")?,
            refine: d("time_refine_s")?,
            omega: d("time_omega_s")?,
        },
    })
}

/// An open journal the supervisor appends completed rows to.
///
/// Each entry is one `write_all` of one line followed by a flush, so
/// concurrent workers interleave *lines*, never bytes, and a crash
/// tears at most the final line — which the loader then degrades to a
/// re-check.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<fs::File>,
    io: circ_store::Store,
}

impl Journal {
    /// Opens a fresh journal, truncating any previous run's file (a
    /// non-resume run must not leave stale entries for `--resume` to
    /// trust later).
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        Journal::create_in(&circ_store::Store::real(), path)
    }

    /// [`Journal::create`] through an explicit storage handle, so the
    /// torture harness can fail appends deterministically.
    pub fn create_in(io: &circ_store::Store, path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        Ok(Journal { file: Mutex::new(fs::File::create(path)?), io: io.clone() })
    }

    /// Opens an existing journal for appending (the `--resume` path);
    /// creates it if missing.
    pub fn open_append(path: &Path) -> std::io::Result<Journal> {
        Journal::open_append_in(&circ_store::Store::real(), path)
    }

    /// [`Journal::open_append`] through an explicit storage handle.
    pub fn open_append_in(io: &circ_store::Store, path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        Ok(Journal {
            file: Mutex::new(fs::OpenOptions::new().create(true).append(true).open(path)?),
            io: io.clone(),
        })
    }

    /// Appends one completed row keyed by `digest`, stamped with the
    /// run's configuration fingerprint. One write-and-flush per line
    /// through the storage layer: concurrent workers interleave
    /// lines, never bytes, and an injected append fault tears at most
    /// this one line (which a later `--resume` degrades to a
    /// re-check).
    pub fn append(&self, row: &FileRow, digest: u64, config: u64) -> std::io::Result<()> {
        let line = render_line(row, digest, config);
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        self.io.append_line(&mut f, &line)
    }
}

/// Loads a journal for `--resume`: a map from content digest to the
/// *last* entry for that digest, plus one warning per line that could
/// not be used. A missing file is an empty (but noted) journal; every
/// unusable line means only that its file gets re-checked.
///
/// Rows recorded under a configuration fingerprint other than
/// `expected_config` are degraded to warnings, not replayed: the same
/// bytes checked under a different `--k`/`--omega`/budget are a
/// different check, and resuming must re-run them.
pub fn load(path: &Path, expected_config: u64) -> (HashMap<u64, JournalEntry>, Vec<String>) {
    let mut entries = HashMap::new();
    let mut warnings = Vec::new();
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            warnings.push(format!(
                "journal `{}`: cannot read ({e}); resuming from nothing",
                path.display()
            ));
            return (entries, warnings);
        }
    };
    let text = String::from_utf8_lossy(&bytes);
    for (ix, line) in text.split('\n').enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(entry) if entry.config != expected_config => {
                // A mismatched row must also shadow any earlier match
                // for the same digest: the *last* check of those bytes
                // was under a different config, so trust nothing.
                entries.remove(&entry.digest);
                warnings.push(format!(
                    "journal `{}` line {}: row was checked under a different configuration; \
                     that file will be re-checked",
                    path.display(),
                    ix + 1
                ));
            }
            Ok(entry) => {
                entries.insert(entry.digest, entry);
            }
            Err(e) => warnings.push(format!(
                "journal `{}` line {}: {e}; that file will be re-checked",
                path.display(),
                ix + 1
            )),
        }
    }
    (entries, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> FileRow {
        FileRow {
            file: "dir/a \"quoted\".nesl".into(),
            verdict: Verdict::Race,
            detail: "race on x: 2 threads, 7 steps".into(),
            stage: "sched+circ".into(),
            time_s: 0.037125,
            pipeline: PipelineStats {
                outer_rounds: 3,
                arg_nodes: 1234,
                mem_charged_bytes: u64::MAX,
                phases: PhaseTimes { reach: Duration::from_micros(1500), ..Default::default() },
                solver: SolverCounters {
                    queries: 9,
                    cache_hits: 4,
                    cache_misses: 5,
                    theory_rounds: 2,
                },
                abs: AbsCounters { queries: 11, cache_hits: 6, cache_misses: 5 },
                ..Default::default()
            },
            retries: 2,
            isolated_crashes: 0,
            resumed: false,
            cancelled: false,
        }
    }

    const CFG: u64 = 0x0123_4567_89ab_cdef;

    #[test]
    fn lines_round_trip_byte_stably() {
        let row = sample_row();
        let line = render_line(&row, 0xdead_beef_0042_0007, CFG);
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1, "one line per entry");
        let entry = parse_line(line.trim_end()).unwrap();
        assert_eq!(entry.digest, 0xdead_beef_0042_0007);
        assert_eq!(entry.config, CFG);
        assert_eq!(entry.row.file, row.file);
        assert_eq!(entry.row.verdict, row.verdict);
        assert_eq!(entry.row.detail, row.detail);
        assert_eq!(entry.row.stage, "sched+circ");
        assert_eq!(entry.row.retries, 2);
        assert_eq!(entry.row.pipeline, row.pipeline, "counters must round-trip exactly");
        // Render-of-parse is byte-identical: the property the resumed
        // report's byte-stability rests on.
        assert_eq!(render_line(&entry.row, entry.digest, entry.config), line);
    }

    #[test]
    fn loader_keeps_last_entry_and_degrades_damage() {
        let dir = std::env::temp_dir().join(format!("circ-journal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");

        let j = Journal::create(&path).unwrap();
        let mut row = sample_row();
        j.append(&row, 1, CFG).unwrap();
        row.verdict = Verdict::Safe;
        row.detail = "1 race variable(s) race-free".into();
        j.append(&row, 1, CFG).unwrap(); // same digest: last wins
        j.append(&row, 2, CFG).unwrap();
        drop(j);

        // Tear the tail: simulate a crash mid-append.
        let mut bytes = fs::read(&path).unwrap();
        let keep = bytes.len() - 40;
        bytes.truncate(keep);
        bytes.extend_from_slice(b"\n{\"not\":\"a journal line\"}\n");
        fs::write(&path, &bytes).unwrap();

        let (entries, warnings) = load(&path, CFG);
        assert_eq!(entries.len(), 1, "torn digest-2 line must drop out");
        assert_eq!(entries[&1].row.verdict, Verdict::Safe, "last entry for digest 1 wins");
        assert_eq!(warnings.len(), 2, "torn line + wrong-tag line: {warnings:?}");
        assert!(warnings.iter().all(|w| w.contains("re-checked")), "{warnings:?}");

        let (none, warnings) = load(&dir.join("missing.journal"), CFG);
        assert!(none.is_empty());
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn config_mismatch_degrades_to_recheck() {
        let dir = std::env::temp_dir().join(format!("circ-journal-cfg-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");

        let j = Journal::create(&path).unwrap();
        let row = sample_row();
        j.append(&row, 1, CFG).unwrap();
        j.append(&row, 2, CFG ^ 1).unwrap(); // foreign config
        j.append(&row, 3, CFG).unwrap();
        j.append(&row, 3, CFG ^ 1).unwrap(); // last check of digest 3 was foreign
        drop(j);

        let (entries, warnings) = load(&path, CFG);
        assert!(entries.contains_key(&1));
        assert!(!entries.contains_key(&2), "foreign-config row must not replay");
        assert!(!entries.contains_key(&3), "a later foreign check shadows the earlier match");
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings.iter().all(|w| w.contains("re-checked")), "{warnings:?}");

        // Resuming under the *other* config sees the mirror image.
        let (entries, _) = load(&path, CFG ^ 1);
        assert!(!entries.contains_key(&1));
        assert!(entries.contains_key(&2));
        assert!(entries.contains_key(&3));
    }

    #[test]
    fn config_fingerprint_separates_knobs() {
        let base = config_fingerprint(false, 1, true, None, None, false);
        assert_eq!(base, config_fingerprint(false, 1, true, None, None, false), "deterministic");
        assert_ne!(base, config_fingerprint(true, 1, true, None, None, false), "omega");
        assert_ne!(base, config_fingerprint(false, 2, true, None, None, false), "initial k");
        assert_ne!(base, config_fingerprint(false, 1, false, None, None, false), "cache policy");
        assert_ne!(
            base,
            config_fingerprint(false, 1, true, Some(Duration::from_secs(5)), None, false),
            "timeout"
        );
        assert_ne!(
            base,
            config_fingerprint(false, 1, true, None, Some(1 << 20), false),
            "mem limit"
        );
        assert_ne!(base, config_fingerprint(false, 1, true, None, None, true), "triage");
    }

    #[test]
    fn version_skew_is_rejected_not_misread() {
        let line = render_line(&sample_row(), 7, CFG).replace("\"v\":4", "\"v\":5");
        let err = parse_line(line.trim_end()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }
}
