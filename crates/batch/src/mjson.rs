//! A minimal JSON reader for the two wire formats the supervisor has
//! to parse back: journal lines and isolated-child row objects. Both
//! are produced by this workspace's own renderers, but both cross a
//! crash boundary (a half-written journal line, a child killed mid
//! print), so the parser must reject damage cleanly rather than
//! trust its input.
//!
//! Vendored-by-necessity: the build environment has no registry
//! access, so `serde_json` is not an option. The subset is full JSON
//! minus `\u` surrogate pairs (the workspace's `json_escape` never
//! emits them for the BMP strings we round-trip). Numbers keep their
//! raw text so integer counters round-trip losslessly and re-rendered
//! floats stay byte-identical.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers keep their source text (see module
/// docs); object keys collapse to last-wins, which is fine for wire
/// formats we also produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an
/// error (a truncated or concatenated line must not half-parse).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting guard; our wire formats nest 3 deep, hostile input can try
/// harder.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else if matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !saw_digit || raw.parse::<f64>().is_err() {
            return Err(format!("bad number `{raw}` at byte {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            self.pos += 4;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or(format!("unsupported code point \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(c) if c < 0x20 => return Err("raw control character in string".into()),
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes verbatim.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_we_emit() {
        let v = parse(
            "{\"file\":\"a\\\"b.nesl\",\"verdict\":\"safe\",\"exit\":0,\
             \"time_s\":1.500000,\"pipeline\":{\"arg_nodes\":12},\"list\":[1,-2,3.5],\
             \"flag\":true,\"nothing\":null}",
        )
        .unwrap();
        assert_eq!(v.get("file").and_then(Value::as_str), Some("a\"b.nesl"));
        assert_eq!(v.get("exit").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("time_s").and_then(Value::as_f64), Some(1.5));
        assert_eq!(
            v.get("pipeline").and_then(|p| p.get("arg_nodes")).and_then(Value::as_u64),
            Some(12)
        );
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
        let Value::Arr(items) = v.get("list").unwrap() else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_f64(), Some(-2.0));
        assert_eq!(items[1].as_u64(), None, "negative numbers are not u64s");
    }

    #[test]
    fn large_counters_round_trip_losslessly() {
        // f64 would corrupt this; raw-text numbers must not.
        let v = parse("{\"n\":18446744073709551615}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn rejects_damage() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{\"a\":--1}",
            "nul",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\u12\"}",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted damaged input {bad:?}");
        }
        // Deep nesting is rejected, not stack-overflowed.
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse("\"tab\\there\\nnl \\u0041 slash\\/ \\\\ \"").unwrap();
        assert_eq!(v.as_str(), Some("tab\there\nnl A slash/ \\ "));
    }
}
