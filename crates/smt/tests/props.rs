//! Property-based validation of the decision procedures against
//! brute-force evaluation on a finite grid of integer points.
//!
//! The solver decides satisfiability over **all** integers, so the
//! grid gives one-sided oracles:
//!
//! * a satisfying grid point forces the solver to answer `Sat`;
//! * every model the solver returns must actually satisfy the input;
//! * everything entailed/projected must hold at every satisfying grid
//!   point.

use circ_smt::{lia, Atom, Formula, LinExpr, SVar, SatResult, Solver};
use proptest::prelude::*;
use std::collections::BTreeSet;

const NVARS: u32 = 3;
const GRID: std::ops::RangeInclusive<i64> = -4..=4;

fn lin_strategy() -> impl Strategy<Value = LinExpr> {
    (
        proptest::collection::vec(-3i64..=3, NVARS as usize),
        -5i64..=5,
    )
        .prop_map(|(coeffs, c)| {
            let mut e = LinExpr::constant(c);
            for (i, a) in coeffs.into_iter().enumerate() {
                e.add_term(SVar(i as u32), a);
            }
            e
        })
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (lin_strategy(), 0u8..3).prop_map(|(e, rel)| match rel {
        0 => Atom::eq(e),
        1 => Atom::le(e),
        _ => Atom::ne(e),
    })
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = atom_strategy().prop_map(Formula::atom);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::not),
        ]
    })
}

/// Every grid assignment over `NVARS` variables.
fn grid_points() -> impl Iterator<Item = [i64; 3]> {
    GRID.flat_map(|a| GRID.flat_map(move |b| GRID.map(move |c| [a, b, c])))
}

fn eval_at(point: &[i64; 3]) -> impl Fn(SVar) -> i64 + '_ {
    move |v: SVar| point.get(v.0 as usize).copied().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn solver_agrees_with_grid(f in formula_strategy()) {
        let grid_sat = grid_points().any(|p| f.eval(&eval_at(&p)));
        let mut solver = Solver::new();
        match solver.check(&f) {
            SatResult::Sat(model) => {
                // the returned model must satisfy the formula
                prop_assert!(f.eval(&|v| model.get(&v).copied().unwrap_or(0)));
            }
            SatResult::Unsat => {
                prop_assert!(!grid_sat, "solver said Unsat but the grid satisfies {f}");
            }
        }
    }

    #[test]
    fn conj_solver_agrees_with_grid(atoms in proptest::collection::vec(atom_strategy(), 1..6)) {
        let grid_sat = grid_points().any(|p| atoms.iter().all(|a| a.eval(&eval_at(&p))));
        match lia::check_conj(&atoms) {
            lia::ConjResult::Sat(model) => {
                let assign = |v: SVar| model.get(&v).copied().unwrap_or(0);
                for a in &atoms {
                    prop_assert!(a.eval(&assign), "model violates {a}");
                }
            }
            lia::ConjResult::Unsat => {
                prop_assert!(!grid_sat, "conjunction satisfiable on the grid: {atoms:?}");
            }
        }
    }

    #[test]
    fn unsat_core_is_unsat_subset(atoms in proptest::collection::vec(atom_strategy(), 1..6)) {
        if lia::is_sat_conj(&atoms) {
            return Ok(());
        }
        let core = lia::unsat_core(&atoms);
        prop_assert!(!core.is_empty());
        prop_assert!(core.iter().all(|&i| i < atoms.len()));
        let subset: Vec<Atom> = core.iter().map(|&i| atoms[i].clone()).collect();
        prop_assert!(!lia::is_sat_conj(&subset), "core must stay unsat");
    }

    #[test]
    fn projection_is_implied(
        atoms in proptest::collection::vec(atom_strategy(), 1..5),
        elim_mask in 0u32..(1 << NVARS),
    ) {
        let elim: BTreeSet<SVar> =
            (0..NVARS).filter(|i| elim_mask & (1 << i) != 0).map(SVar).collect();
        let projected = lia::project(&atoms, &elim);
        // soundness: every grid model of the input satisfies the
        // projection (∃-elimination only weakens)
        for p in grid_points() {
            let assign = eval_at(&p);
            if atoms.iter().all(|a| a.eval(&assign)) {
                for q in &projected {
                    prop_assert!(q.eval(&assign), "projection {q} broken at {p:?}");
                }
            }
        }
        // the projection must not mention eliminated variables
        for q in &projected {
            for v in q.vars() {
                prop_assert!(!elim.contains(&v), "{q} still mentions {v}");
            }
        }
    }

    #[test]
    fn atom_negation_is_complement(a in atom_strategy(), p in proptest::array::uniform3(-6i64..=6)) {
        let assign = eval_at(&p);
        prop_assert_eq!(a.eval(&assign), !a.negate().eval(&assign));
    }

    #[test]
    fn entailment_respects_grid(
        premises in proptest::collection::vec(atom_strategy(), 1..4),
        goal in atom_strategy(),
    ) {
        if lia::entails(&premises, &goal) {
            for p in grid_points() {
                let assign = eval_at(&p);
                if premises.iter().all(|a| a.eval(&assign)) {
                    prop_assert!(goal.eval(&assign), "entailment broken at {p:?}");
                }
            }
        }
    }

    #[test]
    fn nnf_preserves_semantics(f in formula_strategy(), p in proptest::array::uniform3(-4i64..=4)) {
        let assign = eval_at(&p);
        prop_assert_eq!(f.eval(&assign), f.to_nnf().eval(&assign));
    }
}
