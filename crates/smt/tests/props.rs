//! Randomized validation of the decision procedures against
//! brute-force evaluation on a finite grid of integer points.
//!
//! The solver decides satisfiability over **all** integers, so the
//! grid gives one-sided oracles:
//!
//! * a satisfying grid point forces the solver to answer `Sat`;
//! * every model the solver returns must actually satisfy the input;
//! * everything entailed/projected must hold at every satisfying grid
//!   point.
//!
//! Inputs are drawn from a deterministic seeded generator so failures
//! reproduce exactly; each assertion message carries the case index.

use circ_smt::{lia, Atom, Formula, LinExpr, SVar, SatResult, Solver};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

const NVARS: u32 = 3;
const GRID: std::ops::RangeInclusive<i64> = -4..=4;
const CASES: usize = 64;

fn gen_lin(rng: &mut StdRng) -> LinExpr {
    let mut e = LinExpr::constant(rng.gen_range(-5i64..=5));
    for i in 0..NVARS {
        e.add_term(SVar(i), rng.gen_range(-3i64..=3));
    }
    e
}

fn gen_atom(rng: &mut StdRng) -> Atom {
    let e = gen_lin(rng);
    match rng.gen_range(0u32..3) {
        0 => Atom::eq(e),
        1 => Atom::le(e),
        _ => Atom::ne(e),
    }
}

fn gen_atoms(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<Atom> {
    (0..rng.gen_range(lo..hi)).map(|_| gen_atom(rng)).collect()
}

/// Random formula of bounded depth (matches the old strategy's shape:
/// atoms at the leaves, and/or/not above them).
fn gen_formula(rng: &mut StdRng, depth: u32) -> Formula {
    if depth == 0 || rng.gen_range(0u32..4) == 0 {
        return Formula::atom(gen_atom(rng));
    }
    match rng.gen_range(0u32..3) {
        0 => gen_formula(rng, depth - 1).and(gen_formula(rng, depth - 1)),
        1 => gen_formula(rng, depth - 1).or(gen_formula(rng, depth - 1)),
        _ => Formula::not(gen_formula(rng, depth - 1)),
    }
}

/// Every grid assignment over `NVARS` variables.
fn grid_points() -> impl Iterator<Item = [i64; 3]> {
    GRID.flat_map(|a| GRID.flat_map(move |b| GRID.map(move |c| [a, b, c])))
}

fn eval_at(point: &[i64; 3]) -> impl Fn(SVar) -> i64 + '_ {
    move |v: SVar| point.get(v.0 as usize).copied().unwrap_or(0)
}

fn gen_point(rng: &mut StdRng, span: i64) -> [i64; 3] {
    [rng.gen_range(-span..=span), rng.gen_range(-span..=span), rng.gen_range(-span..=span)]
}

#[test]
fn solver_agrees_with_grid() {
    let mut rng = StdRng::seed_from_u64(0x5317_0001);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 3);
        let grid_sat = grid_points().any(|p| f.eval(&eval_at(&p)));
        let mut solver = Solver::new();
        match solver.check(&f) {
            SatResult::Sat(model) => {
                // the returned model must satisfy the formula
                assert!(
                    f.eval(&|v| model.get(&v).copied().unwrap_or(0)),
                    "case {case}: returned model violates {f}"
                );
            }
            SatResult::Unsat => {
                assert!(!grid_sat, "case {case}: solver said Unsat but the grid satisfies {f}");
            }
            SatResult::Unknown => {
                panic!("case {case}: small-coefficient formula must never be Unknown: {f}");
            }
        }
    }
}

#[test]
fn conj_solver_agrees_with_grid() {
    let mut rng = StdRng::seed_from_u64(0x5317_0002);
    for case in 0..CASES {
        let atoms = gen_atoms(&mut rng, 1, 6);
        let grid_sat = grid_points().any(|p| atoms.iter().all(|a| a.eval(&eval_at(&p))));
        match lia::check_conj(&atoms) {
            lia::ConjResult::Sat(model) => {
                let assign = |v: SVar| model.get(&v).copied().unwrap_or(0);
                for a in &atoms {
                    assert!(a.eval(&assign), "case {case}: model violates {a}");
                }
            }
            lia::ConjResult::Unsat => {
                assert!(!grid_sat, "case {case}: conjunction satisfiable on the grid: {atoms:?}");
            }
            lia::ConjResult::Unknown => {
                panic!("case {case}: small-coefficient conjunction must never be Unknown");
            }
        }
    }
}

#[test]
fn unsat_core_is_unsat_subset() {
    let mut rng = StdRng::seed_from_u64(0x5317_0003);
    for case in 0..CASES {
        let atoms = gen_atoms(&mut rng, 1, 6);
        if lia::is_sat_conj(&atoms) {
            continue;
        }
        let core = lia::unsat_core(&atoms);
        assert!(!core.is_empty(), "case {case}");
        assert!(core.iter().all(|&i| i < atoms.len()), "case {case}");
        let subset: Vec<Atom> = core.iter().map(|&i| atoms[i].clone()).collect();
        assert!(!lia::is_sat_conj(&subset), "case {case}: core must stay unsat");
    }
}

#[test]
fn projection_is_implied() {
    let mut rng = StdRng::seed_from_u64(0x5317_0004);
    for case in 0..CASES {
        let atoms = gen_atoms(&mut rng, 1, 5);
        let elim_mask = rng.gen_range(0u32..(1 << NVARS));
        let elim: BTreeSet<SVar> =
            (0..NVARS).filter(|i| elim_mask & (1 << i) != 0).map(SVar).collect();
        let projected = lia::project(&atoms, &elim);
        // soundness: every grid model of the input satisfies the
        // projection (∃-elimination only weakens)
        for p in grid_points() {
            let assign = eval_at(&p);
            if atoms.iter().all(|a| a.eval(&assign)) {
                for q in &projected {
                    assert!(q.eval(&assign), "case {case}: projection {q} broken at {p:?}");
                }
            }
        }
        // the projection must not mention eliminated variables
        for q in &projected {
            for v in q.vars() {
                assert!(!elim.contains(&v), "case {case}: {q} still mentions {v}");
            }
        }
    }
}

#[test]
fn atom_negation_is_complement() {
    let mut rng = StdRng::seed_from_u64(0x5317_0005);
    for case in 0..CASES {
        let a = gen_atom(&mut rng);
        let p = gen_point(&mut rng, 6);
        let assign = eval_at(&p);
        assert_eq!(a.eval(&assign), !a.negate().eval(&assign), "case {case}: {a} at {p:?}");
    }
}

#[test]
fn entailment_respects_grid() {
    let mut rng = StdRng::seed_from_u64(0x5317_0006);
    for case in 0..CASES {
        let premises = gen_atoms(&mut rng, 1, 4);
        let goal = gen_atom(&mut rng);
        if lia::entails(&premises, &goal) {
            for p in grid_points() {
                let assign = eval_at(&p);
                if premises.iter().all(|a| a.eval(&assign)) {
                    assert!(goal.eval(&assign), "case {case}: entailment broken at {p:?}");
                }
            }
        }
    }
}

#[test]
fn nnf_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0x5317_0007);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 3);
        let p = gen_point(&mut rng, 4);
        let assign = eval_at(&p);
        assert_eq!(f.eval(&assign), f.to_nnf().eval(&assign), "case {case}: {f} at {p:?}");
    }
}
