//! A decision procedure for conjunctions of linear integer atoms.
//!
//! The pipeline is: Gaussian elimination of equalities (equalities
//! without a unit-coefficient variable are first reduced with the
//! Omega test's symmetric-mod transformation, Pugh 1991), case
//! splitting on disequalities, then Fourier–Motzkin elimination with
//! GCD tightening on the remaining inequalities, rational model
//! reconstruction, and branch-and-bound for integrality.
//!
//! Soundness: an `Unsat` answer is always correct (every reduction
//! and FM combination is integer-equivalence- or implication-
//! preserving), and every returned model is verified against the
//! input atoms. The procedure is complete on the linear-integer
//! conjunctions the checker generates (and is property-tested against
//! brute-force grid evaluation on random inputs with coefficients up
//! to ±3). On pathological inputs — coefficients large enough to
//! overflow the `i128` rational reconstruction, or a branch-and-bound
//! search that exhausts its depth budget — the procedure returns
//! [`ConjResult::Unknown`] rather than panicking or answering
//! wrongly; callers must treat `Unknown` as "not proven
//! unsatisfiable".

use crate::atom::{Atom, Rel};
use crate::lin::{LinExpr, SVar};
use std::collections::{BTreeMap, BTreeSet};

/// An integer assignment to solver variables. Variables not present
/// are unconstrained (callers may take them as 0).
pub type Model = BTreeMap<SVar, i64>;

/// Why the decision procedure could not produce a definite answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiaError {
    /// An intermediate value (rational bound, model component, or
    /// omega modulus) exceeded the fixed-width arithmetic the
    /// procedure computes with.
    Overflow,
    /// The integer branch-and-bound search hit its depth budget while
    /// the rational relaxation was still satisfiable.
    DepthExhausted,
}

impl std::fmt::Display for LiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiaError::Overflow => write!(f, "arithmetic overflow in LIA decision procedure"),
            LiaError::DepthExhausted => write!(f, "integer branch-and-bound depth exhausted"),
        }
    }
}

impl std::error::Error for LiaError {}

/// Result of a conjunction query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConjResult {
    /// Satisfiable, with a verified witness.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The procedure gave up (overflow or search-budget exhaustion)
    /// without proving either verdict. Sound callers treat this as
    /// "possibly satisfiable".
    Unknown,
}

impl ConjResult {
    /// True unless the conjunction was *proven* unsatisfiable.
    /// [`ConjResult::Unknown`] counts as possibly-sat: treating an
    /// unproven conjunction as unsat would let the abstraction drop
    /// reachable states.
    pub fn is_sat(&self) -> bool {
        !matches!(self, ConjResult::Unsat)
    }
}

/// Decides satisfiability of `⋀ atoms` over the integers. Returns
/// [`ConjResult::Unknown`] instead of panicking when the internal
/// arithmetic overflows or the branch-and-bound budget runs out.
pub fn check_conj(atoms: &[Atom]) -> ConjResult {
    match solve(atoms.to_vec()) {
        Ok(Some(model)) => {
            // Verify against the original atoms; a model may omit
            // unconstrained variables, which read as 0. Evaluation is
            // done in checked i128 so a huge-but-valid model cannot
            // trip an overflow panic here either.
            for a in atoms {
                match eval_atom_checked(a, &model) {
                    Some(true) => {}
                    Some(false) => panic!(
                        "internal error: reconstructed model violates atom {a} \
                         (input outside supported integer fragment)"
                    ),
                    None => return ConjResult::Unknown,
                }
            }
            ConjResult::Sat(model)
        }
        Ok(None) => ConjResult::Unsat,
        Err(_) => ConjResult::Unknown,
    }
}

/// Evaluates `atom` under `model` with checked i128 arithmetic.
/// `None` means the evaluation itself overflowed.
fn eval_atom_checked(atom: &Atom, model: &Model) -> Option<bool> {
    let mut acc: i128 = atom.expr().constant_part() as i128;
    for (v, a) in atom.expr().terms() {
        let val = model.get(&v).copied().unwrap_or(0) as i128;
        acc = acc.checked_add((a as i128).checked_mul(val)?)?;
    }
    Some(match atom.rel() {
        Rel::Eq => acc == 0,
        Rel::Le => acc <= 0,
        Rel::Ne => acc != 0,
    })
}

/// Convenience wrapper: is the conjunction satisfiable? `Unknown`
/// maps to `true` (not proven unsatisfiable).
pub fn is_sat_conj(atoms: &[Atom]) -> bool {
    check_conj(atoms).is_sat()
}

/// Does `⋀ premises` entail `goal`? `Unknown` on the underlying
/// satisfiability query maps to `false`: entailment is only claimed
/// when the negation was *proven* unsatisfiable.
pub fn entails(premises: &[Atom], goal: &Atom) -> bool {
    let mut q = premises.to_vec();
    q.push(goal.negate());
    !is_sat_conj(&q)
}

/// A minimal (w.r.t. deletion) unsatisfiable subset of `atoms`,
/// returned as sorted indices into the input.
///
/// # Panics
///
/// Panics if the input conjunction is satisfiable.
pub fn unsat_core(atoms: &[Atom]) -> Vec<usize> {
    assert!(!is_sat_conj(atoms), "unsat_core requires an unsatisfiable input");
    let mut kept: Vec<usize> = (0..atoms.len()).collect();
    let mut i = 0;
    while i < kept.len() {
        let mut trial: Vec<Atom> = Vec::with_capacity(kept.len() - 1);
        for (j, &ix) in kept.iter().enumerate() {
            if j != i {
                trial.push(atoms[ix].clone());
            }
        }
        if !is_sat_conj(&trial) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    kept
}

/// Existentially projects the variables `elim` out of `⋀ atoms`,
/// returning a conjunction over the remaining variables that is
/// *implied* by the input (exact for unit-coefficient equalities and
/// for pure inequality systems; disequalities on eliminated variables
/// are dropped, which weakens the result — still sound for use as an
/// interpolant or abstract post-image).
pub fn project(atoms: &[Atom], elim: &BTreeSet<SVar>) -> Vec<Atom> {
    let mut cur: Vec<Atom> = Vec::new();
    for a in atoms {
        if a.is_falsum() {
            return vec![Atom::falsum()];
        }
        if !a.is_verum() {
            cur.push(a.clone());
        }
    }
    for &x in elim {
        // Prefer Gaussian elimination on a unit-coefficient equality.
        if let Some(pos) =
            cur.iter().position(|a| a.rel() == Rel::Eq && a.expr().coeff(x).abs() == 1)
        {
            let eq = cur.remove(pos);
            let repl = solve_for(eq.expr(), x);
            cur = cur.iter().map(|a| a.subst(x, &repl)).collect();
        } else {
            // Split equalities mentioning x into inequality pairs,
            // drop disequalities mentioning x, FM-combine the rest.
            let mut les_pos: Vec<LinExpr> = Vec::new(); // coeff(x) > 0
            let mut les_neg: Vec<LinExpr> = Vec::new(); // coeff(x) < 0
            let mut rest: Vec<Atom> = Vec::new();
            for a in cur.drain(..) {
                if !a.mentions(x) {
                    rest.push(a);
                    continue;
                }
                match a.rel() {
                    Rel::Ne => {} // drop: over-approximation
                    Rel::Le => {
                        if a.expr().coeff(x) > 0 {
                            les_pos.push(a.expr().clone());
                        } else {
                            les_neg.push(a.expr().clone());
                        }
                    }
                    Rel::Eq => {
                        les_pos.push(a.expr().clone().scale(if a.expr().coeff(x) > 0 {
                            1
                        } else {
                            -1
                        }));
                        les_neg.push(a.expr().clone().scale(if a.expr().coeff(x) > 0 {
                            -1
                        } else {
                            1
                        }));
                    }
                }
            }
            for up in &les_pos {
                for lo in &les_neg {
                    let a_coef = up.coeff(x);
                    let b_coef = -lo.coeff(x);
                    debug_assert!(a_coef > 0 && b_coef > 0);
                    let comb = Atom::le(up.scale(b_coef) + lo.scale(a_coef));
                    if comb.is_falsum() {
                        return vec![Atom::falsum()];
                    }
                    if !comb.is_verum() {
                        rest.push(comb);
                    }
                }
            }
            cur = rest;
        }
        if cur.iter().any(Atom::is_falsum) {
            return vec![Atom::falsum()];
        }
        cur.retain(|a| !a.is_verum());
    }
    // Deduplicate.
    let set: BTreeSet<Atom> = cur.into_iter().collect();
    set.into_iter().collect()
}

/// Given `e` with `e.coeff(x) = ±1`, returns the expression `r` such
/// that `e = 0 ⟺ x = r` (and `x ∉ vars(r)`).
fn solve_for(e: &LinExpr, x: SVar) -> LinExpr {
    let a = e.coeff(x);
    debug_assert!(a.abs() == 1);
    let mut rest = e.clone();
    rest.add_term(x, -a);
    // a·x + rest = 0  ⇒  x = −rest/a
    if a == 1 {
        -rest
    } else {
        rest
    }
}

/// Symmetric residue of `a` modulo `m`: the representative of
/// `a mod m` in `(−m/2, m/2]`. For `|a| = m − 1` it is `−sign(a)`,
/// which is what gives the omega reduction its unit coefficient.
///
/// The precondition `m ≥ 2` is a hard assertion (a degenerate modulus
/// would silently compute a wrong residue in release builds), and the
/// comparison is written `r > m − r` so it cannot overflow for `m`
/// near `i64::MAX`.
fn sym_mod(a: i64, m: i64) -> i64 {
    assert!(m >= 2, "sym_mod requires modulus >= 2, got {m}");
    let r = a.rem_euclid(m);
    if r > m - r {
        r - m
    } else {
        r
    }
}

fn solve(atoms: Vec<Atom>) -> Result<Option<Model>, LiaError> {
    let mut eqs: Vec<Atom> = Vec::new();
    let mut les: Vec<Atom> = Vec::new();
    let mut nes: Vec<Atom> = Vec::new();
    for a in atoms {
        if a.is_falsum() {
            return Ok(None);
        }
        if a.is_verum() {
            continue;
        }
        match a.rel() {
            Rel::Eq => eqs.push(a),
            Rel::Le => les.push(a),
            Rel::Ne => nes.push(a),
        }
    }

    // Gaussian elimination of equalities. Unit-coefficient variables
    // substitute directly; equalities without one are reduced with the
    // Omega test's symmetric-mod transformation (Pugh 1991), which
    // introduces a fresh variable and an equivalent equality that DOES
    // have a unit coefficient — exact over the integers, and the
    // coefficients of the original equality shrink every round.
    let mut subs: Vec<(SVar, LinExpr)> = Vec::new();
    let mut next_fresh: u32 = {
        let mut max = 0u32;
        for a in eqs.iter().chain(&les).chain(&nes) {
            for v in a.vars() {
                max = max.max(v.0 + 1);
            }
        }
        max
    };
    let mut omega_rounds = 0u32;
    loop {
        let Some(pos) = eqs.iter().position(|a| a.vars().any(|v| a.expr().coeff(v).abs() == 1))
        else {
            // No unit coefficient anywhere: reduce one equality.
            if let Some(eq) = eqs.first().cloned() {
                omega_rounds += 1;
                assert!(omega_rounds < 200, "omega equality reduction diverged");
                let (_, ak) =
                    eq.expr().terms().min_by_key(|(_, a)| a.abs()).expect("non-constant equality");
                let m =
                    ak.checked_abs().and_then(|a| a.checked_add(1)).ok_or(LiaError::Overflow)?;
                let sigma = SVar(next_fresh);
                next_fresh += 1;
                let mut reduced = LinExpr::zero();
                for (v, a) in eq.expr().terms() {
                    reduced.add_term(v, sym_mod(a, m));
                }
                reduced.add_constant(sym_mod(eq.expr().constant_part(), m));
                reduced.add_term(sigma, -m);
                // `reduced = 0` has coefficient ∓1 on the minimal
                // variable; the next loop round substitutes it away.
                eqs.push(Atom::eq(reduced));
                continue;
            }
            break;
        };
        let eq = eqs.remove(pos);
        let x = eq.vars().find(|v| eq.expr().coeff(*v).abs() == 1).expect("unit variable vanished");
        let repl = solve_for(eq.expr(), x);
        let apply = |v: &mut Vec<Atom>| -> bool {
            let mut out = Vec::with_capacity(v.len());
            for a in v.drain(..) {
                let b = a.subst(x, &repl);
                if b.is_falsum() {
                    return false;
                }
                if !b.is_verum() {
                    out.push(b);
                }
            }
            *v = out;
            true
        };
        if !apply(&mut eqs) || !apply(&mut les) || !apply(&mut nes) {
            return Ok(None);
        }
        subs.push((x, repl));
    }

    // The omega reduction leaves no equalities behind (every one
    // gained a unit coefficient and was substituted), but keep the
    // inequality-pair fallback for defensive robustness.
    for eq in eqs.drain(..) {
        let up = Atom::le(eq.expr().clone());
        let lo = Atom::le(-eq.expr().clone());
        for a in [up, lo] {
            if a.is_falsum() {
                return Ok(None);
            }
            if !a.is_verum() {
                les.push(a);
            }
        }
    }

    // Case split on disequalities.
    if let Some(ne) = nes.pop() {
        let mut rest: Vec<Atom> = les.clone();
        rest.extend(nes.iter().cloned());
        // e ≤ −1
        let mut left = rest.clone();
        let mut e = ne.expr().clone();
        e.add_constant(1);
        left.push(Atom::le(e));
        if let Some(m) = solve(left)? {
            return extend_with_subs(m, &subs).map(Some);
        }
        // e ≥ 1, i.e. −e + 1 ≤ 0
        let mut right = rest;
        let mut e = -ne.expr().clone();
        e.add_constant(1);
        right.push(Atom::le(e));
        return match solve(right)? {
            Some(m) => extend_with_subs(m, &subs).map(Some),
            None => Ok(None),
        };
    }

    match fm_solve(les)? {
        Some(m) => extend_with_subs(m, &subs).map(Some),
        None => Ok(None),
    }
}

fn extend_with_subs(mut m: Model, subs: &[(SVar, LinExpr)]) -> Result<Model, LiaError> {
    for (x, e) in subs.iter().rev() {
        // Checked evaluation: substitution chains over a huge model
        // could push intermediate values past i64.
        let mut acc: i128 = e.constant_part() as i128;
        for (v, a) in e.terms() {
            let val = m.get(&v).copied().unwrap_or(0) as i128;
            let term = (a as i128).checked_mul(val).ok_or(LiaError::Overflow)?;
            acc = acc.checked_add(term).ok_or(LiaError::Overflow)?;
        }
        let val = i64::try_from(acc).map_err(|_| LiaError::Overflow)?;
        m.insert(*x, val);
    }
    Ok(m)
}

/// Upper/lower bound constraints recorded for one eliminated variable.
struct VarBounds {
    var: SVar,
    /// Expressions `a·x + t ≤ 0` with `a > 0`: `x ≤ −t/a`.
    uppers: Vec<LinExpr>,
    /// Expressions `−b·x + s ≤ 0` with `b > 0`: `x ≥ s/b`.
    lowers: Vec<LinExpr>,
}

/// A rational number with positive denominator, used for model
/// reconstruction (FM is exact over the rationals; branch-and-bound
/// recovers integrality). Every operation that can leave `i128` (or
/// narrow back into `i64`) is checked and reports [`LiaError::Overflow`]
/// instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    fn int(n: i64) -> Rat {
        Rat { num: n as i128, den: 1 }
    }

    fn new(num: i128, den: i128) -> Result<Rat, LiaError> {
        debug_assert!(den != 0);
        let (num, den) = if den < 0 {
            (
                num.checked_neg().ok_or(LiaError::Overflow)?,
                den.checked_neg().ok_or(LiaError::Overflow)?,
            )
        } else {
            (num, den)
        };
        let g = gcd128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        if g > 1 {
            Ok(Rat { num: num / g, den: den / g })
        } else {
            Ok(Rat { num, den })
        }
    }

    fn is_integer(self) -> bool {
        self.den == 1
    }

    fn floor(self) -> Result<i64, LiaError> {
        let q = self.num.div_euclid(self.den);
        i64::try_from(q).map_err(|_| LiaError::Overflow)
    }

    fn ceil(self) -> Result<i64, LiaError> {
        let neg = self.num.checked_neg().ok_or(LiaError::Overflow)?;
        let q = neg.div_euclid(self.den).checked_neg().ok_or(LiaError::Overflow)?;
        i64::try_from(q).map_err(|_| LiaError::Overflow)
    }

    fn le(self, other: Rat) -> Result<bool, LiaError> {
        let lhs = self.num.checked_mul(other.den).ok_or(LiaError::Overflow)?;
        let rhs = other.num.checked_mul(self.den).ok_or(LiaError::Overflow)?;
        Ok(lhs <= rhs)
    }

    fn max(self, other: Rat) -> Result<Rat, LiaError> {
        Ok(if self.le(other)? { other } else { self })
    }

    fn min(self, other: Rat) -> Result<Rat, LiaError> {
        Ok(if self.le(other)? { self } else { other })
    }
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Evaluates a linear expression under a partial rational assignment
/// (missing variables read as 0), with checked arithmetic.
fn eval_rat(e: &LinExpr, m: &BTreeMap<SVar, Rat>) -> Result<Rat, LiaError> {
    // sum over a common denominator product, normalized on the fly
    let mut acc = Rat::int(e.constant_part());
    for (v, a) in e.terms() {
        let val = m.get(&v).copied().unwrap_or(Rat::int(0));
        let term = Rat::new(val.num.checked_mul(a as i128).ok_or(LiaError::Overflow)?, val.den)?;
        let num_l = acc.num.checked_mul(term.den).ok_or(LiaError::Overflow)?;
        let num_r = term.num.checked_mul(acc.den).ok_or(LiaError::Overflow)?;
        acc = Rat::new(
            num_l.checked_add(num_r).ok_or(LiaError::Overflow)?,
            acc.den.checked_mul(term.den).ok_or(LiaError::Overflow)?,
        )?;
    }
    Ok(acc)
}

/// Fourier–Motzkin over the rationals with branch-and-bound for
/// integrality: the rational reconstruction always succeeds when FM
/// does (standard FM property); a fractional component triggers a
/// split on `x ≤ ⌊r⌋ ∨ x ≥ ⌈r⌉` over the original system.
fn fm_solve(les: Vec<Atom>) -> Result<Option<Model>, LiaError> {
    fm_branch_and_bound(les, 64)
}

fn fm_branch_and_bound(les: Vec<Atom>, depth: u32) -> Result<Option<Model>, LiaError> {
    let Some(rat_model) = fm_rational(&les)? else {
        return Ok(None);
    };
    // All integer? Done.
    if rat_model.values().all(|r| r.is_integer()) {
        let mut model = Model::new();
        for (v, r) in rat_model {
            model.insert(v, i64::try_from(r.num).map_err(|_| LiaError::Overflow)?);
        }
        return Ok(Some(model));
    }
    if depth == 0 {
        // FM said rationally satisfiable but the integer search budget
        // ran out. Answering Unsat here would be unsound; report the
        // exhaustion so the caller degrades to Unknown.
        return Err(LiaError::DepthExhausted);
    }
    let (&x, &r) = rat_model.iter().find(|(_, r)| !r.is_integer()).expect("fractional var");
    // branch: x ≤ ⌊r⌋
    let mut left = les.clone();
    left.push(Atom::le(LinExpr::var(x) - LinExpr::constant(r.floor()?)));
    if let Some(m) = fm_branch_and_bound(left, depth - 1)? {
        return Ok(Some(m));
    }
    // branch: x ≥ ⌈r⌉
    let mut right = les;
    right.push(Atom::le(LinExpr::constant(r.ceil()?) - LinExpr::var(x)));
    fm_branch_and_bound(right, depth - 1)
}

/// One round of rational Fourier–Motzkin: `None` if the system is
/// (rationally, hence integrally) unsatisfiable, else a rational
/// witness. Integer candidates are preferred within each window so
/// that most systems never need the branch-and-bound layer. The model
/// is a `BTreeMap` so the "first fractional variable" pick in the
/// branch-and-bound layer is deterministic across runs.
fn fm_rational(les: &[Atom]) -> Result<Option<BTreeMap<SVar, Rat>>, LiaError> {
    let vars: Vec<SVar> = {
        let mut s: BTreeSet<SVar> = BTreeSet::new();
        for a in les {
            s.extend(a.vars());
        }
        s.into_iter().collect()
    };
    let mut cur: Vec<LinExpr> = les.iter().map(|a| a.expr().clone()).collect();
    let mut stack: Vec<VarBounds> = Vec::new();
    for &x in &vars {
        let mut uppers = Vec::new();
        let mut lowers = Vec::new();
        let mut rest = Vec::new();
        for e in cur.drain(..) {
            let c = e.coeff(x);
            if c > 0 {
                uppers.push(e);
            } else if c < 0 {
                lowers.push(e);
            } else {
                rest.push(e);
            }
        }
        for up in &uppers {
            for lo in &lowers {
                let a = up.coeff(x);
                let b = -lo.coeff(x);
                let comb = Atom::le(up.scale(b) + lo.scale(a));
                if comb.is_falsum() {
                    return Ok(None);
                }
                if !comb.is_verum() {
                    rest.push(comb.expr().clone());
                }
            }
        }
        stack.push(VarBounds { var: x, uppers, lowers });
        cur = rest;
    }
    // Only constants remain.
    for e in &cur {
        debug_assert!(e.is_constant());
        if e.constant_part() > 0 {
            return Ok(None);
        }
    }

    // Rational reconstruction in reverse elimination order: the
    // window [lo, hi] is never empty (FM added every upper×lower
    // combination), so a value always exists.
    let mut model: BTreeMap<SVar, Rat> = BTreeMap::new();
    for vb in stack.iter().rev() {
        let mut hi: Option<Rat> = None;
        for up in &vb.uppers {
            let a = up.coeff(vb.var);
            let mut t = up.clone();
            t.add_term(vb.var, -a);
            // a·x + t ≤ 0 ⇒ x ≤ −t/a
            let te = eval_rat(&t, &model)?;
            let den = te.den.checked_mul(a as i128).ok_or(LiaError::Overflow)?;
            let bound = Rat::new(te.num.checked_neg().ok_or(LiaError::Overflow)?, den)?;
            hi = Some(match hi {
                None => bound,
                Some(h) => h.min(bound)?,
            });
        }
        let mut lo: Option<Rat> = None;
        for low in &vb.lowers {
            let b = -low.coeff(vb.var);
            let mut sexp = low.clone();
            sexp.add_term(vb.var, b);
            // −b·x + s ≤ 0 ⇒ x ≥ s/b
            let se = eval_rat(&sexp, &model)?;
            let den = se.den.checked_mul(b as i128).ok_or(LiaError::Overflow)?;
            let bound = Rat::new(se.num, den)?;
            lo = Some(match lo {
                None => bound,
                Some(l) => l.max(bound)?,
            });
        }
        debug_assert!(
            match (lo, hi) {
                (Some(l), Some(h)) => l.le(h).unwrap_or(true),
                _ => true,
            },
            "FM window must be non-empty"
        );
        // Prefer an integer inside the window: 0 if admissible, else
        // the tightest integral corner, else a rational corner.
        let value = match (lo, hi) {
            (None, None) => Rat::int(0),
            (Some(l), None) => {
                if l.le(Rat::int(0))? {
                    Rat::int(0)
                } else {
                    Rat::int(l.ceil()?)
                }
            }
            (None, Some(h)) => {
                if Rat::int(0).le(h)? {
                    Rat::int(0)
                } else {
                    Rat::int(h.floor()?)
                }
            }
            (Some(l), Some(h)) => {
                let zero = Rat::int(0);
                if l.le(zero)? && zero.le(h)? {
                    zero
                } else {
                    let li = Rat::int(l.ceil()?);
                    if l.le(li)? && li.le(h)? {
                        li
                    } else {
                        l // fractional corner; branch-and-bound splits
                    }
                }
            }
        };
        model.insert(vb.var, value);
    }
    Ok(Some(model))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> SVar {
        SVar(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(v(1))
    }
    fn z() -> LinExpr {
        LinExpr::var(v(2))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }

    #[test]
    fn simple_sat_with_model() {
        // x = y ∧ y = 3
        let atoms = vec![Atom::eq(x() - y()), Atom::eq(y() - c(3))];
        match check_conj(&atoms) {
            ConjResult::Sat(m) => {
                assert_eq!(m.get(&v(0)), Some(&3));
                assert_eq!(m.get(&v(1)), Some(&3));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn equality_chain_unsat() {
        // x = y ∧ y = 0 ∧ x ≠ 0
        let atoms = vec![Atom::eq(x() - y()), Atom::eq(y()), Atom::ne(x())];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
    }

    #[test]
    fn figure5_trace_formula_unsat() {
        // The paper's Figure 5 TF (variables renamed):
        // old1 = state1 ∧ state1 = 0 ∧ state2 = 1 ∧ old1 = 0
        // ∧ old2 = state2 ∧ state2 = 0  — unsat (state2 is 1 and 0).
        let (old1, state1, state2, old2) = (v(0), v(1), v(2), v(3));
        let lv = LinExpr::var;
        let atoms = vec![
            Atom::eq(lv(old1) - lv(state1)),
            Atom::eq(lv(state1)),
            Atom::eq(lv(state2) - c(1)),
            Atom::eq(lv(old1)),
            Atom::eq(lv(old2) - lv(state2)),
            Atom::eq(lv(state2)),
        ];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
        let core = unsat_core(&atoms);
        // the minimal core is state2 = 1 ∧ state2 = 0
        assert_eq!(core, vec![2, 5]);
    }

    #[test]
    fn inequalities_sandwich() {
        // 1 ≤ x ≤ 3 ∧ x ≠ 2 — sat with x ∈ {1, 3}
        let atoms = vec![Atom::ge(x() - c(1)), Atom::le(x() - c(3)), Atom::ne(x() - c(2))];
        match check_conj(&atoms) {
            ConjResult::Sat(m) => {
                let val = m[&v(0)];
                assert!(val == 1 || val == 3);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn inequalities_empty_window() {
        // 1 ≤ x ≤ 2 ∧ x ≠ 1 ∧ x ≠ 2
        let atoms = vec![
            Atom::ge(x() - c(1)),
            Atom::le(x() - c(2)),
            Atom::ne(x() - c(1)),
            Atom::ne(x() - c(2)),
        ];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
    }

    #[test]
    fn integer_gap_detected() {
        // 2x = y ∧ y = 1: no integer solution (x = 1/2).
        let atoms = vec![Atom::eq(x().scale(2) - y()), Atom::eq(y() - c(1))];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
    }

    #[test]
    fn transitive_le_chain() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x − 1 : unsat
        let atoms = vec![Atom::le(x() - y()), Atom::le(y() - z()), Atom::le(z() - x() + c(1))];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
        // relax the last to z ≤ x: sat with x = y = z
        let atoms = vec![Atom::le(x() - y()), Atom::le(y() - z()), Atom::le(z() - x())];
        assert!(check_conj(&atoms).is_sat());
    }

    #[test]
    fn entails_basic() {
        // x = y ∧ y = 0 ⊨ x = 0, but ⊭ x = 1
        let premises = vec![Atom::eq(x() - y()), Atom::eq(y())];
        assert!(entails(&premises, &Atom::eq(x())));
        assert!(!entails(&premises, &Atom::eq(x() - c(1))));
        // and inequalities: x ≤ 3 ⊨ x ≤ 5
        assert!(entails(&[Atom::le(x() - c(3))], &Atom::le(x() - c(5))));
    }

    #[test]
    fn unsat_core_is_minimal() {
        let atoms = vec![
            Atom::le(x() - c(10)), // irrelevant
            Atom::eq(y() - c(1)),
            Atom::eq(y() - c(2)),
            Atom::ne(z()), // irrelevant
        ];
        let core = unsat_core(&atoms);
        assert_eq!(core, vec![1, 2]);
    }

    #[test]
    fn project_gauss_equality() {
        // ∃y. x = y ∧ y = 3  ⇒  x = 3
        let atoms = vec![Atom::eq(x() - y()), Atom::eq(y() - c(3))];
        let elim: BTreeSet<SVar> = [v(1)].into();
        let out = project(&atoms, &elim);
        assert_eq!(out, vec![Atom::eq(x() - c(3))]);
    }

    #[test]
    fn project_fm_inequalities() {
        // ∃y. x ≤ y ∧ y ≤ z  ⇒  x ≤ z
        let atoms = vec![Atom::le(x() - y()), Atom::le(y() - z())];
        let elim: BTreeSet<SVar> = [v(1)].into();
        let out = project(&atoms, &elim);
        assert_eq!(out, vec![Atom::le(x() - z())]);
    }

    #[test]
    fn project_drops_disequalities_on_elim_var() {
        // ∃y. y ≠ 0 ∧ x = 1  ⇒  x = 1 (y facts dropped)
        let atoms = vec![Atom::ne(y()), Atom::eq(x() - c(1))];
        let elim: BTreeSet<SVar> = [v(1)].into();
        let out = project(&atoms, &elim);
        assert_eq!(out, vec![Atom::eq(x() - c(1))]);
    }

    #[test]
    fn project_detects_falsum() {
        let atoms = vec![Atom::eq(x()), Atom::eq(x() - c(1))];
        let elim: BTreeSet<SVar> = [v(0)].into();
        let out = project(&atoms, &elim);
        assert_eq!(out, vec![Atom::falsum()]);
    }

    #[test]
    fn unconstrained_vars_sat() {
        assert!(check_conj(&[]).is_sat());
        assert!(check_conj(&[Atom::ne(x() - y())]).is_sat());
    }

    #[test]
    fn non_unit_coefficients_roundtrip() {
        // 2x ≤ 7 ∧ 2x ≥ 5: x ∈ {3} after tightening (2.5 ≤ 2x... x ≥ 3 via ceil, x ≤ 3 via floor)
        let atoms = vec![Atom::le(x().scale(2) - c(7)), Atom::ge(x().scale(2) - c(5))];
        match check_conj(&atoms) {
            ConjResult::Sat(m) => assert_eq!(m[&v(0)], 3),
            other => panic!("expected sat, got {other:?}"),
        }
        // 2x ≤ 5 ∧ 2x ≥ 5: tightens to x ≤ 2 ∧ x ≥ 3: unsat
        let atoms = vec![Atom::le(x().scale(2) - c(5)), Atom::ge(x().scale(2) - c(5))];
        assert_eq!(check_conj(&atoms), ConjResult::Unsat);
    }

    // --- regression tests for the overflow and sym_mod fixes ---

    #[test]
    fn huge_coefficients_return_unknown_instead_of_panicking() {
        // y ≥ 4·10¹⁸ ∧ x ≥ 3y: rational reconstruction assigns
        // y = 4·10¹⁸ and then needs x ≥ 1.2·10¹⁹ > i64::MAX. The seed
        // code panicked in `Rat::ceil` ("rational ceil overflow");
        // the checked path degrades to Unknown.
        let atoms =
            vec![Atom::ge(y() - c(4_000_000_000_000_000_000)), Atom::ge(x() - y().scale(3))];
        assert_eq!(check_conj(&atoms), ConjResult::Unknown);
        // Unknown is conservatively "possibly sat" …
        assert!(is_sat_conj(&atoms));
        // … and entailment over the overflowing query is never
        // claimed (the negation was not proven unsat).
        assert!(!entails(&atoms, &Atom::le(x())));
    }

    #[test]
    fn unknown_is_conservatively_possibly_sat() {
        assert!(ConjResult::Unknown.is_sat());
        assert!(!ConjResult::Unsat.is_sat());
    }

    #[test]
    fn sym_mod_computes_symmetric_residues() {
        assert_eq!(sym_mod(4, 3), 1);
        assert_eq!(sym_mod(5, 3), -1);
        assert_eq!(sym_mod(-5, 3), 1);
        assert_eq!(sym_mod(3, 3), 0);
        // residues near a huge modulus: `2·r` would overflow i64, the
        // rewritten comparison `r > m − r` must not.
        assert_eq!(sym_mod(i64::MAX, i64::MAX), 0);
        assert_eq!(sym_mod(i64::MAX - 1, i64::MAX), -1);
        assert_eq!(sym_mod(1, i64::MAX), 1);
    }

    #[test]
    #[should_panic(expected = "sym_mod requires modulus >= 2")]
    fn sym_mod_rejects_degenerate_modulus() {
        sym_mod(5, 1);
    }
}
