//! A small CDCL SAT solver: two-watched-literal propagation,
//! first-UIP conflict learning, non-chronological backjumping, and an
//! activity-based decision heuristic with phase saving.
//!
//! The solver is incremental in the simplest sense: clauses may be
//! added between [`CnfSolver::solve`] calls, which is exactly the
//! shape lazy DPLL(T) needs (blocking clauses after each theory
//! conflict).

use std::fmt;

/// A boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BVar(pub u32);

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with the given sign (`true` = positive).
    pub fn new(v: BVar, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// True for a positive literal.
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign() {
            write!(f, "b{}", self.var().0)
        } else {
            write!(f, "~b{}", self.var().0)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// A CDCL SAT solver over CNF clauses.
#[derive(Debug, Default)]
pub struct CnfSolver {
    clauses: Vec<Clause>,
    /// `watches[lit]`: clause indices watching `lit`.
    watches: Vec<Vec<usize>>,
    assigns: Vec<Assign>,
    /// Saved phases for decision polarity.
    phases: Vec<bool>,
    levels: Vec<u32>,
    reasons: Vec<Option<usize>>,
    activity: Vec<f64>,
    act_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Set when an empty clause was added; the instance is trivially
    /// unsat.
    trivially_unsat: bool,
}

impl CnfSolver {
    /// An empty solver.
    pub fn new() -> CnfSolver {
        CnfSolver { act_inc: 1.0, ..CnfSolver::default() }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(self.assigns.len() as u32);
        self.assigns.push(Assign::Unassigned);
        self.phases.push(false);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// The value of `v` in the most recent satisfying assignment.
    ///
    /// # Panics
    ///
    /// Panics if the last [`CnfSolver::solve`] did not return `true`
    /// (the assignment is only total after a SAT answer).
    pub fn value(&self, v: BVar) -> bool {
        match self.assigns[v.0 as usize] {
            Assign::True => true,
            Assign::False => false,
            Assign::Unassigned => panic!("variable {v:?} unassigned; call solve() first"),
        }
    }

    /// Adds a clause. Duplicate literals are removed; tautologies are
    /// ignored; the empty clause marks the instance unsat.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!((l.var().0 as usize) < self.num_vars(), "unallocated variable in clause");
        }
        // Clause database edits happen at decision level 0.
        self.backtrack_to(0);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology: contains l and ~l
        }
        // Drop literals already false at level 0; if one is true at
        // level 0 the clause is satisfied forever.
        ls.retain(|l| {
            !(self.lit_value(*l) == Assign::False && self.levels[l.var().0 as usize] == 0)
        });
        if ls
            .iter()
            .any(|l| self.lit_value(*l) == Assign::True && self.levels[l.var().0 as usize] == 0)
        {
            return;
        }
        match ls.len() {
            0 => self.trivially_unsat = true,
            1 => {
                if self.lit_value(ls[0]) == Assign::Unassigned {
                    self.enqueue(ls[0], None);
                }
                if self.propagate().is_some() {
                    self.trivially_unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[ls[0].negate().index()].push(idx);
                self.watches[ls[1].negate().index()].push(idx);
                self.clauses.push(Clause { lits: ls, learnt: false });
            }
        }
    }

    /// Decides satisfiability of the current clause set. After `true`,
    /// [`CnfSolver::value`] reads the model; the solver stays usable
    /// (more clauses may be added and `solve` called again).
    pub fn solve(&mut self) -> bool {
        if self.trivially_unsat {
            return false;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.trivially_unsat = true;
            return false;
        }
        loop {
            match self.propagate() {
                Some(conflict) => {
                    if self.decision_level() == 0 {
                        self.trivially_unsat = true;
                        return false;
                    }
                    let (learnt, backjump) = self.analyze(conflict);
                    self.backtrack_to(backjump);
                    self.learn(learnt);
                    self.act_inc /= 0.95;
                    if self.act_inc > 1e100 {
                        for a in &mut self.activity {
                            *a *= 1e-100;
                        }
                        self.act_inc *= 1e-100;
                    }
                }
                None => match self.pick_branch_var() {
                    None => return true,
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.phases[v.0 as usize]);
                        self.enqueue(lit, None);
                    }
                },
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_value(&self, l: Lit) -> Assign {
        match self.assigns[l.var().0 as usize] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => {
                if l.sign() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
            Assign::False => {
                if l.sign() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.lit_value(l), Assign::Unassigned);
        let v = l.var().0 as usize;
        self.assigns[v] = if l.sign() { Assign::True } else { Assign::False };
        self.phases[v] = l.sign();
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index on
    /// conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ~p must be inspected.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Ensure lits[0] is the other watched literal.
                let false_lit = p.negate();
                {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                if self.lit_value(self.clauses[ci].lits[0]) == Assign::True {
                    i += 1;
                    continue; // clause satisfied
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.lit_value(self.clauses[ci].lits[k]) != Assign::False {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1].negate().index();
                        self.watches[new_watch].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                let first = self.clauses[ci].lits[0];
                match self.lit_value(first) {
                    Assign::False => {
                        self.watches[p.index()] = ws;
                        self.qhead = self.trail.len();
                        return Some(ci);
                    }
                    Assign::Unassigned => {
                        self.enqueue(first, Some(ci));
                        i += 1;
                    }
                    Assign::True => unreachable!("handled above"),
                }
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with
    /// the asserting literal first) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut reason_idx = conflict;
        let mut trail_ix = self.trail.len();
        let level = self.decision_level();

        loop {
            let start = if p.is_none() { 0 } else { 1 };
            let lits = self.clauses[reason_idx].lits.clone();
            for &q in &lits[start..] {
                let v = q.var().0 as usize;
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.levels[v] == level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk trail backwards to the next marked literal.
            loop {
                trail_ix -= 1;
                let l = self.trail[trail_ix];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            counter -= 1;
            if counter == 0 {
                break;
            }
            reason_idx = self.reasons[p.unwrap().var().0 as usize]
                .expect("non-decision literal must have a reason");
        }
        learnt[0] = p.unwrap().negate();

        let backjump = if learnt.len() == 1 {
            0
        } else {
            // Second-highest level among learnt literals; move that
            // literal to slot 1 so it is watched.
            let mut max_ix = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().0 as usize]
                    > self.levels[learnt[max_ix].var().0 as usize]
                {
                    max_ix = i;
                }
            }
            learnt.swap(1, max_ix);
            self.levels[learnt[1].var().0 as usize]
        };
        (learnt, backjump)
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            if self.lit_value(learnt[0]) == Assign::Unassigned {
                self.enqueue(learnt[0], None);
            }
            return;
        }
        let idx = self.clauses.len();
        self.watches[learnt[0].negate().index()].push(idx);
        self.watches[learnt[1].negate().index()].push(idx);
        let first = learnt[0];
        self.clauses.push(Clause { lits: learnt, learnt: true });
        debug_assert_eq!(self.lit_value(first), Assign::Unassigned);
        self.enqueue(first, Some(idx));
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unassigned;
                self.reasons[v] = None;
            }
        }
        // Everything still on the trail has already been propagated.
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: BVar) {
        self.activity[v.0 as usize] += self.act_inc;
    }

    fn pick_branch_var(&self) -> Option<BVar> {
        let mut best: Option<BVar> = None;
        let mut best_act = -1.0;
        for (ix, a) in self.assigns.iter().enumerate() {
            if *a == Assign::Unassigned && self.activity[ix] > best_act {
                best_act = self.activity[ix];
                best = Some(BVar(ix as u32));
            }
        }
        best
    }

    /// Number of learnt clauses (for diagnostics and benches).
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut CnfSolver, n: usize) -> Vec<BVar> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert!(s.solve());
        assert!(s.value(v[0]));
        assert!(!s.value(v[1]));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = CnfSolver::new();
        s.add_clause(&[]);
        assert!(!s.solve());
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn tautology_ignored() {
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]);
        assert!(s.solve());
    }

    #[test]
    fn implication_chain() {
        // x0 ∧ (x0→x1) ∧ (x1→x2) ∧ (x2→x3): all true
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0])]);
        for i in 0..3 {
            s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        assert!(s.solve());
        for &x in &v {
            assert!(s.value(x));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = CnfSolver::new();
        let mut p = [[BVar(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)] // j indexes two parallel rows
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn incremental_blocking_enumerates_models() {
        // 2 free variables: exactly 4 models; blocking each in turn
        // must end in unsat after 4 rounds.
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::neg(v[0])]); // tautology, ignored
        let mut models = 0;
        while s.solve() {
            models += 1;
            assert!(models <= 4, "more models than possible");
            let block: Vec<Lit> = v.iter().map(|&x| Lit::new(x, !s.value(x))).collect();
            s.add_clause(&block);
        }
        assert_eq!(models, 4);
    }

    #[test]
    fn xor_chain_sat() {
        // CNF of x0 ⊕ x1 = 1 and x1 ⊕ x2 = 1
        let mut s = CnfSolver::new();
        let v = lits(&mut s, 3);
        for i in 0..2 {
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[i + 1])]);
        }
        assert!(s.solve());
        assert_ne!(s.value(v[0]), s.value(v[1]));
        assert_ne!(s.value(v[1]), s.value(v[2]));
    }

    /// Brute-force reference check on random small instances.
    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic xorshift so the test is reproducible.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..200 {
            let nvars = 4 + (next() % 3) as usize; // 4..6
            let nclauses = 6 + (next() % 10) as usize;
            let mut cls: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nclauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    c.push(((next() % nvars as u64) as usize, next() % 2 == 0));
                }
                cls.push(c);
            }
            // brute force
            let mut bf_sat = false;
            'outer: for m in 0u32..(1 << nvars) {
                for c in &cls {
                    if !c.iter().any(|&(v, s)| ((m >> v) & 1 == 1) == s) {
                        continue 'outer;
                    }
                }
                bf_sat = true;
                break;
            }
            // solver
            let mut s = CnfSolver::new();
            let vars = lits(&mut s, nvars);
            for c in &cls {
                let lits: Vec<Lit> = c.iter().map(|&(v, sg)| Lit::new(vars[v], sg)).collect();
                s.add_clause(&lits);
            }
            assert_eq!(s.solve(), bf_sat, "mismatch on {cls:?}");
        }
    }
}
