//! Linear integer expressions over solver variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops;

/// A solver variable. Clients own the numbering (typically a map from
/// program variables and SSA instances to `SVar`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SVar(pub u32);

impl fmt::Display for SVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A linear expression `Σ aᵢ·xᵢ + c` with `i64` coefficients.
/// Zero-coefficient terms are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LinExpr {
    terms: BTreeMap<SVar, i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// The expression `1·v`.
    pub fn var(v: SVar) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        LinExpr { terms, constant: 0 }
    }

    /// The expression `a·v`.
    pub fn scaled_var(v: SVar, a: i64) -> LinExpr {
        let mut terms = BTreeMap::new();
        if a != 0 {
            terms.insert(v, a);
        }
        LinExpr { terms, constant: 0 }
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: SVar) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Iterates over `(variable, nonzero coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (SVar, i64)> + '_ {
        self.terms.iter().map(|(v, a)| (*v, *a))
    }

    /// Number of variables with nonzero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The variables of the expression.
    pub fn vars(&self) -> impl Iterator<Item = SVar> + '_ {
        self.terms.keys().copied()
    }

    /// Whether `v` occurs.
    pub fn mentions(&self, v: SVar) -> bool {
        self.terms.contains_key(&v)
    }

    /// Adds `a·v` in place.
    pub fn add_term(&mut self, v: SVar, a: i64) {
        let entry = self.terms.entry(v).or_insert(0);
        *entry = entry.checked_add(a).expect("coefficient overflow");
        if *entry == 0 {
            self.terms.remove(&v);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant = self.constant.checked_add(c).expect("constant overflow");
    }

    /// Returns `k · self`.
    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self
                .terms
                .iter()
                .map(|(v, a)| (*v, a.checked_mul(k).expect("coefficient overflow")))
                .collect(),
            constant: self.constant.checked_mul(k).expect("constant overflow"),
        }
    }

    /// Substitutes the expression `repl` for variable `v`:
    /// `self[v := repl]`.
    pub fn subst(&self, v: SVar, repl: &LinExpr) -> LinExpr {
        let a = self.coeff(v);
        if a == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out + repl.scale(a)
    }

    /// Greatest common divisor of the variable coefficients (0 when
    /// constant).
    pub fn coeff_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |g, a| gcd(g, a.abs()))
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assign: &impl Fn(SVar) -> i64) -> i64 {
        let mut acc = self.constant as i128;
        for (v, a) in &self.terms {
            acc += (*a as i128) * (assign(*v) as i128);
        }
        i64::try_from(acc).expect("evaluation overflow")
    }
}

/// `gcd(a, b)` with `gcd(0, x) = x`; result is non-negative.
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Floor division (rounds towards −∞), used for integer tightening.
pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b < 0 {
        q - 1
    } else {
        q
    }
}

impl ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, a) in rhs.terms {
            self.add_term(v, a);
        }
        self.add_constant(rhs.constant);
        self
    }
}

impl ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.scale(-1)
    }
}

impl ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(-1)
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> LinExpr {
        LinExpr::constant(c)
    }
}

impl From<SVar> for LinExpr {
    fn from(v: SVar) -> LinExpr {
        LinExpr::var(v)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, a) in &self.terms {
            if first {
                match *a {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    a => write!(f, "{a}{v}")?,
                }
                first = false;
            } else if *a >= 0 {
                if *a == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {a}{v}")?;
                }
            } else if *a == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -a)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> SVar {
        SVar(n)
    }

    #[test]
    fn add_cancels_terms() {
        let e = LinExpr::var(v(0)) + LinExpr::scaled_var(v(0), -1);
        assert!(e.is_constant());
        assert_eq!(e.constant_part(), 0);
    }

    #[test]
    fn subst_linear() {
        // (2x + y + 3)[x := y - 1] = 3y + 1
        let e = LinExpr::scaled_var(v(0), 2) + LinExpr::var(v(1)) + LinExpr::constant(3);
        let repl = LinExpr::var(v(1)) - LinExpr::constant(1);
        let s = e.subst(v(0), &repl);
        assert_eq!(s.coeff(v(1)), 3);
        assert_eq!(s.coeff(v(0)), 0);
        assert_eq!(s.constant_part(), 1);
    }

    #[test]
    fn gcd_and_floor() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
    }

    #[test]
    fn eval_matches_structure() {
        let e = LinExpr::scaled_var(v(0), 2) - LinExpr::var(v(1)) + LinExpr::constant(5);
        assert_eq!(e.eval(&|x| if x == v(0) { 3 } else { 4 }), 7);
    }

    #[test]
    fn display_readable() {
        let e = LinExpr::scaled_var(v(0), 2) - LinExpr::var(v(1)) - LinExpr::constant(3);
        assert_eq!(format!("{e}"), "2s0 - s1 - 3");
        assert_eq!(format!("{}", LinExpr::constant(0)), "0");
    }

    #[test]
    fn coeff_gcd_ignores_constant() {
        let e = LinExpr::scaled_var(v(0), 4) + LinExpr::scaled_var(v(1), 6) + LinExpr::constant(3);
        assert_eq!(e.coeff_gcd(), 2);
    }
}
