//! Boolean combinations of linear atoms, with negation normal form.

use crate::atom::Atom;
use crate::lin::SVar;
use std::collections::BTreeSet;
use std::fmt;

/// A quantifier-free formula over linear integer atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// An atom.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant true.
    pub fn tru() -> Formula {
        Formula::Const(true)
    }

    /// The constant false.
    pub fn fls() -> Formula {
        Formula::Const(false)
    }

    /// Wraps an atom, folding constant atoms.
    pub fn atom(a: Atom) -> Formula {
        if a.is_verum() {
            Formula::Const(true)
        } else if a.is_falsum() {
            Formula::Const(false)
        } else {
            Formula::Atom(a)
        }
    }

    /// Binary conjunction with constant folding.
    pub fn and(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::fls(),
            (Formula::Const(true), f) | (f, Formula::Const(true)) => f,
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Binary disjunction with constant folding.
    pub fn or(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::tru(),
            (Formula::Const(false), f) | (f, Formula::Const(false)) => f,
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Negation with double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Not(f) => *f,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// `self → rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        self.not().or(rhs)
    }

    /// Conjunction of an iterator of formulas.
    pub fn conj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::tru(), Formula::and)
    }

    /// Disjunction of an iterator of formulas.
    pub fn disj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::fls(), Formula::or)
    }

    /// Negation normal form: negations pushed onto atoms (and absorbed
    /// by [`Atom::negate`], so the result contains no `Not` at all).
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    fn nnf(&self, neg: bool) -> Formula {
        match self {
            Formula::Const(b) => Formula::Const(*b != neg),
            Formula::Atom(a) => {
                if neg {
                    Formula::atom(a.negate())
                } else {
                    Formula::atom(a.clone())
                }
            }
            Formula::Not(f) => f.nnf(!neg),
            Formula::And(fs) => {
                let parts = fs.iter().map(|f| f.nnf(neg));
                if neg {
                    Formula::disj(parts)
                } else {
                    Formula::conj(parts)
                }
            }
            Formula::Or(fs) => {
                let parts = fs.iter().map(|f| f.nnf(neg));
                if neg {
                    Formula::conj(parts)
                } else {
                    Formula::disj(parts)
                }
            }
        }
    }

    /// All atoms occurring in the formula.
    pub fn atoms(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Atom>) {
        match self {
            Formula::Const(_) => {}
            Formula::Atom(a) => {
                out.insert(a.clone());
            }
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
        }
    }

    /// All solver variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<SVar> {
        self.atoms().iter().flat_map(|a| a.vars().collect::<Vec<_>>()).collect()
    }

    /// Substitutes `repl` for `v` in every atom.
    pub fn subst(&self, v: SVar, repl: &crate::LinExpr) -> Formula {
        match self {
            Formula::Const(_) => self.clone(),
            Formula::Atom(a) => Formula::atom(a.subst(v, repl)),
            Formula::Not(f) => f.subst(v, repl).not(),
            Formula::And(fs) => Formula::conj(fs.iter().map(|f| f.subst(v, repl))),
            Formula::Or(fs) => Formula::disj(fs.iter().map(|f| f.subst(v, repl))),
        }
    }

    /// Evaluates the formula under an assignment.
    pub fn eval(&self, assign: &impl Fn(SVar) -> i64) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Atom(a) => a.eval(assign),
            Formula::Not(f) => !f.eval(assign),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assign)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assign)),
        }
    }

    /// Whether the formula is syntactically `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Formula::Const(true))
    }

    /// Whether the formula is syntactically `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Formula::Const(false))
    }
}

impl From<Atom> for Formula {
    fn from(a: Atom) -> Formula {
        Formula::atom(a)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(b) => write!(f, "{b}"),
            Formula::Atom(a) => write!(f, "({a})"),
            Formula::Not(x) => write!(f, "!{x}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::LinExpr;

    fn x_eq(c: i64) -> Formula {
        Formula::atom(Atom::eq(LinExpr::var(SVar(0)) - LinExpr::constant(c)))
    }

    #[test]
    fn constant_folding() {
        assert!(Formula::tru().and(Formula::fls()).is_false());
        assert!(Formula::tru().or(Formula::fls()).is_true());
        assert_eq!(Formula::tru().and(x_eq(1)), x_eq(1));
    }

    #[test]
    fn nnf_eliminates_not() {
        let f = x_eq(1).and(x_eq(2).or(x_eq(3).not())).not();
        let nnf = f.to_nnf();
        fn has_not(f: &Formula) -> bool {
            match f {
                Formula::Not(_) => true,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&nnf));
        // semantics preserved at a few points
        for v in 0..5 {
            assert_eq!(f.eval(&|_| v), nnf.eval(&|_| v), "differs at {v}");
        }
    }

    #[test]
    fn implies_semantics() {
        let f = x_eq(1).implies(x_eq(1).or(x_eq(2)));
        for v in 0..4 {
            assert!(f.eval(&|_| v));
        }
    }

    #[test]
    fn atoms_collected_through_not() {
        let f = x_eq(1).and(x_eq(2).not());
        assert_eq!(f.atoms().len(), 2);
        assert_eq!(f.vars().len(), 1);
    }

    #[test]
    fn subst_folds_constants() {
        // (x = 1)[x := 1] = true
        let f = x_eq(1).subst(SVar(0), &LinExpr::constant(1));
        assert!(f.is_true());
        let g = x_eq(1).subst(SVar(0), &LinExpr::constant(2));
        assert!(g.is_false());
    }
}
