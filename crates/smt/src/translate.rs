//! Translation from `circ-ir` expressions and predicates into solver
//! terms.
//!
//! The mapping from program variables (plus whatever instancing scheme
//! the caller uses — SSA indices, per-thread copies) to solver
//! variables is supplied as a closure, so this module stays agnostic
//! of the caller's naming discipline.

use crate::atom::Atom;
use crate::formula::Formula;
use crate::lin::{LinExpr, SVar};
use circ_ir::{BinOp, BoolExpr, CmpOp, Expr, Pred, Var};

/// Errors from translating IR terms into linear arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A product of two non-constant expressions.
    NonLinear,
    /// `nondet()` occurred where a deterministic term is required;
    /// callers model nondeterminism with fresh solver variables
    /// before translating.
    Nondet,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::NonLinear => write!(f, "non-linear arithmetic is not supported"),
            TranslateError::Nondet => write!(f, "nondet() must be eliminated before translation"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates an IR expression to a linear term, mapping program
/// variables through `map`.
///
/// # Errors
///
/// [`TranslateError::NonLinear`] on products of two non-constant
/// operands; [`TranslateError::Nondet`] on `nondet()`.
pub fn lin_of_expr(e: &Expr, map: &mut impl FnMut(Var) -> SVar) -> Result<LinExpr, TranslateError> {
    match e {
        Expr::Int(n) => Ok(LinExpr::constant(*n)),
        Expr::Var(v) => Ok(LinExpr::var(map(*v))),
        Expr::Nondet => Err(TranslateError::Nondet),
        Expr::Bin(op, a, b) => {
            let la = lin_of_expr(a, map)?;
            let lb = lin_of_expr(b, map)?;
            match op {
                BinOp::Add => Ok(la + lb),
                BinOp::Sub => Ok(la - lb),
                BinOp::Mul => {
                    if la.is_constant() {
                        Ok(lb.scale(la.constant_part()))
                    } else if lb.is_constant() {
                        Ok(la.scale(lb.constant_part()))
                    } else {
                        Err(TranslateError::NonLinear)
                    }
                }
            }
        }
    }
}

/// Like [`lin_of_expr`], but maps every `nondet()` leaf to the given
/// solver variable (callers allocate it fresh and leave it
/// unconstrained). `None` keeps the strict behavior.
///
/// # Errors
///
/// [`TranslateError::NonLinear`] on products of two non-constant
/// operands; [`TranslateError::Nondet`] when `nondet` is `None` and a
/// `nondet()` occurs.
pub fn lin_of_expr_nd(
    e: &Expr,
    map: &mut impl FnMut(Var) -> SVar,
    nondet: Option<SVar>,
) -> Result<LinExpr, TranslateError> {
    match e {
        Expr::Nondet => nondet.map(LinExpr::var).ok_or(TranslateError::Nondet),
        Expr::Int(n) => Ok(LinExpr::constant(*n)),
        Expr::Var(v) => Ok(LinExpr::var(map(*v))),
        Expr::Bin(op, a, b) => {
            let la = lin_of_expr_nd(a, map, nondet)?;
            let lb = lin_of_expr_nd(b, map, nondet)?;
            match op {
                BinOp::Add => Ok(la + lb),
                BinOp::Sub => Ok(la - lb),
                BinOp::Mul => {
                    if la.is_constant() {
                        Ok(lb.scale(la.constant_part()))
                    } else if lb.is_constant() {
                        Ok(la.scale(lb.constant_part()))
                    } else {
                        Err(TranslateError::NonLinear)
                    }
                }
            }
        }
    }
}

/// Translates an IR predicate to a normalized atom.
///
/// # Errors
///
/// Propagates the errors of [`lin_of_expr`].
pub fn atom_of_pred(p: &Pred, map: &mut impl FnMut(Var) -> SVar) -> Result<Atom, TranslateError> {
    let l = lin_of_expr(&p.lhs, map)?;
    let r = lin_of_expr(&p.rhs, map)?;
    let d = l - r;
    Ok(match p.op {
        CmpOp::Eq => Atom::eq(d),
        CmpOp::Ne => Atom::ne(d),
        CmpOp::Lt => Atom::lt(d),
        CmpOp::Le => Atom::le(d),
        CmpOp::Gt => Atom::gt(d),
        CmpOp::Ge => Atom::ge(d),
    })
}

/// Translates an IR boolean expression to a formula.
///
/// # Errors
///
/// Propagates the errors of [`lin_of_expr`].
pub fn formula_of_bool(
    b: &BoolExpr,
    map: &mut impl FnMut(Var) -> SVar,
) -> Result<Formula, TranslateError> {
    Ok(match b {
        BoolExpr::Const(v) => Formula::Const(*v),
        BoolExpr::Atom(p) => Formula::atom(atom_of_pred(p, map)?),
        BoolExpr::Not(f) => formula_of_bool(f, map)?.not(),
        BoolExpr::And(a, c) => formula_of_bool(a, map)?.and(formula_of_bool(c, map)?),
        BoolExpr::Or(a, c) => formula_of_bool(a, map)?.or(formula_of_bool(c, map)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    fn ident(v: Var) -> SVar {
        SVar(v.index() as u32)
    }

    #[test]
    fn linear_expression_roundtrip() {
        let x = Var::from_raw(0);
        let e = Expr::var(x) * Expr::int(3) + Expr::int(2);
        let lin = lin_of_expr(&e, &mut ident).unwrap();
        assert_eq!(lin.coeff(SVar(0)), 3);
        assert_eq!(lin.constant_part(), 2);
    }

    #[test]
    fn nonlinear_rejected() {
        let x = Var::from_raw(0);
        let e = Expr::var(x) * Expr::var(x);
        assert_eq!(lin_of_expr(&e, &mut ident), Err(TranslateError::NonLinear));
        assert_eq!(lin_of_expr(&Expr::Nondet, &mut ident), Err(TranslateError::Nondet));
    }

    #[test]
    fn predicate_to_atom_semantics() {
        // x < y + 1 as an atom, checked against concrete points
        let (x, y) = (Var::from_raw(0), Var::from_raw(1));
        let p = Pred::new(Expr::var(x), CmpOp::Lt, Expr::var(y) + Expr::int(1));
        let a = atom_of_pred(&p, &mut ident).unwrap();
        for (xv, yv) in [(0i64, 0i64), (1, 0), (0, 5), (3, 3)] {
            let ir_val = p.eval(&|v| if v == x { xv } else { yv }).unwrap();
            let smt_val = a.eval(&|s| if s == SVar(0) { xv } else { yv });
            assert_eq!(ir_val, smt_val, "disagree at ({xv},{yv})");
        }
    }

    #[test]
    fn bool_expr_to_formula_and_solve() {
        // (old = state) ∧ (state = 0) ∧ (old ≠ 0) — unsat, the
        // paper's refinement pattern.
        let (old, state) = (Var::from_raw(0), Var::from_raw(1));
        let b = BoolExpr::eq(Expr::var(old), Expr::var(state))
            .and(BoolExpr::eq(Expr::var(state), Expr::int(0)))
            .and(BoolExpr::ne(Expr::var(old), Expr::int(0)));
        let f = formula_of_bool(&b, &mut ident).unwrap();
        let mut s = Solver::new();
        assert_eq!(s.check(&f), SatResult::Unsat);
    }

    #[test]
    fn map_distinguishes_instances() {
        // Same IR variable can map to different solver variables
        // (e.g. SSA indices): x@1 = 0 ∧ x@2 = 1 is satisfiable.
        let x = Var::from_raw(0);
        let p1 = Pred::eq(Expr::var(x), Expr::int(0));
        let p2 = Pred::eq(Expr::var(x), Expr::int(1));
        let a1 = atom_of_pred(&p1, &mut |_| SVar(10)).unwrap();
        let a2 = atom_of_pred(&p2, &mut |_| SVar(11)).unwrap();
        assert!(crate::lia::is_sat_conj(&[a1, a2]));
    }
}
