//! From-scratch decision-procedure substrate for the CIRC race
//! checker.
//!
//! The paper discharges its logical queries (predicate abstraction
//! post-images, region entailment, trace-formula feasibility,
//! predicate mining from infeasibility proofs) with the Simplify
//! prover and the proof-mining technique of *Abstractions from Proofs*
//! (Henzinger–Jhala–Majumdar–McMillan, POPL 04). This crate rebuilds
//! the needed fragment from scratch:
//!
//! * [`LinExpr`] / [`Atom`] — normalized linear integer arithmetic
//!   atoms `Σ aᵢ·xᵢ + c {=, ≤, ≠} 0` over solver variables [`SVar`],
//! * [`Formula`] — boolean combinations with NNF and Tseitin CNF
//!   conversion,
//! * [`sat`] — a CDCL SAT solver (two-watched literals, first-UIP
//!   learning, backjumping, assumption cores),
//! * [`lia`] — a conjunctive linear-integer solver (Gaussian
//!   elimination of equalities, Fourier–Motzkin with GCD tightening,
//!   disequality splitting, model extraction, unsat-subset
//!   minimization, existential projection),
//! * [`Solver`] — the lazy DPLL(T) combination, with entailment and
//!   interpolant-style projection used by `circ-core`.
//!
//! Completeness note: satisfiability of conjunctions is decided
//! exactly on rationals; on integers, per-constraint GCD tightening
//! closes the common gaps (`2x = 1`, `1 ≤ 2x ≤ 1`, …). The benchmark
//! programs of the reproduction stay well inside this fragment (unit
//! coefficients and constants).
//!
//! # Example
//!
//! ```
//! use circ_smt::{Atom, LinExpr, SVar, Solver, Formula};
//!
//! let x = SVar(0);
//! let y = SVar(1);
//! // x = y  ∧  y = 0  ∧  x ≠ 0   is unsatisfiable
//! let f = Formula::atom(Atom::eq(LinExpr::var(x) - LinExpr::var(y)))
//!     .and(Formula::atom(Atom::eq(LinExpr::var(y))))
//!     .and(Formula::atom(Atom::ne(LinExpr::var(x))));
//! let mut solver = Solver::new();
//! assert!(!solver.is_sat(&f));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod formula;
pub mod lia;
mod lin;
pub mod persist;
pub mod sat;
mod solver;
pub mod translate;

pub use atom::{Atom, Rel};
pub use formula::Formula;
pub use lin::{LinExpr, SVar};
pub use persist::{PersistError, SolverPersist};
pub use solver::{SatResult, SharedSolver, Solver};
