//! Lazy DPLL(T): the CDCL SAT core enumerates boolean models of the
//! formula's propositional skeleton; each model's theory literals are
//! checked by the conjunctive LIA procedure; theory conflicts come
//! back as blocking clauses built from minimized unsat cores.

use crate::atom::{Atom, Rel};
use crate::formula::Formula;
use crate::lia::{self, ConjResult, Model};
use crate::sat::{BVar, CnfSolver, Lit};
use circ_governor::Budget;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable with an integer witness.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The theory solver gave up (arithmetic overflow or search-budget
    /// exhaustion) without proving either verdict.
    Unknown,
}

impl SatResult {
    /// True unless the formula was *proven* unsatisfiable.
    ///
    /// [`SatResult::Unknown`] deliberately counts as possibly-sat:
    /// callers gate state-space pruning on `!is_sat(..)` (e.g. the
    /// abstract post of an `assume` edge), and dropping a state whose
    /// guard was merely *not proven* unsatisfiable would be unsound.
    pub fn is_sat(&self) -> bool {
        !matches!(self, SatResult::Unsat)
    }
}

/// A reusable SMT solver handle. Queries are independent; the handle
/// tracks statistics across them (used by benches and tests) and
/// memoizes results per NNF skeleton.
#[derive(Debug)]
pub struct Solver {
    queries: u64,
    theory_rounds: u64,
    /// NNF-keyed result memo. NNF is the canonical form here: `check`
    /// normalizes every input to NNF before solving, so formulas that
    /// only differ in negation placement share one entry. The solver
    /// is deterministic, so replaying a cached `Sat` model is
    /// indistinguishable from re-solving.
    cache: HashMap<Formula, SatResult>,
    cache_enabled: bool,
    cache_hits: u64,
    cache_misses: u64,
    /// Resource budget polled once per theory round. Exhaustion makes
    /// the query answer [`SatResult::Unknown`], which every caller
    /// already treats conservatively (see [`SatResult::is_sat`]), so
    /// a mid-query deadline degrades precision, never soundness.
    budget: Budget,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver {
            queries: 0,
            theory_rounds: 0,
            cache: HashMap::new(),
            cache_enabled: true,
            cache_hits: 0,
            cache_misses: 0,
            budget: Budget::unlimited(),
        }
    }
}

impl Solver {
    /// A fresh solver (result caching on).
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Enables or disables the NNF result cache (on by default).
    /// Disabling also clears it, so a subsequent re-enable starts
    /// cold.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
    }

    /// Attach a resource budget (default: unlimited). The DPLL(T)
    /// loop polls it once per theory round and answers `Unknown` on
    /// exhaustion; formula-cache growth is charged against its memory
    /// ceiling.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Number of top-level queries issued so far.
    pub fn num_queries(&self) -> u64 {
        self.queries
    }

    /// Number of theory-check rounds across all queries.
    pub fn theory_rounds(&self) -> u64 {
        self.theory_rounds
    }

    /// Queries answered from the result cache.
    pub fn num_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Queries that ran the DPLL(T) loop.
    pub fn num_cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Snapshot of this handle's counters.
    pub fn counters(&self) -> circ_stats::SolverCounters {
        circ_stats::SolverCounters {
            queries: self.queries,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            theory_rounds: self.theory_rounds,
        }
    }

    /// Decides satisfiability of `f` over the integers.
    pub fn check(&mut self, f: &Formula) -> SatResult {
        self.check_nnf(f.to_nnf())
    }

    /// [`Solver::check`] for an already-NNF-normalized formula.
    /// [`SharedSolver`] normalizes once to pick its shard and then
    /// dispatches here, so the conversion is not repeated under the
    /// shard lock.
    fn check_nnf(&mut self, nnf: Formula) -> SatResult {
        self.queries += 1;
        match &nnf {
            Formula::Const(true) => return SatResult::Sat(Model::new()),
            Formula::Const(false) => return SatResult::Unsat,
            _ => {}
        }
        // Fault injection: answer Unknown before touching the cache,
        // so injected degradation never pollutes memoized results.
        if self.budget.faults().solver_unknown() {
            return SatResult::Unknown;
        }
        if self.cache_enabled {
            if let Some(hit) = self.cache.get(&nnf) {
                self.cache_hits += 1;
                return hit.clone();
            }
        }
        let (result, budget_aborted) = self.solve_nnf(&nnf);
        self.cache_misses += 1;
        // A budget-induced Unknown reflects *when* the query ran, not
        // what the formula means — never memoize it.
        if self.cache_enabled && !budget_aborted {
            self.budget.charge(formula_bytes(&nnf));
            self.cache.insert(nnf, result.clone());
        }
        result
    }

    /// The uncached DPLL(T) loop over an NNF formula. The second
    /// component is true when the result is an `Unknown` forced by
    /// budget exhaustion rather than by the theory solver.
    fn solve_nnf(&mut self, nnf: &Formula) -> (SatResult, bool) {
        let mut enc = Encoder::new();
        let root = enc.encode(nnf);
        enc.sat.add_clause(&[root]);

        loop {
            if !enc.sat.solve() {
                return (SatResult::Unsat, false);
            }
            self.theory_rounds += 1;
            if self.budget.check().is_err() {
                return (SatResult::Unknown, true);
            }
            // Collect the asserted theory literals of this boolean
            // model, remembering which boolean literal each came from.
            let mut theory: Vec<Atom> = Vec::new();
            let mut origins: Vec<Lit> = Vec::new();
            for (key, &bv) in &enc.atom_vars {
                let val = enc.sat.value(bv);
                let atom = if val { key.clone() } else { key.negate() };
                theory.push(atom);
                origins.push(Lit::new(bv, val));
            }
            match lia::check_conj(&theory) {
                ConjResult::Sat(model) => {
                    debug_assert!(
                        nnf.eval(&|v| model.get(&v).copied().unwrap_or(0)),
                        "model does not satisfy formula"
                    );
                    return (SatResult::Sat(model), false);
                }
                ConjResult::Unsat => {
                    let core = lia::unsat_core(&theory);
                    let blocking: Vec<Lit> = core.iter().map(|&i| origins[i].negate()).collect();
                    enc.sat.add_clause(&blocking);
                }
                ConjResult::Unknown => {
                    // The theory solver could not classify this boolean
                    // model's conjunction, so there is no core to learn
                    // a blocking clause from. Give up on the whole
                    // query rather than loop forever or guess.
                    return (SatResult::Unknown, false);
                }
            }
        }
    }

    /// Seeds the result cache with already-solved entries (NNF keys),
    /// bypassing counters and budget charges: preloaded entries were
    /// paid for by the run that first solved them, and their first
    /// query here counts as a hit. Existing entries win over the seed.
    /// No-op while the cache is disabled.
    pub(crate) fn preload(&mut self, entries: &[(Formula, SatResult)]) {
        if !self.cache_enabled {
            return;
        }
        for (nnf, result) in entries {
            self.cache.entry(nnf.clone()).or_insert_with(|| result.clone());
        }
    }

    /// Clones out the memoized `(NNF, result)` pairs (for
    /// persistence export). Order is unspecified.
    pub(crate) fn cache_entries(&self) -> Vec<(Formula, SatResult)> {
        self.cache.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Convenience: is `f` satisfiable?
    pub fn is_sat(&mut self, f: &Formula) -> bool {
        self.check(f).is_sat()
    }

    /// Is `f` valid (true in every integer state)?
    pub fn is_valid(&mut self, f: &Formula) -> bool {
        !self.is_sat(&f.clone().not())
    }

    /// Does `a` entail `b`?
    pub fn entails(&mut self, a: &Formula, b: &Formula) -> bool {
        !self.is_sat(&a.clone().and(b.clone().not()))
    }

    /// Are `a` and `b` equivalent?
    pub fn equivalent(&mut self, a: &Formula, b: &Formula) -> bool {
        self.entails(a, b) && self.entails(b, a)
    }
}

/// Approximate heap footprint of one memoized formula, for budget
/// accounting: a fixed per-AST-node estimate covering the enum
/// discriminant, child vectors, and the linear expression behind each
/// atom. Deliberately coarse — the memory ceiling is a growth
/// governor, not an allocator limit.
fn formula_bytes(f: &Formula) -> u64 {
    const NODE_BYTES: u64 = 48;
    match f {
        Formula::Const(_) => NODE_BYTES,
        Formula::Atom(_) => 2 * NODE_BYTES,
        Formula::Not(inner) => NODE_BYTES + formula_bytes(inner),
        Formula::And(fs) | Formula::Or(fs) => {
            NODE_BYTES + fs.iter().map(formula_bytes).sum::<u64>()
        }
    }
}

/// Shard count for [`SharedSolver`]. A formula's NNF hash picks the
/// shard, so a given query always lands on the same [`Solver`] (and
/// its cache entry), regardless of which thread issues it.
pub(crate) const SOLVER_SHARDS: usize = 64;

/// The shard a (canonical NNF) formula lands on. Shared with the
/// persistence layer so seed entries can be pre-bucketed once instead
/// of re-hashed per [`SharedSolver`] construction.
pub(crate) fn shard_ix(nnf: &Formula) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    nnf.hash(&mut h);
    (h.finish() as usize) % SOLVER_SHARDS
}

/// A thread-shareable solver: a fixed array of [`Solver`]s behind
/// `Mutex`es, sharded by the NNF hash of the query.
///
/// Because shard selection is a pure function of the (canonical) NNF,
/// and the solve runs while the shard lock is held, the first query
/// for a distinct NNF is exactly one cache miss and every repeat is a
/// hit — under any thread interleaving. Summing the per-shard counters
/// therefore reproduces the exact hit/miss/query totals a single
/// sequential [`Solver`] would have reported for the same query
/// multiset, which is what keeps `--stats` output identical between
/// `--jobs 1` and `--jobs N`.
#[derive(Debug)]
pub struct SharedSolver {
    shards: Box<[Mutex<Solver>]>,
}

impl SharedSolver {
    /// A fresh sharded solver; `cache_enabled` is applied to every
    /// shard (mirrors [`Solver::set_cache_enabled`]).
    pub fn new(cache_enabled: bool) -> SharedSolver {
        SharedSolver::with_budget(cache_enabled, Budget::unlimited())
    }

    /// [`SharedSolver::new`] with a resource budget cloned into every
    /// shard. Clones share one accounting state, so per-shard charges
    /// and polls all land on the same ceiling.
    pub fn with_budget(cache_enabled: bool, budget: Budget) -> SharedSolver {
        SharedSolver::with_budget_and_seed(cache_enabled, budget, &crate::SolverPersist::inert())
    }

    /// [`SharedSolver::with_budget`] warm-started from a persistence
    /// store's frozen seed (see [`crate::SolverPersist`]): every shard
    /// is preloaded with the seed entries that hash to it, so the
    /// first query of a seeded formula is a cache hit. An inert store
    /// (or a disabled cache) seeds nothing.
    pub fn with_budget_and_seed(
        cache_enabled: bool,
        budget: Budget,
        seed: &crate::SolverPersist,
    ) -> SharedSolver {
        SharedSolver {
            shards: (0..SOLVER_SHARDS)
                .map(|ix| {
                    let mut s = Solver::new();
                    s.set_cache_enabled(cache_enabled);
                    s.set_budget(budget.clone());
                    if cache_enabled {
                        s.preload(seed.seed_bucket(ix));
                    }
                    Mutex::new(s)
                })
                .collect(),
        }
    }

    fn shard_of(&self, nnf: &Formula) -> usize {
        shard_ix(nnf)
    }

    /// Decides satisfiability of `f` over the integers.
    pub fn check(&self, f: &Formula) -> SatResult {
        let nnf = f.to_nnf();
        let ix = self.shard_of(&nnf);
        // Recover from poisoning: a contained task panic elsewhere
        // must not wedge the shard for sibling tasks. Solver state is
        // only mutated through `&mut self` methods that leave the
        // cache consistent between statements.
        self.shards[ix].lock().unwrap_or_else(|e| e.into_inner()).check_nnf(nnf)
    }

    /// Convenience: is `f` satisfiable (or not proven unsatisfiable)?
    pub fn is_sat(&self, f: &Formula) -> bool {
        self.check(f).is_sat()
    }

    /// Is `f` valid (true in every integer state)?
    pub fn is_valid(&self, f: &Formula) -> bool {
        !self.is_sat(&f.clone().not())
    }

    /// Does `a` entail `b`?
    pub fn entails(&self, a: &Formula, b: &Formula) -> bool {
        !self.is_sat(&a.clone().and(b.clone().not()))
    }

    /// Counter totals summed over all shards. Equal to what one
    /// sequential [`Solver`] would report for the same query multiset
    /// (see the type-level docs).
    pub fn counters(&self) -> circ_stats::SolverCounters {
        let mut total = circ_stats::SolverCounters::default();
        for shard in self.shards.iter() {
            total.add(&shard.lock().unwrap_or_else(|e| e.into_inner()).counters());
        }
        total
    }

    /// Total top-level queries across all shards.
    pub fn num_queries(&self) -> u64 {
        self.counters().queries
    }

    /// Clones out every shard's memoized `(NNF, result)` pairs (for
    /// persistence export). Order is unspecified.
    pub fn entries(&self) -> Vec<(Formula, SatResult)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.lock().unwrap_or_else(|e| e.into_inner()).cache_entries());
        }
        out
    }
}

/// Tseitin-style one-directional encoder for NNF formulas (all
/// occurrences positive, so implications top-down suffice).
struct Encoder {
    sat: CnfSolver,
    /// Canonical positive atom → boolean variable. `Ne` atoms map to
    /// the negation of the corresponding `Eq` variable so the SAT core
    /// sees their propositional relationship.
    atom_vars: BTreeMap<Atom, BVar>,
}

impl Encoder {
    fn new() -> Encoder {
        Encoder { sat: CnfSolver::new(), atom_vars: BTreeMap::new() }
    }

    fn lit_of_atom(&mut self, a: &Atom) -> Lit {
        let (key, positive) = match a.rel() {
            Rel::Ne => (Atom::eq(a.expr().clone()).canonical(), false),
            Rel::Eq => (a.canonical(), true),
            Rel::Le => (a.clone(), true),
        };
        let bv = match self.atom_vars.get(&key) {
            Some(&bv) => bv,
            None => {
                let bv = self.sat.new_var();
                self.atom_vars.insert(key, bv);
                bv
            }
        };
        Lit::new(bv, positive)
    }

    fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::Const(_) | Formula::Not(_) => {
                unreachable!("constants folded and negations absorbed by NNF")
            }
            Formula::Atom(a) => self.lit_of_atom(a),
            Formula::And(fs) => {
                let children: Vec<Lit> = fs.iter().map(|c| self.encode(c)).collect();
                let aux = self.sat.new_var();
                for c in children {
                    self.sat.add_clause(&[Lit::neg(aux), c]);
                }
                Lit::pos(aux)
            }
            Formula::Or(fs) => {
                let children: Vec<Lit> = fs.iter().map(|c| self.encode(c)).collect();
                let aux = self.sat.new_var();
                let mut clause = vec![Lit::neg(aux)];
                clause.extend(children);
                self.sat.add_clause(&clause);
                Lit::pos(aux)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::{LinExpr, SVar};

    fn v(n: u32) -> SVar {
        SVar(n)
    }
    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(v(1))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }
    fn eq(e: LinExpr) -> Formula {
        Formula::atom(Atom::eq(e))
    }
    fn le(e: LinExpr) -> Formula {
        Formula::atom(Atom::le(e))
    }

    #[test]
    fn boolean_structure_sat() {
        // (x = 0 ∨ x = 1) ∧ x ≠ 0  — sat with x = 1
        let f = eq(x()).or(eq(x() - c(1))).and(eq(x()).not());
        let mut s = Solver::new();
        match s.check(&f) {
            SatResult::Sat(m) => assert_eq!(m.get(&v(0)).copied().unwrap_or(0), 1),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn theory_conflict_propagates() {
        // (x = 0 ∨ x = 1) ∧ x ≥ 2  — unsat through theory only
        let f = eq(x()).or(eq(x() - c(1))).and(le(c(2) - x()));
        let mut s = Solver::new();
        assert_eq!(s.check(&f), SatResult::Unsat);
    }

    #[test]
    fn eq_and_ne_share_boolean_variable() {
        // x = 0 ∧ x ≠ 0 must be refuted at the SAT level (one round).
        let f = eq(x()).and(Formula::atom(Atom::ne(x())));
        let mut s = Solver::new();
        assert_eq!(s.check(&f), SatResult::Unsat);
    }

    #[test]
    fn entailment_queries() {
        let mut s = Solver::new();
        // x = y ∧ y = 0 ⊨ x = 0
        let pre = eq(x() - y()).and(eq(y()));
        assert!(s.entails(&pre, &eq(x())));
        assert!(!s.entails(&pre, &eq(x() - c(1))));
        // disjunctive conclusion: x = 0 ∨ x = 1 ⊨ x ≤ 1
        let d = eq(x()).or(eq(x() - c(1)));
        assert!(s.entails(&d, &le(x() - c(1))));
        assert!(!s.entails(&d, &eq(x())));
    }

    #[test]
    fn validity() {
        let mut s = Solver::new();
        // x ≤ 0 ∨ x ≥ 0 is valid; x ≤ 0 ∨ x ≥ 2 is not (x = 1)
        assert!(s.is_valid(&le(x()).or(le(-x()))));
        assert!(!s.is_valid(&le(x()).or(le(c(2) - x()))));
    }

    #[test]
    fn equivalence() {
        let mut s = Solver::new();
        // x = 0 ≡ (x ≤ 0 ∧ x ≥ 0)
        let a = eq(x());
        let b = le(x()).and(le(-x()));
        assert!(s.equivalent(&a, &b));
        assert!(!s.equivalent(&a, &le(x())));
    }

    #[test]
    fn deep_nesting() {
        // ⋀_{i<6} (x = i ∨ x ≠ i) is valid-ish (sat trivially);
        // conjoin x = 3 and require model hits it.
        let mut f = eq(x() - c(3));
        for i in 0..6 {
            f = f.and(eq(x() - c(i)).or(Formula::atom(Atom::ne(x() - c(i)))));
        }
        let mut s = Solver::new();
        match s.check(&f) {
            SatResult::Sat(m) => assert_eq!(m[&v(0)], 3),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn distinct_disjunction_requires_many_rounds() {
        // (x=0 ∨ x=1 ∨ x=2) ∧ x≠0 ∧ x≠1 ∧ x≠2 : unsat
        let f = eq(x())
            .or(eq(x() - c(1)))
            .or(eq(x() - c(2)))
            .and(Formula::atom(Atom::ne(x())))
            .and(Formula::atom(Atom::ne(x() - c(1))))
            .and(Formula::atom(Atom::ne(x() - c(2))));
        let mut s = Solver::new();
        assert_eq!(s.check(&f), SatResult::Unsat);
    }

    #[test]
    fn constants_short_circuit() {
        let mut s = Solver::new();
        assert!(s.is_sat(&Formula::tru()));
        assert!(!s.is_sat(&Formula::fls()));
        assert_eq!(s.num_queries(), 2);
    }

    #[test]
    fn repeated_query_hits_cache() {
        let f = eq(x()).or(eq(x() - c(1))).and(le(c(2) - x()));
        let mut s = Solver::new();
        assert_eq!(s.check(&f), SatResult::Unsat);
        let rounds = s.theory_rounds();
        assert_eq!(s.check(&f), SatResult::Unsat);
        assert_eq!(s.theory_rounds(), rounds, "cached query must do no theory work");
        assert_eq!(s.num_cache_hits(), 1);
        assert_eq!(s.num_cache_misses(), 1);
        assert_eq!(s.num_queries(), 2);
    }

    #[test]
    fn negation_placement_shares_cache_entry() {
        // ¬(x = 0 ∧ x = 1) and its NNF twin must be one cache entry.
        let f = eq(x()).and(eq(x() - c(1))).not();
        let mut s = Solver::new();
        let a = s.check(&f);
        let b = s.check(&f.to_nnf());
        assert_eq!(a, b);
        assert_eq!(s.num_cache_hits(), 1);
    }

    #[test]
    fn shared_solver_matches_sequential_solver() {
        let queries = [
            eq(x()).or(eq(x() - c(1))).and(le(c(2) - x())),
            eq(x() - y()).and(eq(y())),
            eq(x()).and(Formula::atom(Atom::ne(x()))),
            le(x() - c(3)),
        ];
        let mut seq = Solver::new();
        let shared = SharedSolver::new(true);
        for _ in 0..2 {
            for q in &queries {
                assert_eq!(seq.check(q), shared.check(q));
            }
        }
        // Same query multiset ⇒ same counter totals, even though the
        // shared solver splits the work across shards.
        assert_eq!(seq.counters(), shared.counters());
        assert_eq!(shared.num_queries(), 8);
    }

    #[test]
    fn shared_solver_entailment_and_validity() {
        let shared = SharedSolver::new(true);
        let pre = eq(x() - y()).and(eq(y()));
        assert!(shared.entails(&pre, &eq(x())));
        assert!(!shared.entails(&pre, &eq(x() - c(1))));
        assert!(shared.is_valid(&le(x()).or(le(-x()))));
        assert!(!shared.is_valid(&eq(x())));
    }

    #[test]
    fn unknown_counts_as_possibly_sat() {
        assert!(SatResult::Unknown.is_sat());
        assert!(!SatResult::Unsat.is_sat());
        // A guard with overflowing coefficients degrades to Unknown
        // end-to-end instead of panicking.
        let huge = le(c(4_000_000_000_000_000_000) - y()) // y ≥ 4·10¹⁸
            .and(le(y().scale(3) - x())); // x ≥ 3y
        let mut s = Solver::new();
        assert_eq!(s.check(&huge), SatResult::Unknown);
        assert!(s.is_sat(&huge));
    }

    #[test]
    fn exhausted_budget_degrades_to_unknown_and_is_not_cached() {
        use std::time::Duration;
        // An already-expired deadline: the first theory round trips it.
        let f = eq(x()).or(eq(x() - c(1))).and(le(c(2) - x()));
        let mut s = Solver::new();
        s.set_budget(Budget::with_timeout(Duration::ZERO));
        assert_eq!(s.check(&f), SatResult::Unknown);
        // The degraded answer must not be memoized: with the budget
        // lifted, the same handle re-solves and gets the real verdict.
        s.set_budget(Budget::unlimited());
        assert_eq!(s.check(&f), SatResult::Unsat);
        assert_eq!(s.num_cache_hits(), 0);
    }

    #[test]
    fn cancelled_budget_degrades_to_unknown() {
        let token = circ_governor::CancelToken::new();
        let b = Budget::new(None, None, token.clone(), circ_governor::FaultPlan::inert());
        let shared = SharedSolver::with_budget(true, b);
        let f = eq(x()).or(eq(x() - c(1))).and(le(c(2) - x()));
        assert_eq!(shared.check(&f), SatResult::Unsat);
        token.cancel();
        // Repeat of the same query is served from cache (no theory
        // round, no poll), so probe with a fresh formula.
        let g = eq(y()).or(eq(y() - c(1))).and(le(c(2) - y()));
        assert_eq!(shared.check(&g), SatResult::Unknown);
    }

    #[test]
    fn cache_growth_is_charged_to_the_budget() {
        let b = Budget::unlimited();
        let mut s = Solver::new();
        s.set_budget(b.clone());
        assert_eq!(b.charged_bytes(), 0);
        s.check(&eq(x()).or(eq(x() - c(1))).and(le(c(2) - x())));
        let after_first = b.charged_bytes();
        assert!(after_first > 0, "a cache insert must charge the budget");
        // A cache hit charges nothing further.
        s.check(&eq(x()).or(eq(x() - c(1))).and(le(c(2) - x())));
        assert_eq!(b.charged_bytes(), after_first);
    }

    #[test]
    fn disabled_cache_recomputes_identically() {
        let f = eq(x()).or(eq(x() - c(1))).and(le(c(2) - x()));
        let mut cached = Solver::new();
        let mut raw = Solver::new();
        raw.set_cache_enabled(false);
        for _ in 0..3 {
            assert_eq!(cached.check(&f), raw.check(&f));
        }
        assert_eq!(raw.num_cache_hits(), 0);
        assert!(raw.theory_rounds() > cached.theory_rounds());
    }
}
