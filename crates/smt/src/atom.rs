//! Normalized linear arithmetic atoms.
//!
//! Every comparison is normalized to one of three relations against
//! zero: `e = 0`, `e ≤ 0`, or `e ≠ 0`. Strict inequalities are
//! integer-tightened on construction (`a < b` becomes `a − b + 1 ≤ 0`),
//! so negation stays within the three forms.

use crate::lin::{div_floor, LinExpr};
use crate::SVar;
use std::fmt;

/// The relation of a normalized atom against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `e = 0`
    Eq,
    /// `e ≤ 0`
    Le,
    /// `e ≠ 0`
    Ne,
}

/// A normalized atom `expr rel 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    expr: LinExpr,
    rel: Rel,
}

impl Atom {
    /// `e = 0`, GCD-normalized. If the coefficients' gcd does not
    /// divide the constant the atom is unsatisfiable and is returned
    /// as the canonical false atom `1 = 0`.
    pub fn eq(e: LinExpr) -> Atom {
        let g = e.coeff_gcd();
        if g == 0 {
            // constant equality
            return if e.constant_part() == 0 {
                Atom { expr: LinExpr::zero(), rel: Rel::Eq } // true: 0 = 0
            } else {
                Atom::falsum()
            };
        }
        if e.constant_part() % g != 0 {
            return Atom::falsum();
        }
        Atom { expr: e.scale(1).divide_exact(g), rel: Rel::Eq }
    }

    /// `e ≤ 0`, GCD-tightened: `g·t + c ≤ 0` is equivalent (over the
    /// integers) to `t ≤ floor(−c/g)`, i.e. `t + ceil(c/g) ≤ 0`.
    pub fn le(e: LinExpr) -> Atom {
        let g = e.coeff_gcd();
        if g == 0 {
            return if e.constant_part() <= 0 {
                Atom { expr: LinExpr::zero(), rel: Rel::Le } // true
            } else {
                Atom::falsum()
            };
        }
        let mut t = e.divide_coeffs(g);
        // ceil(c/g) = -floor(-c/g)
        let c = -div_floor(-e.constant_part(), g);
        t.add_constant(c);
        Atom { expr: t, rel: Rel::Le }
    }

    /// `e < 0` over the integers, i.e. `e + 1 ≤ 0`.
    pub fn lt(mut e: LinExpr) -> Atom {
        e.add_constant(1);
        Atom::le(e)
    }

    /// `e ≥ 0`, i.e. `−e ≤ 0`.
    pub fn ge(e: LinExpr) -> Atom {
        Atom::le(-e)
    }

    /// `e > 0`, i.e. `−e + 1 ≤ 0`.
    pub fn gt(e: LinExpr) -> Atom {
        Atom::lt(-e)
    }

    /// `e ≠ 0`. If gcd does not divide the constant, the disequality
    /// is trivially true (`0 = 0` cannot happen) and we return the
    /// canonical true atom.
    pub fn ne(e: LinExpr) -> Atom {
        let g = e.coeff_gcd();
        if g == 0 {
            return if e.constant_part() != 0 { Atom::verum() } else { Atom::falsum() };
        }
        if e.constant_part() % g != 0 {
            return Atom::verum();
        }
        Atom { expr: e.divide_exact(g), rel: Rel::Ne }
    }

    /// The canonical false atom `1 = 0`.
    pub fn falsum() -> Atom {
        Atom { expr: LinExpr::constant(1), rel: Rel::Eq }
    }

    /// Rebuilds an atom from already-normalized parts (persistence
    /// wire decode). Bypasses the normalizing constructors: those are
    /// the identity on every *variable* atom they can produce, but
    /// fold constant expressions to `verum`/`falsum`, which would not
    /// round-trip e.g. the canonical representative `-1 = 0`.
    pub(crate) fn from_normalized(expr: LinExpr, rel: Rel) -> Atom {
        Atom { expr, rel }
    }

    /// The canonical true atom `0 = 0`.
    pub fn verum() -> Atom {
        Atom { expr: LinExpr::zero(), rel: Rel::Eq }
    }

    /// Whether this atom is syntactically the constant true.
    pub fn is_verum(&self) -> bool {
        self.expr.is_constant()
            && match self.rel {
                Rel::Eq => self.expr.constant_part() == 0,
                Rel::Le => self.expr.constant_part() <= 0,
                Rel::Ne => self.expr.constant_part() != 0,
            }
    }

    /// Whether this atom is syntactically the constant false.
    pub fn is_falsum(&self) -> bool {
        self.expr.is_constant() && !self.is_verum()
    }

    /// The underlying expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// The semantic negation, still a single atom:
    /// `¬(e = 0) ≡ e ≠ 0`, `¬(e ≠ 0) ≡ e = 0`,
    /// `¬(e ≤ 0) ≡ e ≥ 1 ≡ −e + 1 ≤ 0`.
    pub fn negate(&self) -> Atom {
        match self.rel {
            Rel::Eq => Atom::ne(self.expr.clone()),
            Rel::Ne => Atom::eq(self.expr.clone()),
            Rel::Le => {
                let mut e = self.expr.clone().scale(-1);
                e.add_constant(1);
                Atom::le(e)
            }
        }
    }

    /// Substitutes `repl` for `v`, renormalizing.
    pub fn subst(&self, v: SVar, repl: &LinExpr) -> Atom {
        let e = self.expr.subst(v, repl);
        match self.rel {
            Rel::Eq => Atom::eq(e),
            Rel::Le => Atom::le(e),
            Rel::Ne => Atom::ne(e),
        }
    }

    /// Variables of the atom.
    pub fn vars(&self) -> impl Iterator<Item = SVar> + '_ {
        self.expr.vars()
    }

    /// Whether `v` occurs in the atom.
    pub fn mentions(&self, v: SVar) -> bool {
        self.expr.mentions(v)
    }

    /// Evaluates the atom under an assignment.
    pub fn eval(&self, assign: &impl Fn(SVar) -> i64) -> bool {
        let val = self.expr.eval(assign);
        match self.rel {
            Rel::Eq => val == 0,
            Rel::Le => val <= 0,
            Rel::Ne => val != 0,
        }
    }

    /// A canonical representative identifying an atom with its sign
    /// flip where the relation is symmetric (`e = 0` vs `−e = 0`).
    pub fn canonical(&self) -> Atom {
        match self.rel {
            Rel::Eq | Rel::Ne => {
                let flipped = self.expr.clone().scale(-1);
                if flipped < self.expr {
                    Atom { expr: flipped, rel: self.rel }
                } else {
                    self.clone()
                }
            }
            Rel::Le => self.clone(),
        }
    }
}

impl LinExpr {
    /// Divides every coefficient and the constant by `g`, which must
    /// divide them all exactly.
    fn divide_exact(&self, g: i64) -> LinExpr {
        debug_assert!(g > 0);
        let mut out = LinExpr::zero();
        for (v, a) in self.terms() {
            debug_assert_eq!(a % g, 0);
            out.add_term(v, a / g);
        }
        debug_assert_eq!(self.constant_part() % g, 0);
        out.add_constant(self.constant_part() / g);
        out
    }

    /// Divides only the coefficients by `g` (constant handled by the
    /// caller with floor rounding).
    fn divide_coeffs(&self, g: i64) -> LinExpr {
        debug_assert!(g > 0);
        let mut out = LinExpr::zero();
        for (v, a) in self.terms() {
            debug_assert_eq!(a % g, 0);
            out.add_term(v, a / g);
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rel = match self.rel {
            Rel::Eq => "=",
            Rel::Le => "<=",
            Rel::Ne => "!=",
        };
        write!(f, "{} {} 0", self.expr, rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LinExpr {
        LinExpr::var(SVar(0))
    }

    #[test]
    fn strict_inequality_tightens() {
        // x < 0  ==>  x + 1 <= 0
        let a = Atom::lt(x());
        assert_eq!(a.rel(), Rel::Le);
        assert_eq!(a.expr().constant_part(), 1);
        assert!(a.eval(&|_| -1));
        assert!(!a.eval(&|_| 0));
    }

    #[test]
    fn gcd_tightening_le() {
        // 2x - 1 <= 0 tightens to x <= 0 over the integers.
        let e = LinExpr::scaled_var(SVar(0), 2) - LinExpr::constant(1);
        let a = Atom::le(e);
        assert_eq!(a.expr().constant_part(), 0);
        assert!(a.eval(&|_| 0)); // 2*0-1 <= 0 ✓
        assert!(!a.eval(&|_| 1)); // 2*1-1 = 1 > 0 ✗

        // 2x + 3 <= 0 tightens to x + 2 <= 0 (x <= -2).
        let e = LinExpr::scaled_var(SVar(0), 2) + LinExpr::constant(3);
        let a = Atom::le(e);
        assert!(a.eval(&|_| -2));
        assert!(!a.eval(&|_| -1));
    }

    #[test]
    fn unsat_equality_by_gcd() {
        // 2x - 1 = 0 has no integer solution
        let e = LinExpr::scaled_var(SVar(0), 2) - LinExpr::constant(1);
        assert!(Atom::eq(e.clone()).is_falsum());
        // and 2x - 1 != 0 is trivially true
        assert!(Atom::ne(e).is_verum());
    }

    #[test]
    fn negation_involutive_semantically() {
        let atoms = [
            Atom::eq(x() - LinExpr::constant(3)),
            Atom::le(x() - LinExpr::constant(3)),
            Atom::ne(x()),
        ];
        for a in &atoms {
            for val in -5..=5 {
                assert_eq!(a.eval(&|_| val), !a.negate().eval(&|_| val), "atom {a}, val {val}");
                assert_eq!(a.eval(&|_| val), a.negate().negate().eval(&|_| val));
            }
        }
    }

    #[test]
    fn constant_atoms_fold() {
        assert!(Atom::eq(LinExpr::constant(0)).is_verum());
        assert!(Atom::eq(LinExpr::constant(2)).is_falsum());
        assert!(Atom::le(LinExpr::constant(-1)).is_verum());
        assert!(Atom::le(LinExpr::constant(1)).is_falsum());
        assert!(Atom::ne(LinExpr::constant(1)).is_verum());
        assert!(Atom::ne(LinExpr::constant(0)).is_falsum());
    }

    #[test]
    fn canonical_identifies_sign_flip() {
        let a = Atom::eq(x() - LinExpr::var(SVar(1)));
        let b = Atom::eq(LinExpr::var(SVar(1)) - x());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn subst_renormalizes() {
        // (x = 0)[x := 2y + 1]  =>  2y + 1 = 0  =>  falsum by gcd
        let a = Atom::eq(x());
        let repl = LinExpr::scaled_var(SVar(1), 2) + LinExpr::constant(1);
        assert!(a.subst(SVar(0), &repl).is_falsum());
    }
}
