//! Disk persistence for solver result caches (and, via the shared
//! wire helpers, the entailment cache in `circ-core`).
//!
//! The format is a deliberately boring whitespace-tokenized text file:
//!
//! ```text
//! <kind> format=1 atoms=1 entries=<N> sum=<16-hex fnv1a64 of body>
//! <line 1>
//! ...
//! <line N>
//! ```
//!
//! Lines are sorted lexicographically before writing, so a given cache
//! content has exactly one on-disk rendering regardless of hash-map
//! iteration order — that is what lets tests compare warm and cold
//! runs byte-for-byte.
//!
//! Soundness of cross-process reuse rests on two properties:
//!
//! 1. **Keys are numbering-stable.** Solver variables are assigned
//!    from CFA variable indices (`pre(v) = 2i`, `post(v) = 2i + 1`),
//!    which depend only on the program text, and atoms/formulas are
//!    canonicalized on construction by total functions of their
//!    content. The same query in a later process therefore builds the
//!    *identical* key.
//! 2. **Corruption cannot attach an answer to a mutated key.** The
//!    header carries an FNV-1a checksum of the whole body plus a
//!    format and atom-encoding version; any mismatch, parse anomaly,
//!    or truncation rejects the entire file (the caller logs and cold
//!    starts). A bit flip can therefore lose a cache, never corrupt a
//!    verdict.

use crate::atom::{Atom, Rel};
use crate::formula::Formula;
use crate::lia::Model;
use crate::lin::{LinExpr, SVar};
use crate::solver::{shard_ix, SatResult, SOLVER_SHARDS};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// On-disk format version. Bump when the line syntax changes.
pub const FORMAT_VERSION: u32 = 1;

/// Atom-encoding version. Bump when atom *normalization* changes
/// (GCD tightening, canonical sign, SVar numbering scheme): old files
/// would parse fine but mean something subtly different, so they must
/// be rejected wholesale.
pub const ATOM_VERSION: u32 = 1;

/// Maximum formula nesting depth accepted by the parser; a guard
/// against stack exhaustion on hostile input, far above anything the
/// pipeline produces.
const MAX_FORMULA_DEPTH: u32 = 64;

/// Why a cache file was rejected. All variants degrade to a logged
/// cold start at the call site — none are fatal.
#[derive(Debug)]
pub enum PersistError {
    /// The file exists but could not be read.
    Io(io::Error),
    /// Header, checksum, or body did not parse as a valid cache file.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file unreadable: {e}"),
            PersistError::Format(msg) => write!(f, "cache file rejected: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// FNV-1a 64-bit over raw bytes. Hand-rolled so the on-disk checksum
/// is independent of `std`'s unstable `DefaultHasher` internals.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cursor over whitespace-separated tokens of one cache-file line.
pub struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    /// Tokenizes a line.
    pub fn new(line: &'a str) -> Tokens<'a> {
        Tokens { iter: line.split_whitespace() }
    }

    /// Next token, or a format error when the line is exhausted.
    /// Deliberately not `Iterator::next`: the error-on-exhaustion
    /// contract is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<&'a str, PersistError> {
        self.iter.next().ok_or_else(|| format_err("truncated line"))
    }

    /// Next token parsed as an integer.
    pub fn next_int<T: std::str::FromStr>(&mut self) -> Result<T, PersistError> {
        let tok = self.next()?;
        tok.parse().map_err(|_| format_err(format!("bad integer token {tok:?}")))
    }

    /// Asserts the line has no tokens left.
    pub fn finish(mut self) -> Result<(), PersistError> {
        match self.iter.next() {
            None => Ok(()),
            Some(tok) => Err(format_err(format!("trailing token {tok:?}"))),
        }
    }
}

/// Appends one atom's wire tokens: `rel n (svar coeff)*n const`, with
/// rel ∈ {`=`, `<`, `!`} and variables in strictly ascending order.
pub fn push_atom(out: &mut String, a: &Atom) {
    let rel = match a.rel() {
        Rel::Eq => "=",
        Rel::Le => "<",
        Rel::Ne => "!",
    };
    out.push_str(rel);
    let e = a.expr();
    out.push_str(&format!(" {}", e.num_terms()));
    for (v, c) in e.terms() {
        out.push_str(&format!(" {} {}", v.0, c));
    }
    out.push_str(&format!(" {}", e.constant_part()));
}

/// Parses one atom from the cursor. Rebuilds through the normalizing
/// [`Atom`] constructors, which are the identity on every atom the
/// writer can emit (constructed atoms are already GCD-normalized), so
/// `parse(render(a)) == a`. Variables must be strictly ascending —
/// this rejects duplicate-variable corruption before it can reach
/// `LinExpr::add_term`'s checked arithmetic.
pub fn parse_atom(toks: &mut Tokens<'_>) -> Result<Atom, PersistError> {
    let rel = match toks.next()? {
        "=" => Rel::Eq,
        "<" => Rel::Le,
        "!" => Rel::Ne,
        other => return Err(format_err(format!("bad relation token {other:?}"))),
    };
    let n: usize = toks.next_int()?;
    if n > 1_000_000 {
        return Err(format_err("atom term count out of range"));
    }
    let mut e = LinExpr::zero();
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let v: u32 = toks.next_int()?;
        let c: i64 = toks.next_int()?;
        if prev.is_some_and(|p| p >= v) {
            return Err(format_err("atom variables not strictly ascending"));
        }
        if c == 0 {
            return Err(format_err("zero coefficient"));
        }
        prev = Some(v);
        e.add_term(SVar(v), c);
    }
    e.add_constant(toks.next_int()?);
    if n == 0 {
        // Constant atoms bypass the constructors, which would fold
        // them to verum/falsum and lose e.g. the canonical `-1 = 0`.
        return Ok(Atom::from_normalized(e, rel));
    }
    Ok(match rel {
        Rel::Eq => Atom::eq(e),
        Rel::Le => Atom::le(e),
        Rel::Ne => Atom::ne(e),
    })
}

/// Appends one formula's wire tokens, prefix-encoded: `T`, `F`,
/// `A <atom>`, `& n <f>*n`, `| n <f>*n`. Cached keys are NNF, so
/// there is deliberately no `Not` tag.
pub fn push_formula(out: &mut String, f: &Formula) -> Result<(), PersistError> {
    match f {
        Formula::Const(true) => out.push('T'),
        Formula::Const(false) => out.push('F'),
        Formula::Atom(a) => {
            out.push_str("A ");
            push_atom(out, a);
        }
        Formula::Not(_) => return Err(format_err("negation in NNF cache key")),
        Formula::And(fs) | Formula::Or(fs) => {
            out.push(if matches!(f, Formula::And(_)) { '&' } else { '|' });
            out.push_str(&format!(" {}", fs.len()));
            for child in fs {
                out.push(' ');
                push_formula(out, child)?;
            }
        }
    }
    Ok(())
}

/// Parses one formula from the cursor, rebuilding the exact variant
/// structure the writer saw (raw `Formula::And`/`Or`/`Atom`, no
/// re-folding) so round-tripped keys hash identically.
pub fn parse_formula(toks: &mut Tokens<'_>) -> Result<Formula, PersistError> {
    parse_formula_at(toks, 0)
}

fn parse_formula_at(toks: &mut Tokens<'_>, depth: u32) -> Result<Formula, PersistError> {
    if depth > MAX_FORMULA_DEPTH {
        return Err(format_err("formula nesting too deep"));
    }
    match toks.next()? {
        "T" => Ok(Formula::Const(true)),
        "F" => Ok(Formula::Const(false)),
        "A" => Ok(Formula::Atom(parse_atom(toks)?)),
        tag @ ("&" | "|") => {
            let n: usize = toks.next_int()?;
            if n > 1_000_000 {
                return Err(format_err("formula arity out of range"));
            }
            let mut fs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fs.push(parse_formula_at(toks, depth + 1)?);
            }
            Ok(if tag == "&" { Formula::And(fs) } else { Formula::Or(fs) })
        }
        other => Err(format_err(format!("bad formula tag {other:?}"))),
    }
}

/// Appends a sat result: `S n (svar val)*n` for a model, `U` for
/// unsat. `Unknown` has no wire form — the writer filters it out
/// (re-solving an Unknown later is cheap insurance against persisting
/// a give-up).
fn push_sat_result(out: &mut String, r: &SatResult) -> Result<(), PersistError> {
    match r {
        SatResult::Sat(model) => {
            out.push_str(&format!("S {}", model.len()));
            for (v, val) in model {
                out.push_str(&format!(" {} {}", v.0, val));
            }
        }
        SatResult::Unsat => out.push('U'),
        SatResult::Unknown => return Err(format_err("unknown result has no wire form")),
    }
    Ok(())
}

fn parse_sat_result(toks: &mut Tokens<'_>) -> Result<SatResult, PersistError> {
    match toks.next()? {
        "U" => Ok(SatResult::Unsat),
        "S" => {
            let n: usize = toks.next_int()?;
            if n > 1_000_000 {
                return Err(format_err("model size out of range"));
            }
            let mut model = Model::new();
            for _ in 0..n {
                let v: u32 = toks.next_int()?;
                let val: i64 = toks.next_int()?;
                if model.insert(SVar(v), val).is_some() {
                    return Err(format_err("duplicate model variable"));
                }
            }
            Ok(SatResult::Sat(model))
        }
        other => Err(format_err(format!("bad result tag {other:?}"))),
    }
}

/// Renders a complete cache file: versioned, checksummed header plus
/// lexicographically sorted body lines (one entry per line).
pub fn render_cache_file(kind: &str, mut lines: Vec<String>) -> String {
    lines.sort_unstable();
    let mut body = String::new();
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    let sum = fnv1a64(body.as_bytes());
    format!(
        "{kind} format={FORMAT_VERSION} atoms={ATOM_VERSION} entries={} sum={sum:016x}\n{body}",
        lines.len()
    )
}

/// Validates the header and checksum of a rendered cache file and
/// returns its body lines. Every anomaly — wrong kind, unsupported
/// version, bad checksum, entry-count mismatch — is a
/// [`PersistError::Format`].
pub fn parse_cache_file<'a>(kind: &str, text: &'a str) -> Result<Vec<&'a str>, PersistError> {
    let (header, body) = text.split_once('\n').ok_or_else(|| format_err("missing header line"))?;
    let mut toks = Tokens::new(header);
    let got_kind = toks.next()?;
    if got_kind != kind {
        return Err(format_err(format!("kind {got_kind:?}, expected {kind:?}")));
    }
    let mut format = None;
    let mut atoms = None;
    let mut entries = None;
    let mut sum = None;
    while let Ok(tok) = toks.next() {
        let (key, val) =
            tok.split_once('=').ok_or_else(|| format_err(format!("bad header field {tok:?}")))?;
        let slot = match key {
            "format" => &mut format,
            "atoms" => &mut atoms,
            "entries" => &mut entries,
            "sum" => &mut sum,
            _ => return Err(format_err(format!("unknown header field {key:?}"))),
        };
        if slot.replace(val).is_some() {
            return Err(format_err(format!("duplicate header field {key:?}")));
        }
    }
    fn want<'v>(v: Option<&'v str>, name: &str) -> Result<&'v str, PersistError> {
        v.ok_or_else(|| format_err(format!("missing header field {name:?}")))
    }
    let format: u32 =
        want(format, "format")?.parse().map_err(|_| format_err("bad format version"))?;
    if format != FORMAT_VERSION {
        return Err(format_err(format!("unsupported format version {format}")));
    }
    let atoms: u32 = want(atoms, "atoms")?.parse().map_err(|_| format_err("bad atom version"))?;
    if atoms != ATOM_VERSION {
        return Err(format_err(format!("unsupported atom encoding version {atoms}")));
    }
    let entries: usize =
        want(entries, "entries")?.parse().map_err(|_| format_err("bad entry count"))?;
    let sum = u64::from_str_radix(want(sum, "sum")?, 16).map_err(|_| format_err("bad checksum"))?;
    if fnv1a64(body.as_bytes()) != sum {
        return Err(format_err("checksum mismatch"));
    }
    let lines: Vec<&str> = body.lines().collect();
    if lines.len() != entries {
        return Err(format_err(format!("entry count {} != header {entries}", lines.len())));
    }
    Ok(lines)
}

/// Writes `text` to `path` atomically and durably (same-directory
/// temp file, `fsync`, rename, directory `fsync` — see
/// [`circ_store::write_atomic`]), so a concurrent reader never
/// observes a torn file and a completed write survives a crash.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    circ_store::write_atomic(path, text)
}

const SOLVER_KIND: &str = "circ-solver-cache";

/// Shared, frozen-seed persistence store for [`crate::SharedSolver`]
/// caches.
///
/// The seed (loaded from disk, or empty) is immutable for the store's
/// lifetime and pre-bucketed by shard index; every solver constructed
/// via [`crate::SharedSolver::with_budget_and_seed`] warm-starts from
/// it. Entries learned by finished runs are absorbed into a separate
/// write-only accumulator and only merged with the seed at save time.
/// That split keeps concurrent runs isolated: what one in-flight run
/// learns can never influence another's cache counters, so per-run
/// statistics stay independent of scheduling.
///
/// The default store is *inert* ([`SolverPersist::inert`]): it seeds
/// nothing and absorbing into it is a no-op, so code paths without
/// `--cache-dir` pay nothing.
#[derive(Debug, Clone, Default)]
pub struct SolverPersist {
    inner: Option<Arc<PersistInner>>,
}

#[derive(Debug)]
struct PersistInner {
    /// Seed entries bucketed by [`shard_ix`], frozen at construction.
    seed: Vec<Vec<(Formula, SatResult)>>,
    /// Entries learned since construction (deduped, seed excluded).
    learned: Mutex<Vec<(Formula, SatResult)>>,
}

impl SolverPersist {
    /// The inert store: seeds nothing, absorbs nothing.
    pub fn inert() -> SolverPersist {
        SolverPersist::default()
    }

    /// An active store warm-started from `seed` entries (typically
    /// loaded via [`load_solver_cache`]; pass an empty vector for an
    /// active-but-cold store). `Unknown` results are dropped.
    pub fn with_seed(seed: Vec<(Formula, SatResult)>) -> SolverPersist {
        let mut buckets: Vec<Vec<(Formula, SatResult)>> = vec![Vec::new(); SOLVER_SHARDS];
        for (f, r) in seed {
            if matches!(r, SatResult::Unknown) {
                continue;
            }
            buckets[shard_ix(&f)].push((f, r));
        }
        SolverPersist {
            inner: Some(Arc::new(PersistInner { seed: buckets, learned: Mutex::new(Vec::new()) })),
        }
    }

    /// Whether this store seeds and accumulates (false for inert).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of seed entries across all buckets.
    pub fn seed_len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.seed.iter().map(Vec::len).sum())
    }

    /// The seed entries that land on solver shard `ix`.
    pub(crate) fn seed_bucket(&self, ix: usize) -> &[(Formula, SatResult)] {
        self.inner.as_ref().map_or(&[], |i| &i.seed[ix])
    }

    /// Folds a finished solver's cache entries into the accumulator
    /// (no-op when inert). `Unknown` results are dropped; duplicates
    /// are deduped at save time.
    pub fn absorb(&self, entries: Vec<(Formula, SatResult)>) {
        let Some(inner) = &self.inner else { return };
        let mut learned = inner.learned.lock().unwrap_or_else(|e| e.into_inner());
        learned.extend(entries.into_iter().filter(|(_, r)| !matches!(r, SatResult::Unknown)));
    }

    /// Seed ∪ learned, deduped by formula (first occurrence wins; the
    /// solver is deterministic, so colliding results are identical
    /// anyway). This is what [`save_solver_cache`] writes.
    pub fn merged_entries(&self) -> Vec<(Formula, SatResult)> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let learned = inner.learned.lock().unwrap_or_else(|e| e.into_inner());
        for (f, r) in inner.seed.iter().flatten().chain(learned.iter()) {
            if seen.insert(f.clone()) {
                out.push((f.clone(), r.clone()));
            }
        }
        out
    }
}

/// Serializes solver cache entries to the versioned wire format.
pub fn render_solver_cache(entries: &[(Formula, SatResult)]) -> String {
    let mut lines = Vec::with_capacity(entries.len());
    for (f, r) in entries {
        let mut line = String::new();
        if push_formula(&mut line, f).is_err() {
            continue; // non-NNF key: unreachable from the solver, skip
        }
        line.push(' ');
        if push_sat_result(&mut line, r).is_err() {
            continue; // Unknown: deliberately not persisted
        }
        lines.push(line);
    }
    render_cache_file(SOLVER_KIND, lines)
}

/// Parses a solver cache file rendered by [`render_solver_cache`].
pub fn parse_solver_cache(text: &str) -> Result<Vec<(Formula, SatResult)>, PersistError> {
    let lines = parse_cache_file(SOLVER_KIND, text)?;
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        let mut toks = Tokens::new(line);
        let f = parse_formula(&mut toks)?;
        let r = parse_sat_result(&mut toks)?;
        toks.finish()?;
        out.push((f, r));
    }
    Ok(out)
}

/// Loads a solver cache file. A missing file is `Ok(None)` (a fresh
/// cache dir is not an anomaly); anything else unreadable or invalid
/// is an error for the caller to log before cold-starting.
pub fn load_solver_cache(path: &Path) -> Result<Option<Vec<(Formula, SatResult)>>, PersistError> {
    load_solver_cache_in(&circ_store::Store::real(), path)
}

/// [`load_solver_cache`] through an explicit storage handle, so
/// torture runs can fail or truncate the read deterministically.
pub fn load_solver_cache_in(
    store: &circ_store::Store,
    path: &Path,
) -> Result<Option<Vec<(Formula, SatResult)>>, PersistError> {
    let text = match store.read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(e)),
    };
    parse_solver_cache(&text).map(Some)
}

/// Saves a store's merged entries to `path` (durable atomic write).
pub fn save_solver_cache(path: &Path, store: &SolverPersist) -> io::Result<()> {
    save_solver_cache_in(&circ_store::Store::real(), path, store)
}

/// [`save_solver_cache`] through an explicit storage handle.
pub fn save_solver_cache_in(
    io: &circ_store::Store,
    path: &Path,
    store: &SolverPersist,
) -> io::Result<()> {
    io.write_atomic(path, &render_solver_cache(&store.merged_entries()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use std::fs;

    fn x() -> LinExpr {
        LinExpr::var(SVar(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(SVar(3))
    }
    fn c(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }

    fn sample_atoms() -> Vec<Atom> {
        vec![
            Atom::eq(x() - y() + c(7)),
            Atom::le(x().scale(2) - c(5)),
            Atom::ne(y() - c(1)),
            Atom::eq(-x() + y()),
            Atom::le(-x() - y().scale(3) + c(100)),
            Atom::verum(),
            Atom::falsum(),
        ]
    }

    #[test]
    fn atom_wire_round_trip_is_exact() {
        for a in sample_atoms() {
            let mut wire = String::new();
            push_atom(&mut wire, &a);
            let mut toks = Tokens::new(&wire);
            let back = parse_atom(&mut toks).unwrap();
            toks.finish().unwrap();
            assert_eq!(a, back, "wire {wire:?}");
            // And canonical representatives round-trip too (cache keys
            // are canonicalized).
            let canon = a.canonical();
            let mut wire = String::new();
            push_atom(&mut wire, &canon);
            assert_eq!(canon, parse_atom(&mut Tokens::new(&wire)).unwrap());
        }
    }

    #[test]
    fn formula_wire_round_trip_is_exact() {
        let f = Formula::And(vec![
            Formula::Or(vec![
                Formula::Atom(Atom::eq(x())),
                Formula::Atom(Atom::le(y() - c(4))),
                Formula::Const(false),
            ]),
            Formula::Atom(Atom::ne(x() - y())),
            Formula::Const(true),
        ]);
        let mut wire = String::new();
        push_formula(&mut wire, &f).unwrap();
        let mut toks = Tokens::new(&wire);
        let back = parse_formula(&mut toks).unwrap();
        toks.finish().unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn not_has_no_wire_form() {
        let f = Formula::Not(Box::new(Formula::Const(true)));
        let mut wire = String::new();
        assert!(push_formula(&mut wire, &f).is_err());
    }

    #[test]
    fn malformed_atoms_are_rejected_not_panics() {
        for bad in [
            "",                // empty
            "? 0 0",           // bad relation
            "= 1 5",           // truncated term list
            "= 2 3 1 3 1 0",   // duplicate variable (add_term hazard)
            "= 2 5 1 3 1 0",   // descending variables
            "= 1 0 0 0",       // zero coefficient
            "= 99999999999 0", // absurd term count
            "= x 0",           // non-numeric count
        ] {
            assert!(parse_atom(&mut Tokens::new(bad)).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn deep_formula_nesting_is_rejected() {
        let mut wire = String::new();
        for _ in 0..200 {
            wire.push_str("& 1 ");
        }
        wire.push('T');
        assert!(parse_formula(&mut Tokens::new(&wire)).is_err());
    }

    #[test]
    fn solver_cache_file_round_trips() {
        let mut solver = Solver::new();
        let f1 = Formula::atom(Atom::eq(x()))
            .or(Formula::atom(Atom::eq(x() - c(1))))
            .and(Formula::atom(Atom::le(c(2) - x())));
        let f2 = Formula::atom(Atom::eq(x() - y())).and(Formula::atom(Atom::eq(y())));
        solver.check(&f1);
        solver.check(&f2);
        let entries = solver.cache_entries();
        assert!(!entries.is_empty());

        let text = render_solver_cache(&entries);
        let back = parse_solver_cache(&text).unwrap();
        assert_eq!(back.len(), entries.len());
        let mut want: Vec<_> = entries.clone();
        let mut got = back;
        let key = |e: &(Formula, SatResult)| {
            let mut s = String::new();
            push_formula(&mut s, &e.0).unwrap();
            s
        };
        want.sort_by_key(|e| key(e));
        got.sort_by_key(|e| key(e));
        assert_eq!(want, got);

        // Rendering is canonical: re-rendering the parsed entries
        // reproduces the bytes.
        assert_eq!(render_solver_cache(&got), text);
    }

    #[test]
    fn unknown_results_are_not_persisted() {
        let entries = vec![
            (Formula::Atom(Atom::le(x())), SatResult::Unknown),
            (Formula::Atom(Atom::le(y())), SatResult::Unsat),
        ];
        let back = parse_solver_cache(&render_solver_cache(&entries)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, SatResult::Unsat);
    }

    #[test]
    fn corruption_rejects_the_file() {
        let entries = vec![
            (Formula::Atom(Atom::eq(x() - c(3))), SatResult::Unsat),
            (
                Formula::Or(vec![
                    Formula::Atom(Atom::le(x())),
                    Formula::Atom(Atom::le(y() - c(2))),
                ]),
                SatResult::Sat(Model::from([(SVar(0), 0), (SVar(3), 9)])),
            ),
        ];
        let text = render_solver_cache(&entries);
        assert!(parse_solver_cache(&text).is_ok());

        // Bit-flip every byte position in turn: either the checksum
        // or the header parse must reject every mutation.
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            let Ok(s) = String::from_utf8(mutated) else { continue };
            assert!(parse_solver_cache(&s).is_err(), "flip at byte {i} accepted");
        }

        // Truncation at every prefix length.
        for i in 0..text.len() {
            if !text.is_char_boundary(i) {
                continue;
            }
            assert!(parse_solver_cache(&text[..i]).is_err(), "prefix of {i} bytes accepted");
        }

        // Version bumps.
        assert!(parse_solver_cache(&text.replace("format=1", "format=2")).is_err());
        assert!(parse_solver_cache(&text.replace("atoms=1", "atoms=2")).is_err());
        // Wrong kind.
        assert!(parse_cache_file("circ-abs-cache", &text).is_err());
    }

    #[test]
    fn inert_store_is_free() {
        let store = SolverPersist::inert();
        assert!(!store.is_active());
        assert_eq!(store.seed_len(), 0);
        store.absorb(vec![(Formula::Atom(Atom::le(x())), SatResult::Unsat)]);
        assert!(store.merged_entries().is_empty());
    }

    #[test]
    fn seeded_solver_hits_where_cold_misses() {
        let f = Formula::atom(Atom::eq(x()))
            .or(Formula::atom(Atom::eq(x() - c(1))))
            .and(Formula::atom(Atom::le(c(2) - x())));

        let cold = crate::SharedSolver::new(true);
        let cold_result = cold.check(&f);
        assert_eq!(cold.counters().cache_misses, 1);

        let store = SolverPersist::with_seed(cold.entries());
        assert_eq!(store.seed_len(), 1);
        let warm = crate::SharedSolver::with_budget_and_seed(
            true,
            circ_governor::Budget::unlimited(),
            &store,
        );
        assert_eq!(warm.check(&f), cold_result);
        let counters = warm.counters();
        assert_eq!(counters.cache_hits, 1, "seeded query must hit");
        assert_eq!(counters.cache_misses, 0);
    }

    #[test]
    fn save_load_round_trip_through_disk() {
        let path = std::env::temp_dir().join("circ_persist_unit_solver.cache");
        let _ = fs::remove_file(&path);
        assert!(load_solver_cache(&path).unwrap().is_none(), "missing file is a clean miss");

        let solver = crate::SharedSolver::new(true);
        solver.check(&Formula::atom(Atom::le(x() - c(5))));
        let store = SolverPersist::with_seed(Vec::new());
        store.absorb(solver.entries());
        save_solver_cache(&path, &store).unwrap();

        let loaded = load_solver_cache(&path).unwrap().unwrap();
        assert_eq!(loaded.len(), 1);
        let reloaded = SolverPersist::with_seed(loaded);
        assert_eq!(reloaded.seed_len(), 1);
        let _ = fs::remove_file(&path);
    }
}
