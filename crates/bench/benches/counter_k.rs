//! Cost of the counter abstraction as the parameter `k` grows: the
//! abstract state space of `(T, k)` blows up with `k`, which is why
//! CIRC starts at `k = 1` and grows lazily (and why Table 1's
//! "counter parameter was always 1" matters).

use circ_core::{circ, CircConfig};
use circ_explicit::{model_check, race_error, FiniteThread, ModelCheck, Transition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tas_lock(cs: u32) -> FiniteThread {
    let mut t = FiniteThread::new(cs + 2, vec![2, 2]);
    t.add(Transition::new(0, 1).guard(0, 0).update(0, 1));
    for i in 1..=cs {
        t.add(Transition::new(i, i + 1).update(1, 1));
    }
    t.add(Transition::new(cs + 1, 0).update(0, 0));
    t
}

fn bench_explicit_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_model_check_vs_k");
    let t = tas_lock(4);
    for k in [1u32, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mc = model_check(&t, k, &race_error(&t, 1), 5_000_000);
                assert!(matches!(mc, ModelCheck::Safe(_)));
            });
        });
    }
    g.finish();
}

fn bench_circ_initial_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("circ_vs_initial_k");
    g.sample_size(15);
    let m = circ_nesc::model("test_and_set").unwrap();
    let program = m.program();
    for k in [1u32, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = CircConfig { initial_k: k, ..CircConfig::omega() };
            b.iter(|| assert!(circ(&program, &cfg).is_safe()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_explicit_k, bench_circ_initial_k);
criterion_main!(benches);
