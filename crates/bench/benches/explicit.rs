//! Scaling of Algorithm 6 (Appendix A): verification cost as the
//! finite-state thread grows, and as the counterexample forces the
//! counter parameter up.

use circ_explicit::{race_error, verify, CounterState, FiniteThread, Transition, Verdict};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tas_lock(cs: u32) -> FiniteThread {
    let mut t = FiniteThread::new(cs + 2, vec![2, 2]);
    t.add(Transition::new(0, 1).guard(0, 0).update(0, 1));
    for i in 1..=cs {
        t.add(Transition::new(i, i + 1).update(1, 1));
    }
    t.add(Transition::new(cs + 1, 0).update(0, 0));
    t
}

fn gather(m: u32) -> FiniteThread {
    let mut t = FiniteThread::new(2, vec![m + 1]);
    for i in 0..m {
        t.add(Transition::new(0, 1).guard(0, i).update(0, i + 1));
    }
    t
}

fn bench_safe_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm6_safe");
    for cs in [2u32, 8, 32] {
        let t = tas_lock(cs);
        g.bench_with_input(BenchmarkId::new("tas_lock_cs", cs), &t, |b, t| {
            b.iter(|| {
                let v = verify(t, &race_error(t, 1), 64, 5_000_000);
                assert!(matches!(v, Verdict::Safe { .. }));
            });
        });
    }
    g.finish();
}

fn bench_k_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm6_k_growth");
    for m in [4u32, 8, 16] {
        let t = gather(m);
        let target = m;
        g.bench_with_input(BenchmarkId::new("gather", m), &t, |b, t| {
            b.iter(|| {
                let err = |s: &CounterState| s.globals[0] == target;
                let v = verify(t, &err, 64, 5_000_000);
                assert!(matches!(v, Verdict::Unsafe { .. }));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_safe_scaling, bench_k_growth);
criterion_main!(benches);
