//! End-to-end CIRC verification time per benchmark model — the
//! reproduction of Table 1's Time column (shape, not absolute values:
//! the paper ran BLAST + Simplify on 2004 hardware).

use circ_core::{circ, CircConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_time");
    g.sample_size(20);
    for m in circ_nesc::models() {
        let program = m.program();
        g.bench_function(m.name, |b| {
            b.iter(|| {
                let outcome = circ(&program, &CircConfig::omega());
                assert_eq!(outcome.is_safe(), m.expected_safe, "{}", m.name);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
