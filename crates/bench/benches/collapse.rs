//! Scaling of the weak-bisimulation quotient (`Collapse`) and the
//! simulation check (`CheckSim`) — the control-abstraction machinery
//! that keeps CIRC's context models small (the paper's ACFA column).

use circ_acfa::{check_sim, collapse, Acfa, AcfaEdge, AcfaLocId, Region};
use circ_ir::Var;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

/// A ring of `n` locations where every `period`-th edge havocs a
/// global: collapses to roughly `period`-many classes.
fn ring(n: u32, period: u32) -> Acfa {
    let regions = vec![Region::full(0); n as usize];
    let atomic = vec![false; n as usize];
    let edges = (0..n)
        .map(|i| AcfaEdge {
            src: AcfaLocId(i),
            havoc: if i % period == 0 {
                [Var::from_raw((i / period) % 3)].into()
            } else {
                BTreeSet::new()
            },
            dst: AcfaLocId((i + 1) % n),
        })
        .collect();
    Acfa::from_parts(regions, atomic, edges)
}

fn bench_collapse(c: &mut Criterion) {
    let mut g = c.benchmark_group("collapse");
    for n in [16u32, 64, 256] {
        let acfa = ring(n, 4);
        g.bench_with_input(BenchmarkId::new("ring", n), &acfa, |b, acfa| {
            b.iter(|| collapse(acfa));
        });
    }
    g.finish();
}

fn bench_checksim(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_sim");
    for n in [16u32, 64, 256] {
        let big = ring(n, 4);
        let small = collapse(&big).acfa;
        g.bench_with_input(BenchmarkId::new("ring_vs_quotient", n), &n, |b, _| {
            b.iter(|| assert!(check_sim(&big, &small)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collapse, bench_checksim);
criterion_main!(benches);
