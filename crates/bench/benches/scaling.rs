//! Scaling study (an extension beyond the paper's evaluation): how
//! verification cost grows with program size, on the token-ring
//! family — an `n`-phase generalization of the `gRxHeadIndex`
//! multi-valued-state idiom. Predicate count, ACFA size, and
//! refinement rounds all grow with `n`.

use circ_core::{circ, CircConfig, CircOutcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_token_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_ring_phases");
    g.sample_size(10);
    for n in [1u32, 2, 3, 4, 5] {
        let program = circ_nesc::token_ring(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| {
                let outcome = circ(p, &CircConfig::omega());
                let CircOutcome::Safe(report) = outcome else {
                    panic!("token ring {n} must verify");
                };
                assert_eq!(report.k, 1);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_token_ring);
criterion_main!(benches);
