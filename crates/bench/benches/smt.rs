//! Micro-benchmarks of the from-scratch decision-procedure substrate:
//! the conjunctive LIA solver (satisfiability, unsat cores,
//! projection), the CDCL SAT core, and the lazy DPLL(T) combination.
//! These dominate CIRC's inner loops, so their costs set the Time
//! column of Table 1.

use circ_smt::{lia, sat, Atom, Formula, LinExpr, SVar, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn v(n: u32) -> SVar {
    SVar(n)
}

/// An equality chain x0 = x1 = … = xn ∧ x0 = 0 ∧ xn = 1 (unsat).
fn eq_chain(n: u32) -> Vec<Atom> {
    let mut atoms = Vec::new();
    for i in 0..n {
        atoms.push(Atom::eq(LinExpr::var(v(i)) - LinExpr::var(v(i + 1))));
    }
    atoms.push(Atom::eq(LinExpr::var(v(0))));
    atoms.push(Atom::eq(LinExpr::var(v(n)) - LinExpr::constant(1)));
    atoms
}

/// A difference chain x0 ≤ x1 ≤ … ≤ xn ∧ xn ≤ x0 − 1 (unsat via FM).
fn le_chain(n: u32) -> Vec<Atom> {
    let mut atoms = Vec::new();
    for i in 0..n {
        atoms.push(Atom::le(LinExpr::var(v(i)) - LinExpr::var(v(i + 1))));
    }
    atoms.push(Atom::le(LinExpr::var(v(n)) - LinExpr::var(v(0)) + LinExpr::constant(1)));
    atoms
}

fn bench_lia(c: &mut Criterion) {
    let mut g = c.benchmark_group("lia");
    for n in [8u32, 32, 128] {
        let chain = eq_chain(n);
        g.bench_with_input(BenchmarkId::new("eq_chain_unsat", n), &chain, |b, chain| {
            b.iter(|| assert!(!lia::is_sat_conj(chain)));
        });
        let les = le_chain(n);
        g.bench_with_input(BenchmarkId::new("le_chain_unsat", n), &les, |b, les| {
            b.iter(|| assert!(!lia::is_sat_conj(les)));
        });
    }
    let chain = eq_chain(32);
    g.bench_function("unsat_core_32", |b| {
        b.iter(|| lia::unsat_core(&chain));
    });
    let les = le_chain(16);
    let elim: std::collections::BTreeSet<SVar> = (1..16).map(v).collect();
    g.bench_function("project_16", |b| {
        b.iter(|| lia::project(&les, &elim));
    });
    g.finish();
}

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    for holes in [4usize, 5, 6] {
        g.bench_with_input(BenchmarkId::new("pigeonhole", holes), &holes, |b, &holes| {
            b.iter(|| {
                let pigeons = holes + 1;
                let mut s = sat::CnfSolver::new();
                let vars: Vec<Vec<sat::BVar>> =
                    (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
                for p in &vars {
                    let clause: Vec<sat::Lit> = p.iter().map(|&x| sat::Lit::pos(x)).collect();
                    s.add_clause(&clause);
                }
                #[allow(clippy::needless_range_loop)] // h indexes two parallel rows
                for h in 0..holes {
                    for p1 in 0..pigeons {
                        for p2 in (p1 + 1)..pigeons {
                            s.add_clause(&[sat::Lit::neg(vars[p1][h]), sat::Lit::neg(vars[p2][h])]);
                        }
                    }
                }
                assert!(!s.solve());
            });
        });
    }
    g.finish();
}

fn bench_dpllt(c: &mut Criterion) {
    // (x = 0 ∨ x = 1 ∨ … ∨ x = n) ∧ ⋀ x ≠ i : n theory rounds.
    let mut g = c.benchmark_group("dpllt");
    for n in [4i64, 8, 16] {
        g.bench_with_input(BenchmarkId::new("distinct_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let x = LinExpr::var(v(0));
                let mut f = Formula::fls();
                for i in 0..=n {
                    f = f.or(Formula::atom(Atom::eq(x.clone() - LinExpr::constant(i))));
                }
                for i in 0..=n {
                    f = f.and(Formula::atom(Atom::ne(x.clone() - LinExpr::constant(i))));
                }
                let mut s = Solver::new();
                assert!(!s.is_sat(&f));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lia, bench_sat, bench_dpllt);
criterion_main!(benches);
