//! Ablation: plain CIRC (ω-initialized counters) versus the ω-CIRC
//! optimization (exactly-k reachability plus the goodness check). The
//! paper reports ∞-CIRC "considerably faster" in practice (§5); this
//! bench measures the gap on our models.

use circ_core::{circ, CircConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("circ_vs_omega");
    g.sample_size(20);
    for name in ["test_and_set", "conditional_lock", "multi_state", "split_phase"] {
        let m = circ_nesc::model(name).expect("model exists");
        let program = m.program();
        g.bench_with_input(BenchmarkId::new("circ", name), &program, |b, p| {
            b.iter(|| assert!(circ(p, &CircConfig::default()).is_safe()));
        });
        g.bench_with_input(BenchmarkId::new("omega_circ", name), &program, |b, p| {
            b.iter(|| assert!(circ(p, &CircConfig::omega()).is_safe()));
        });
        // Ablation of the paper's bisimulation minimization: use the
        // raw ARG as the context model instead of its quotient. Only
        // the smallest model converges in reasonable time without
        // minimization — on the others the assume–guarantee loop keeps
        // chasing an ever-growing context, which is itself the
        // ablation's result (see EXPERIMENTS.md).
        if name == "test_and_set" {
            g.bench_with_input(BenchmarkId::new("no_minimize", name), &program, |b, p| {
                let cfg = CircConfig { minimize: false, ..CircConfig::omega() };
                b.iter(|| assert!(circ(p, &cfg).is_safe()));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
