//! Regenerates **Table 1** of the paper: per protected variable, the
//! number of predicates CIRC discovers, the final ACFA size, and the
//! wall-clock time — side by side with the paper's reported numbers.
//!
//! ```text
//! cargo run --release -p circ-bench --bin table1 [-- --jobs N --timeout-secs N]
//! ```
//!
//! `--timeout-secs N` gives every row its own wall-clock budget; a row
//! that exhausts it is recorded as `"outcome": "timeout"` in the JSON
//! report (and does not fail the harness) instead of hanging the whole
//! table.
//!
//! Absolute times differ (the paper ran BLAST + Simplify on a 2 GHz
//! IBM T30); the comparison is about *shape*: every row proves safe,
//! the counter parameter is always 1, predicate counts are small, and
//! ACFAs are an order of magnitude below the CFA size.
//!
//! Every row also runs a second time with all caching disabled and the
//! outcomes are compared — a live check of the cache's equivalence
//! guarantee. The run writes `BENCH_table1.json` with per-row times
//! (cached and uncached), pipeline counters, and cache hit rates.
//!
//! Finally, the whole row set (paper rows plus injected-bug variants,
//! replicated [`PAR_REPLICATION`] times so the task pool comfortably
//! outnumbers the workers) is re-run twice — once on one worker, once
//! on `--jobs N` workers (default 4) — with a fresh per-task cache in
//! both passes so the two passes do byte-identical work. The
//! sequential-vs-parallel wall times, per-task times, and the
//! outcome-equality check land in the `parallel` section of
//! `BENCH_table1.json`.

use circ_core::{circ, circ_with_cache, AbsCache, CircConfig, CircOutcome, UnknownReason};
use circ_par::Pool;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How many times the row set is replicated for the
/// sequential-vs-parallel differential.
const PAR_REPLICATION: usize = 3;

/// The verdict-relevant content of an outcome: everything except
/// statistics and timings, which legitimately differ between cached
/// and uncached runs.
fn essence(outcome: &CircOutcome) -> String {
    match outcome {
        CircOutcome::Safe(r) => {
            format!("Safe preds={:?} k={} acfa={:?}", r.preds, r.k, r.acfa)
        }
        CircOutcome::Unsafe(r) => format!("Unsafe cex={:?} k={}", r.cex, r.k),
        CircOutcome::Unknown(r) => format!("Unknown reason={:?}", r.reason),
    }
}

/// A one-word verdict label for the JSON report, with budget-exhausted
/// `Unknown`s (this run's own per-row timeout) told apart from the
/// analysis giving up on its own.
fn verdict(outcome: &CircOutcome) -> &'static str {
    match outcome {
        CircOutcome::Safe(_) => "safe",
        CircOutcome::Unsafe(_) => "race",
        CircOutcome::Unknown(r) => match &r.reason {
            UnknownReason::Deadline(_) => "timeout",
            UnknownReason::MemoryLimit { .. } => "memory-limit",
            UnknownReason::Cancelled => "cancelled",
            UnknownReason::InternalError(_) => "internal-error",
            _ => "unknown",
        },
    }
}

struct RowRecord {
    label: String,
    time_s: f64,
    uncached_time_s: f64,
    outcomes_match: bool,
    outcome: &'static str,
}

/// The per-row configuration: ω-CIRC, plus this invocation's per-row
/// wall-clock budget (`--timeout-secs`), if any.
fn row_cfg(timeout_secs: Option<u64>) -> CircConfig {
    CircConfig { timeout: timeout_secs.map(Duration::from_secs), ..CircConfig::omega() }
}

/// Runs one program cached (against the shared cache) and uncached,
/// returning the cached outcome plus the differential record.
fn run_both(
    label: String,
    program: &circ_ir::MtProgram,
    cache: &AbsCache,
    timeout_secs: Option<u64>,
) -> (CircOutcome, RowRecord) {
    let cached_cfg = row_cfg(timeout_secs);
    let t0 = Instant::now();
    let outcome = circ_with_cache(program, &cached_cfg, cache);
    let time_s = t0.elapsed().as_secs_f64();

    let uncached_cfg = CircConfig { use_cache: false, ..row_cfg(timeout_secs) };
    let t1 = Instant::now();
    let uncached = circ(program, &uncached_cfg);
    let uncached_time_s = t1.elapsed().as_secs_f64();

    let outcomes_match = essence(&outcome) == essence(&uncached);
    let outcome_label = verdict(&outcome);
    (outcome, RowRecord { label, time_s, uncached_time_s, outcomes_match, outcome: outcome_label })
}

struct Args {
    jobs: usize,
    timeout_secs: Option<u64>,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut parsed = Args { jobs: 4, timeout_secs: None };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => parsed.jobs = n,
                _ => {
                    eprintln!("--jobs expects a number");
                    std::process::exit(64);
                }
            },
            "--timeout-secs" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => parsed.timeout_secs = Some(n),
                _ => {
                    eprintln!("--timeout-secs expects a number");
                    std::process::exit(64);
                }
            },
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: table1 [--jobs N] [--timeout-secs N])"
                );
                std::process::exit(64);
            }
        }
    }
    parsed
}

/// One task of the parallel differential: a full ω-CIRC run with its
/// own cache (so the sequential and parallel passes do identical
/// work), reported as (verdict essence, wall time).
fn run_task(program: &circ_ir::MtProgram, timeout_secs: Option<u64>) -> (String, f64) {
    let cache = AbsCache::new();
    let cfg = row_cfg(timeout_secs);
    let t = Instant::now();
    let outcome = circ_with_cache(program, &cfg, &cache);
    (essence(&outcome), t.elapsed().as_secs_f64())
}

struct ParRecord {
    label: String,
    seq_time_s: f64,
    par_time_s: f64,
    outcomes_match: bool,
}

/// Runs the sequential-vs-parallel differential over `tasks`,
/// returning per-task records plus the two wall-clock totals.
fn parallel_differential(
    tasks: &[(String, circ_ir::MtProgram)],
    jobs: usize,
    timeout_secs: Option<u64>,
) -> (Vec<ParRecord>, f64, f64) {
    let t0 = Instant::now();
    let seq: Vec<(String, f64)> = Pool::sequential().map(tasks, |(_, p)| run_task(p, timeout_secs));
    let seq_wall = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par: Vec<(String, f64)> = Pool::new(jobs).map(tasks, |(_, p)| run_task(p, timeout_secs));
    let par_wall = t1.elapsed().as_secs_f64();
    let records = tasks
        .iter()
        .zip(seq.iter().zip(&par))
        .map(|((label, _), (s, p))| ParRecord {
            label: label.clone(),
            seq_time_s: s.1,
            par_time_s: p.1,
            outcomes_match: s.0 == p.0,
        })
        .collect();
    (records, seq_wall, par_wall)
}

fn main() {
    let Args { jobs, timeout_secs } = parse_args();
    println!("Table 1 — experimental results with CIRC (ω-CIRC mode)");
    println!("(paper columns measured on a 2 GHz IBM T30 with BLAST + Simplify)\n");
    println!(
        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
        "Name", "Variable", "Preds", "ACFA", "Time", "Preds", "ACFA", "k", "Time", "CFA locs"
    );
    println!(
        "{:-<14} {:-<14} | {:-<5} {:-<5} {:-<8} | {:-<5} {:-<5} {:-<5} {:-<10} {:-<9}",
        "", "", "", "", "", "", "", "", "", ""
    );
    let cache = AbsCache::new();
    let mut totals = circ_core::CircStats::default();
    let mut records: Vec<RowRecord> = Vec::new();
    let mut injected: Vec<RowRecord> = Vec::new();
    let mut all_ok = true;
    for m in circ_nesc::models() {
        for row in m.paper_rows {
            let program = m.program();
            let label = format!("{}/{}", row.app, row.variable);
            let (outcome, record) = run_both(label, &program, &cache, timeout_secs);
            totals.pipeline.add(&outcome.stats().pipeline);
            match outcome {
                CircOutcome::Safe(r) => {
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
                        row.app,
                        row.variable,
                        row.preds,
                        row.acfa,
                        row.time,
                        r.preds.len(),
                        r.acfa.num_locs(),
                        r.k,
                        format!("{:.2?}", std::time::Duration::from_secs_f64(record.time_s)),
                        program.cfa().num_locs(),
                    );
                }
                CircOutcome::Unknown(ref r)
                    if timeout_secs.is_some() && r.reason.is_budget_exhausted() =>
                {
                    // The caller asked for a per-row budget; hitting it
                    // is a recorded outcome, not a harness failure.
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | BUDGET EXHAUSTED: {:?}",
                        row.app, row.variable, row.preds, row.acfa, row.time, r.reason
                    );
                }
                other => {
                    all_ok = false;
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | UNEXPECTED: {:?}",
                        row.app, row.variable, row.preds, row.acfa, row.time, other
                    );
                }
            }
            if !record.outcomes_match {
                all_ok = false;
                println!("  !! cached and uncached outcomes differ for {}", record.label);
            }
            records.push(record);
        }
    }
    println!("\nInjected-bug variants (not in the paper's table; §6 reports such");
    println!("races being found in secureTosBase and sense before fixes):\n");
    for m in circ_nesc::models().iter().filter(|m| !m.expected_safe) {
        let program = m.program();
        let (outcome, record) = run_both(m.name.to_string(), &program, &cache, timeout_secs);
        totals.pipeline.add(&outcome.stats().pipeline);
        match outcome {
            CircOutcome::Unknown(ref r)
                if timeout_secs.is_some() && r.reason.is_budget_exhausted() =>
            {
                println!("  {:<24} BUDGET EXHAUSTED: {:?}", m.name, r.reason);
            }
            CircOutcome::Unsafe(r) => println!(
                "  {:<24} RACE: {} threads, {}-step schedule, concretely replayed: {} ({:.2?})",
                m.name,
                r.cex.n_threads,
                r.cex.steps.len(),
                r.cex.replay_ok,
                std::time::Duration::from_secs_f64(record.time_s),
            ),
            other => {
                all_ok = false;
                println!("  {:<24} UNEXPECTED: {other:?}", m.name);
            }
        }
        if !record.outcomes_match {
            all_ok = false;
            println!("  !! cached and uncached outcomes differ for {}", record.label);
        }
        injected.push(record);
    }

    let abs = cache.counters();
    println!("\nPipeline totals (cached runs, shared entailment cache):");
    print!("{}", totals.pipeline.render_table());
    println!(
        "\nShared cache lifetime: {} queries, {} hits / {} misses ({:.1}% hit rate), {} entries",
        abs.queries,
        abs.cache_hits,
        abs.cache_misses,
        100.0 * abs.hit_rate(),
        cache.len(),
    );
    let cached_total: f64 = records.iter().chain(&injected).map(|r| r.time_s).sum();
    let uncached_total: f64 = records.iter().chain(&injected).map(|r| r.uncached_time_s).sum();
    println!(
        "End-to-end: cached {cached_total:.3}s vs uncached {uncached_total:.3}s, all outcomes match: {}",
        records.iter().chain(&injected).all(|r| r.outcomes_match)
    );

    // ---- sequential-vs-parallel differential --------------------------
    let mut tasks: Vec<(String, circ_ir::MtProgram)> = Vec::new();
    for rep in 0..PAR_REPLICATION {
        for m in circ_nesc::models() {
            for row in m.paper_rows {
                tasks.push((format!("{}/{}#{rep}", row.app, row.variable), m.program()));
            }
            if !m.expected_safe {
                tasks.push((format!("{}#{rep}", m.name), m.program()));
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nSequential-vs-parallel differential: {} tasks ({}x replication), jobs = {jobs}, \
         {cores} core(s) available",
        tasks.len(),
        PAR_REPLICATION,
    );
    let (par_records, seq_wall, par_wall) = parallel_differential(&tasks, jobs, timeout_secs);
    let par_match = par_records.iter().all(|r| r.outcomes_match);
    let speedup = if par_wall > 0.0 { seq_wall / par_wall } else { 0.0 };
    println!(
        "  sequential {seq_wall:.3}s, parallel {par_wall:.3}s, speedup {speedup:.2}x, \
         all outcomes match: {par_match}"
    );
    if cores == 1 {
        println!("  (single-core host: wall-clock speedup is capped at ~1x by hardware)");
    }
    if !par_match {
        all_ok = false;
        println!("  !! sequential and parallel verdicts differ");
    }

    let json = render_json(
        &records,
        &injected,
        &totals,
        &cache,
        &par_records,
        jobs,
        cores,
        seq_wall,
        par_wall,
        timeout_secs,
    );
    let out_path = "BENCH_table1.json";
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            all_ok = false;
            eprintln!("cannot write {out_path}: {e}");
        }
    }

    if !all_ok {
        std::process::exit(1);
    }
}

fn render_rows(rows: &[RowRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{:?},\"outcome\":{:?},\"time_s\":{:.6},\"uncached_time_s\":{:.6},\
             \"outcomes_match\":{}}}",
            r.label, r.outcome, r.time_s, r.uncached_time_s, r.outcomes_match
        );
    }
    out.push(']');
    out
}

fn render_par_rows(rows: &[ParRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{:?},\"seq_time_s\":{:.6},\"par_time_s\":{:.6},\"outcomes_match\":{}}}",
            r.label, r.seq_time_s, r.par_time_s, r.outcomes_match
        );
    }
    out.push(']');
    out
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[RowRecord],
    injected: &[RowRecord],
    totals: &circ_core::CircStats,
    cache: &AbsCache,
    par_records: &[ParRecord],
    jobs: usize,
    cores: usize,
    seq_wall: f64,
    par_wall: f64,
    timeout_secs: Option<u64>,
) -> String {
    let abs = cache.counters();
    let speedup = if par_wall > 0.0 { seq_wall / par_wall } else { 0.0 };
    format!(
        "{{\"timeout_secs\":{},\"rows\":{},\"injected\":{},\"pipeline\":{},\
         \"cache\":{{\"queries\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"entries\":{}}},\
         \"parallel\":{{\"jobs\":{},\"cores\":{},\"tasks\":{},\"replication\":{},\"seq_wall_s\":{:.6},\
         \"par_wall_s\":{:.6},\"speedup\":{:.3},\"outcomes_match\":{},\"rows\":{}}}}}\n",
        timeout_secs.map_or("null".to_string(), |t| t.to_string()),
        render_rows(rows),
        render_rows(injected),
        totals.pipeline.to_json(),
        abs.queries,
        abs.cache_hits,
        abs.cache_misses,
        abs.hit_rate(),
        cache.len(),
        jobs,
        cores,
        par_records.len(),
        PAR_REPLICATION,
        seq_wall,
        par_wall,
        speedup,
        par_records.iter().all(|r| r.outcomes_match),
        render_par_rows(par_records),
    )
}
