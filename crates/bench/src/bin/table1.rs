//! Regenerates **Table 1** of the paper: per protected variable, the
//! number of predicates CIRC discovers, the final ACFA size, and the
//! wall-clock time — side by side with the paper's reported numbers.
//!
//! ```text
//! cargo run --release -p circ-bench --bin table1
//! ```
//!
//! Absolute times differ (the paper ran BLAST + Simplify on a 2 GHz
//! IBM T30); the comparison is about *shape*: every row proves safe,
//! the counter parameter is always 1, predicate counts are small, and
//! ACFAs are an order of magnitude below the CFA size.
//!
//! Every row also runs a second time with all caching disabled and the
//! outcomes are compared — a live check of the cache's equivalence
//! guarantee. The run writes `BENCH_table1.json` with per-row times
//! (cached and uncached), pipeline counters, and cache hit rates.

use circ_core::{circ, circ_with_cache, AbsCache, CircConfig, CircOutcome};
use std::fmt::Write as _;
use std::time::Instant;

/// The verdict-relevant content of an outcome: everything except
/// statistics and timings, which legitimately differ between cached
/// and uncached runs.
fn essence(outcome: &CircOutcome) -> String {
    match outcome {
        CircOutcome::Safe(r) => {
            format!("Safe preds={:?} k={} acfa={:?}", r.preds, r.k, r.acfa)
        }
        CircOutcome::Unsafe(r) => format!("Unsafe cex={:?} k={}", r.cex, r.k),
        CircOutcome::Unknown(r) => format!("Unknown reason={:?}", r.reason),
    }
}

struct RowRecord {
    label: String,
    time_s: f64,
    uncached_time_s: f64,
    outcomes_match: bool,
}

/// Runs one program cached (against the shared cache) and uncached,
/// returning the cached outcome plus the differential record.
fn run_both(
    label: String,
    program: &circ_ir::MtProgram,
    cache: &AbsCache,
) -> (CircOutcome, RowRecord) {
    let cached_cfg = CircConfig::omega();
    let t0 = Instant::now();
    let outcome = circ_with_cache(program, &cached_cfg, cache);
    let time_s = t0.elapsed().as_secs_f64();

    let uncached_cfg = CircConfig { use_cache: false, ..CircConfig::omega() };
    let t1 = Instant::now();
    let uncached = circ(program, &uncached_cfg);
    let uncached_time_s = t1.elapsed().as_secs_f64();

    let outcomes_match = essence(&outcome) == essence(&uncached);
    (outcome, RowRecord { label, time_s, uncached_time_s, outcomes_match })
}

fn main() {
    println!("Table 1 — experimental results with CIRC (ω-CIRC mode)");
    println!("(paper columns measured on a 2 GHz IBM T30 with BLAST + Simplify)\n");
    println!(
        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
        "Name", "Variable", "Preds", "ACFA", "Time", "Preds", "ACFA", "k", "Time", "CFA locs"
    );
    println!(
        "{:-<14} {:-<14} | {:-<5} {:-<5} {:-<8} | {:-<5} {:-<5} {:-<5} {:-<10} {:-<9}",
        "", "", "", "", "", "", "", "", "", ""
    );
    let cache = AbsCache::new();
    let mut totals = circ_core::CircStats::default();
    let mut records: Vec<RowRecord> = Vec::new();
    let mut injected: Vec<RowRecord> = Vec::new();
    let mut all_ok = true;
    for m in circ_nesc::models() {
        for row in m.paper_rows {
            let program = m.program();
            let label = format!("{}/{}", row.app, row.variable);
            let (outcome, record) = run_both(label, &program, &cache);
            totals.pipeline.add(&outcome.stats().pipeline);
            match outcome {
                CircOutcome::Safe(r) => {
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
                        row.app,
                        row.variable,
                        row.preds,
                        row.acfa,
                        row.time,
                        r.preds.len(),
                        r.acfa.num_locs(),
                        r.k,
                        format!("{:.2?}", std::time::Duration::from_secs_f64(record.time_s)),
                        program.cfa().num_locs(),
                    );
                }
                other => {
                    all_ok = false;
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | UNEXPECTED: {:?}",
                        row.app, row.variable, row.preds, row.acfa, row.time, other
                    );
                }
            }
            if !record.outcomes_match {
                all_ok = false;
                println!("  !! cached and uncached outcomes differ for {}", record.label);
            }
            records.push(record);
        }
    }
    println!("\nInjected-bug variants (not in the paper's table; §6 reports such");
    println!("races being found in secureTosBase and sense before fixes):\n");
    for m in circ_nesc::models().iter().filter(|m| !m.expected_safe) {
        let program = m.program();
        let (outcome, record) = run_both(m.name.to_string(), &program, &cache);
        totals.pipeline.add(&outcome.stats().pipeline);
        match outcome {
            CircOutcome::Unsafe(r) => println!(
                "  {:<24} RACE: {} threads, {}-step schedule, concretely replayed: {} ({:.2?})",
                m.name,
                r.cex.n_threads,
                r.cex.steps.len(),
                r.cex.replay_ok,
                std::time::Duration::from_secs_f64(record.time_s),
            ),
            other => {
                all_ok = false;
                println!("  {:<24} UNEXPECTED: {other:?}", m.name);
            }
        }
        if !record.outcomes_match {
            all_ok = false;
            println!("  !! cached and uncached outcomes differ for {}", record.label);
        }
        injected.push(record);
    }

    let abs = cache.counters();
    println!("\nPipeline totals (cached runs, shared entailment cache):");
    print!("{}", totals.pipeline.render_table());
    println!(
        "\nShared cache lifetime: {} queries, {} hits / {} misses ({:.1}% hit rate), {} entries",
        abs.queries,
        abs.cache_hits,
        abs.cache_misses,
        100.0 * abs.hit_rate(),
        cache.len(),
    );
    let cached_total: f64 = records.iter().chain(&injected).map(|r| r.time_s).sum();
    let uncached_total: f64 = records.iter().chain(&injected).map(|r| r.uncached_time_s).sum();
    println!(
        "End-to-end: cached {cached_total:.3}s vs uncached {uncached_total:.3}s, all outcomes match: {}",
        records.iter().chain(&injected).all(|r| r.outcomes_match)
    );

    let json = render_json(&records, &injected, &totals, &cache);
    let out_path = "BENCH_table1.json";
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            all_ok = false;
            eprintln!("cannot write {out_path}: {e}");
        }
    }

    if !all_ok {
        std::process::exit(1);
    }
}

fn render_rows(rows: &[RowRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":{:?},\"time_s\":{:.6},\"uncached_time_s\":{:.6},\"outcomes_match\":{}}}",
            r.label, r.time_s, r.uncached_time_s, r.outcomes_match
        );
    }
    out.push(']');
    out
}

fn render_json(
    rows: &[RowRecord],
    injected: &[RowRecord],
    totals: &circ_core::CircStats,
    cache: &AbsCache,
) -> String {
    let abs = cache.counters();
    format!(
        "{{\"rows\":{},\"injected\":{},\"pipeline\":{},\
         \"cache\":{{\"queries\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"entries\":{}}}}}\n",
        render_rows(rows),
        render_rows(injected),
        totals.pipeline.to_json(),
        abs.queries,
        abs.cache_hits,
        abs.cache_misses,
        abs.hit_rate(),
        cache.len(),
    )
}
