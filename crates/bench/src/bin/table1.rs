//! Regenerates **Table 1** of the paper: per protected variable, the
//! number of predicates CIRC discovers, the final ACFA size, and the
//! wall-clock time — side by side with the paper's reported numbers.
//!
//! ```text
//! cargo run --release -p circ-bench --bin table1
//! ```
//!
//! Absolute times differ (the paper ran BLAST + Simplify on a 2 GHz
//! IBM T30); the comparison is about *shape*: every row proves safe,
//! the counter parameter is always 1, predicate counts are small, and
//! ACFAs are an order of magnitude below the CFA size.

use circ_core::{circ, CircConfig, CircOutcome};
use std::time::Instant;

fn main() {
    println!("Table 1 — experimental results with CIRC (ω-CIRC mode)");
    println!("(paper columns measured on a 2 GHz IBM T30 with BLAST + Simplify)\n");
    println!(
        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
        "Name", "Variable", "Preds", "ACFA", "Time", "Preds", "ACFA", "k", "Time", "CFA locs"
    );
    println!(
        "{:-<14} {:-<14} | {:-<5} {:-<5} {:-<8} | {:-<5} {:-<5} {:-<5} {:-<10} {:-<9}",
        "", "", "", "", "", "", "", "", "", ""
    );
    let mut all_safe = true;
    for m in circ_nesc::models() {
        for row in m.paper_rows {
            let program = m.program();
            let t0 = Instant::now();
            let outcome = circ(&program, &CircConfig::omega());
            let dt = t0.elapsed();
            match outcome {
                CircOutcome::Safe(r) => {
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | {:>5} {:>5} {:>5} {:>10} {:>9}",
                        row.app,
                        row.variable,
                        row.preds,
                        row.acfa,
                        row.time,
                        r.preds.len(),
                        r.acfa.num_locs(),
                        r.k,
                        format!("{dt:.2?}"),
                        program.cfa().num_locs(),
                    );
                }
                other => {
                    all_safe = false;
                    println!(
                        "{:<14} {:<14} | {:>5} {:>5} {:>8} | UNEXPECTED: {:?}",
                        row.app, row.variable, row.preds, row.acfa, row.time, other
                    );
                }
            }
        }
    }
    println!("\nInjected-bug variants (not in the paper's table; §6 reports such");
    println!("races being found in secureTosBase and sense before fixes):\n");
    for m in circ_nesc::models().iter().filter(|m| !m.expected_safe) {
        let program = m.program();
        let t0 = Instant::now();
        let outcome = circ(&program, &CircConfig::omega());
        let dt = t0.elapsed();
        match outcome {
            CircOutcome::Unsafe(r) => println!(
                "  {:<24} RACE: {} threads, {}-step schedule, concretely replayed: {} ({dt:.2?})",
                m.name,
                r.cex.n_threads,
                r.cex.steps.len(),
                r.cex.replay_ok
            ),
            other => {
                all_safe = false;
                println!("  {:<24} UNEXPECTED: {other:?}", m.name);
            }
        }
    }
    if !all_safe {
        std::process::exit(1);
    }
}
