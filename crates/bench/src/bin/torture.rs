//! Crash-point torture over a real corpus, as a CLI for CI smoke and
//! manual soak runs: enumerate every [`IoFaultPoint`] against a full
//! batch run and verify that the crashed run and the recovery run
//! both reproduce the undisturbed verdicts, with no staging litter
//! left behind. `--enospc` instead runs the sticky disk-full
//! scenario and prints the degrade warnings for CI to grep.
//!
//! Usage: `torture <corpus-dir> [--enospc] [--jobs N]`
//!
//! Requires `--features inject`; without it the fault plan is
//! compiled out and there is nothing to torture, so the bin exits 1
//! with an explanation rather than silently passing.

#[cfg(feature = "inject")]
fn main() -> std::process::ExitCode {
    inject::run()
}

#[cfg(not(feature = "inject"))]
fn main() -> std::process::ExitCode {
    eprintln!("torture: built without `--features inject`; the crash points are compiled out");
    std::process::ExitCode::FAILURE
}

#[cfg(feature = "inject")]
mod inject {
    use circ_batch::{collect_inputs, run_batch, BatchConfig, BatchReport};
    use circ_governor::{FaultPlan, IoFaultPoint};
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;

    fn verdict_essence(report: &BatchReport) -> String {
        report
            .rows
            .iter()
            .map(|r| format!("{}\t{:?}\t{}\t{}\n", r.file, r.verdict, r.detail, r.stage))
            .collect()
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("circ-torture-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn clone_dir(src: &Path, name: &str) -> PathBuf {
        let dst = fresh_dir(name);
        for entry in fs::read_dir(src).unwrap().flatten() {
            let from = entry.path();
            if from.is_file() {
                fs::copy(&from, dst.join(entry.file_name())).unwrap();
            }
        }
        dst
    }

    fn config(cache_dir: &Path, faults: FaultPlan, jobs: usize) -> BatchConfig {
        BatchConfig {
            cache_dir: Some(cache_dir.to_path_buf()),
            journal: Some(cache_dir.join("run.journal")),
            jobs,
            faults,
            ..BatchConfig::default()
        }
    }

    fn tmp_litter(dir: &Path) -> Vec<String> {
        fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(circ_store::TMP_SUFFIX))
            .collect()
    }

    pub fn run() -> ExitCode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut corpus = None;
        let mut enospc = false;
        let mut jobs = 1usize;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--enospc" => enospc = true,
                "--jobs" => {
                    jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("torture: --jobs needs a number");
                        std::process::exit(2);
                    })
                }
                other => corpus = Some(other.to_string()),
            }
        }
        let Some(corpus) = corpus else {
            eprintln!("usage: torture <corpus-dir> [--enospc] [--jobs N]");
            return ExitCode::from(2);
        };
        let inputs = match collect_inputs(Path::new(&corpus)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("torture: {e}");
                return ExitCode::from(2);
            }
        };

        // The undisturbed reference, and a warm seed directory every
        // torture case clones its starting state from.
        let seed_dir = fresh_dir("seed");
        let reference = run_batch(&inputs, &config(&seed_dir, FaultPlan::inert(), jobs));
        let essence = verdict_essence(&reference);
        println!(
            "torture: reference over {} file(s): {} safe, {} race(s)",
            reference.totals.files, reference.totals.safe, reference.totals.races
        );

        if enospc {
            return run_enospc(&inputs, &seed_dir, jobs);
        }

        let mut failed = false;
        for point in IoFaultPoint::ALL {
            let dir = clone_dir(&seed_dir, point.name());
            let crashed = run_batch(
                &inputs,
                &config(&dir, FaultPlan::seeded(21).with_io_fault(point, 0), jobs),
            );
            let recovery = run_batch(&inputs, &config(&dir, FaultPlan::inert(), jobs));
            let litter = tmp_litter(&dir);
            let crashed_ok = verdict_essence(&crashed) == essence;
            let recovery_ok = verdict_essence(&recovery) == essence && litter.is_empty();
            println!(
                "torture: point={:14} crashed_verdicts={} recovery={} recoveries={} flush_errors={}",
                point.name(),
                if crashed_ok { "identical" } else { "CHANGED" },
                if recovery_ok { "clean" } else { "DIRTY" },
                recovery.totals.pipeline.store_recoveries,
                crashed.totals.pipeline.flush_errors,
            );
            failed |= !crashed_ok || !recovery_ok;
        }
        if failed {
            eprintln!("torture: FAILED — some crash point changed a verdict or left litter");
            return ExitCode::FAILURE;
        }
        println!(
            "torture: all {} crash points recovered with identical verdicts",
            IoFaultPoint::ALL.len()
        );
        ExitCode::SUCCESS
    }

    fn run_enospc(inputs: &[PathBuf], seed_dir: &Path, jobs: usize) -> ExitCode {
        let dir = clone_dir(seed_dir, "enospc");
        // Snapshot artifacts only: the journal is legitimately
        // truncated by the fresh (non-resume) run.
        let before: Vec<(String, String)> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                e.path().is_file() && (name.ends_with(".cache") || name.ends_with(".store"))
            })
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    fs::read_to_string(e.path()).unwrap(),
                )
            })
            .collect();
        let crashed = run_batch(
            inputs,
            &config(&dir, FaultPlan::seeded(21).with_io_fault(IoFaultPoint::NoSpace, 0), jobs),
        );
        for w in &crashed.warnings {
            println!("torture: warning: {w}");
        }
        let intact = before
            .iter()
            .all(|(name, text)| fs::read_to_string(dir.join(name)).ok().as_deref() == Some(text));
        let essence_ok = verdict_essence(&crashed)
            == verdict_essence(&run_batch(inputs, &config(seed_dir, FaultPlan::inert(), jobs)));
        println!(
            "torture: enospc verdicts={} previous_snapshots={} flush_errors={}",
            if essence_ok { "identical" } else { "CHANGED" },
            if intact { "intact" } else { "DAMAGED" },
            crashed.totals.pipeline.flush_errors,
        );
        if intact && essence_ok && crashed.totals.pipeline.flush_errors > 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!("torture: FAILED — disk-full flush must degrade to a logged no-persist");
            ExitCode::FAILURE
        }
    }
}
