//! Dump the CIRC event log for one benchmark model.
//! Usage: `inspect <circ-or-omega> <model-name>`.
use circ_core::{circ, CircConfig, CircEvent, CircOutcome};

fn main() {
    let m =
        circ_nesc::model(&std::env::args().nth(2).unwrap_or_else(|| "split_phase".into())).unwrap();
    let program = m.program();
    let mode = std::env::args().nth(1).unwrap_or_default();
    let cfg = if mode == "omega" { CircConfig::omega() } else { CircConfig::default() };
    let outcome = circ(&program, &cfg);
    for e in &outcome.log().events {
        match e {
            CircEvent::OuterStart { preds, k } => println!("== OUTER preds={preds:?} k={k}"),
            CircEvent::ReachDone { arg, arg_locs } => {
                println!("-- reach done ({arg_locs} locs)\n{arg}")
            }
            CircEvent::SimChecked { holds } => println!("-- sim: {holds}"),
            CircEvent::Collapsed { acfa, size } => println!("-- collapsed ({size}):\n{acfa}"),
            CircEvent::AbstractRace { trace_len } => println!("-- ABSTRACT RACE len={trace_len}"),
            CircEvent::Refined { verdict, detail } => {
                println!("-- refined: {verdict}");
                println!("   interleaving: {:?}", detail.interleaving);
                println!("   tf: {:?}", detail.trace_formula);
                println!("   mined: {:?}", detail.mined_preds);
            }
            CircEvent::OmegaCheck { good } => println!("-- omega check: {good}"),
        }
    }
    match outcome {
        CircOutcome::Safe(_) => println!("VERDICT SAFE"),
        CircOutcome::Unsafe(r) => {
            println!("VERDICT UNSAFE replay={} steps={:?}", r.cex.replay_ok, r.cex.steps)
        }
        CircOutcome::Unknown(r) => println!("VERDICT UNKNOWN {:?}", r.reason),
    }
}
