//! Reproduces the paper's §1/§6 comparison claim: lockset-based and
//! flow-based race checkers **false-positive** on state-variable
//! synchronization idioms that CIRC proves race-free — and all three
//! agree on genuinely racy code.
//!
//! ```text
//! cargo run --release -p circ-bench --bin baselines
//! ```

use circ_baselines::{eraser, flow_check};
use circ_core::{circ, CircConfig, CircOutcome};

fn main() {
    println!("Baseline comparison: flow-based (nesC-style) and lockset (Eraser-style)");
    println!("vs. CIRC, on the benchmark idioms.\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>16}",
        "model", "flow", "lockset", "CIRC", "ground truth"
    );
    println!("{:-<24} {:-<10} {:-<10} {:-<10} {:-<16}", "", "", "", "", "");

    let mut false_positives = 0;
    for m in circ_nesc::models() {
        let program = m.program();
        let x = program.race_var();

        let flow = flow_check(program.cfa());
        let flow_says = if flow.flags(x) { "RACE?" } else { "clean" };

        let dynamic = eraser(&program, 3, 400, 10, 11);
        let lockset_says = if dynamic.flags(x) { "RACE?" } else { "clean" };

        let circ_outcome = circ(&program, &CircConfig::omega());
        let circ_says = match &circ_outcome {
            CircOutcome::Safe(_) => "SAFE",
            CircOutcome::Unsafe(_) => "RACE",
            CircOutcome::Unknown(_) => "?",
        };
        let truth = if m.expected_safe { "race-free" } else { "has a race" };
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>16}",
            m.name, flow_says, lockset_says, circ_says, truth
        );
        if m.expected_safe && (flow.flags(x) || dynamic.flags(x)) {
            false_positives += 1;
        }
    }
    println!(
        "\n{false_positives} safe idiom(s) false-positived by at least one baseline; \
         CIRC proves each of them race-free."
    );
}
