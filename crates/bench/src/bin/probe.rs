//! Quick probe: run CIRC (both modes) over every benchmark model.
use circ_core::{circ, CircConfig, CircOutcome};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args.get(1).cloned().unwrap_or_default();
    for m in circ_nesc::models() {
        if !m.name.contains(&filter) {
            continue;
        }
        for (mode, cfg) in [("circ", CircConfig::default()), ("omega", CircConfig::omega())] {
            let program = m.program();
            let t0 = Instant::now();
            let outcome = circ(&program, &cfg);
            let dt = t0.elapsed();
            let verdict = match &outcome {
                CircOutcome::Safe(r) => format!(
                    "SAFE preds={} acfa={} k={} outer={} reach={} q={}",
                    r.preds.len(),
                    r.acfa.num_locs(),
                    r.k,
                    r.stats.outer_iterations,
                    r.stats.reach_runs,
                    r.stats.smt_queries
                ),
                CircOutcome::Unsafe(r) => format!(
                    "UNSAFE threads={} steps={} replay={}",
                    r.cex.n_threads,
                    r.cex.steps.len(),
                    r.cex.replay_ok
                ),
                CircOutcome::Unknown(r) => format!("UNKNOWN {:?}", r.reason),
            };
            let expect = if m.expected_safe { "safe" } else { "racy" };
            println!("{:24} [{:5}] ({expect})  {dt:>10.2?}  {verdict}", m.name, mode);
        }
    }
}
