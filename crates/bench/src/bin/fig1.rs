//! Regenerates **Figure 1** of the paper: (a) the test-and-set thread
//! source, (b) its control flow automaton, and (c) the final inferred
//! abstract control flow automaton (the context model that proves
//! race freedom).
//!
//! ```text
//! cargo run --release -p circ-bench --bin fig1 [--dot]
//! ```

use circ_core::{circ, CircConfig, CircOutcome};
use circ_ir::{dot, figure1_cfa, MtProgram};

fn main() {
    let want_dot = std::env::args().any(|a| a == "--dot");

    println!("=== Figure 1(a): the test-and-set thread ===\n");
    println!("{}", circ_nesc::TEST_AND_SET.trim());

    let cfa = figure1_cfa();
    println!("\n=== Figure 1(b): its control flow automaton ===\n");
    if want_dot {
        println!("{}", dot::cfa_to_dot(&cfa));
    } else {
        println!("{}", dot::cfa_to_text(&cfa));
    }

    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa.clone(), x);
    let outcome = circ(&program, &CircConfig::default());
    let CircOutcome::Safe(report) = outcome else {
        eprintln!("unexpected: figure 1 did not verify: {outcome:?}");
        std::process::exit(1);
    };
    println!("=== Figure 1(c): the inferred abstract CFA (final context model) ===\n");
    let preds = report.preds.clone();
    let acfa_text = report.acfa.display_with(
        &|i| {
            let mut s = format!("{}", preds[i.index()]);
            for (ix, vi) in cfa.vars().iter().enumerate() {
                s = s.replace(&format!("v{ix}"), &vi.name);
            }
            s
        },
        &|v| cfa.var_name(v).to_string(),
    );
    println!("{acfa_text}");
    println!(
        "discovered predicates: {}",
        preds
            .iter()
            .map(|p| {
                let mut s = format!("{p}");
                for (ix, vi) in cfa.vars().iter().enumerate() {
                    s = s.replace(&format!("v{ix}"), &vi.name);
                }
                s
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("counter parameter k = {}", report.k);
    println!("\nVerdict: no races on `x` for arbitrarily many threads (Theorem 1).");
}
