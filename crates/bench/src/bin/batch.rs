//! Cold-vs-warm-vs-resumed batch differential: runs the `examples/`
//! corpus through `circ_batch::run_batch` three times — cold (building
//! the persistent entailment and solver caches), warm (restarting from
//! them), and resumed (replaying a journal written by the warm run) —
//! and appends one JSON line to `BENCH_batch.json` with all three wall
//! times and the cache counters.
//!
//! ```text
//! cargo run --release -p circ-bench --bin batch [-- --jobs N]
//! ```
//!
//! The process exits 1 if the warm or resumed run's verdicts differ
//! from the cold run's in any way, if warming did not strictly reduce
//! entailment-cache misses, or if the resumed run re-checked anything
//! — any of these would mean the persistence or journal layer is
//! changing or failing to do its one job.
//!
//! The cold run also populates the predicate store (`preds.store`),
//! which the warm run seeds from; a `{"bench":"pred-store",...}` row
//! comparing cold-vs-warm refinement rounds and wall time (with the
//! verdict-essence equality check) is appended to `BENCH_table1.json`.
//! The process exits 1 if seeding did not strictly reduce total
//! refinement rounds or changed any row's verdict essence.
//!
//! Finally, a fourth run repeats the cold configuration with
//! `--triage`: the cheap stages must decide some variables (strictly
//! fewer CIRC invocations than the one-per-race-variable full run)
//! while every row's verdict stays identical. The differential is
//! appended as a `{"bench":"triage",...}` row to `BENCH_table1.json`,
//! and the process exits 1 if triage changed a verdict or failed to
//! absorb any engine runs.

use circ_batch::{collect_inputs, run_batch, BatchConfig, BatchReport};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn verdicts(report: &BatchReport) -> Vec<(String, &'static str)> {
    report.rows.iter().map(|r| (r.file.clone(), r.verdict.name())).collect()
}

/// The verdict essence of a report: per row, everything except wall
/// times and counters. Predicate-store seeding must leave this
/// byte-identical — it may only make runs faster.
fn essence(report: &BatchReport) -> Vec<(String, &'static str, String)> {
    report.rows.iter().map(|r| (r.file.clone(), r.verdict.name(), r.detail.clone())).collect()
}

fn main() {
    let mut jobs = 1usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => jobs = n,
                _ => {
                    eprintln!("--jobs expects a number (usage: batch [--jobs N])");
                    std::process::exit(64);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (usage: batch [--jobs N])");
                std::process::exit(64);
            }
        }
    }

    let examples = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let inputs = collect_inputs(&examples).expect("examples corpus");
    let cache_dir = std::env::temp_dir().join(format!("circ-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cfg = BatchConfig { jobs, cache_dir: Some(cache_dir.clone()), ..BatchConfig::default() };

    let t0 = Instant::now();
    let cold = run_batch(&inputs, &cfg);
    let cold_time = t0.elapsed().as_secs_f64();
    // The warm run also writes the journal the resumed run replays.
    let journal = cache_dir.join("bench-journal.jsonl");
    let warm_cfg = BatchConfig { journal: Some(journal.clone()), ..cfg.clone() };
    let t1 = Instant::now();
    let warm = run_batch(&inputs, &warm_cfg);
    let warm_time = t1.elapsed().as_secs_f64();
    let resumed_cfg = BatchConfig { resume: true, ..warm_cfg };
    let t2 = Instant::now();
    let resumed = run_batch(&inputs, &resumed_cfg);
    let resumed_time = t2.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&cache_dir);

    for w in cold.warnings.iter().chain(&warm.warnings).chain(&resumed.warnings) {
        eprintln!("warning: {w}");
    }

    let cold_misses = cold.totals.pipeline.abs.cache_misses;
    let warm_misses = warm.totals.pipeline.abs.cache_misses;
    let cache = warm.cache.as_ref().expect("cache dir was set");
    let line = format!(
        "{{\"bench\":\"batch\",\"files\":{},\"jobs\":{jobs},\
         \"cold_time_s\":{cold_time:.4},\"warm_time_s\":{warm_time:.4},\
         \"resumed_time_s\":{resumed_time:.4},\
         \"cold_abs_misses\":{cold_misses},\"warm_abs_misses\":{warm_misses},\
         \"cold_abs_hit_rate\":{:.4},\"warm_abs_hit_rate\":{:.4},\
         \"cold_solver_misses\":{},\"warm_solver_misses\":{},\
         \"abs_entries\":{},\"solver_entries\":{},\
         \"rows_resumed\":{},\"verdicts_match\":{}}}",
        inputs.len(),
        cold.totals.pipeline.abs.hit_rate(),
        warm.totals.pipeline.abs.hit_rate(),
        cold.totals.pipeline.solver.cache_misses,
        warm.totals.pipeline.solver.cache_misses,
        cache.abs_seeded,
        cache.solver_seeded,
        resumed.totals.resumed,
        verdicts(&cold) == verdicts(&warm) && verdicts(&cold) == verdicts(&resumed),
    );
    let out_path = "BENCH_batch.json";
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
        .expect("open BENCH_batch.json");
    writeln!(f, "{line}").expect("append BENCH_batch.json");
    println!("{line}");
    println!("appended to {out_path}");

    if verdicts(&cold) != verdicts(&warm) {
        eprintln!("FAIL: warm verdicts differ from cold");
        std::process::exit(1);
    }
    if warm_misses >= cold_misses {
        eprintln!(
            "FAIL: warm run missed {warm_misses} times, cold {cold_misses} — cache not warming"
        );
        std::process::exit(1);
    }
    if verdicts(&cold) != verdicts(&resumed) {
        eprintln!("FAIL: resumed verdicts differ from cold");
        std::process::exit(1);
    }
    if resumed.totals.resumed as usize != inputs.len() {
        eprintln!(
            "FAIL: resumed run replayed {} of {} rows — journal not resuming",
            resumed.totals.resumed,
            inputs.len()
        );
        std::process::exit(1);
    }

    // ---- predicate-store differential ---------------------------------
    // The cold run populated `preds.store`; the warm run re-checked the
    // same corpus seeded from it. Seeding must cut refinement rounds
    // while leaving every row's verdict essence byte-identical.
    let cold_refine = cold.totals.pipeline.refine_rounds;
    let warm_refine = warm.totals.pipeline.refine_rounds;
    let essence_match = essence(&cold) == essence(&warm);
    let pred_line = format!(
        "{{\"bench\":\"pred-store\",\"files\":{},\"jobs\":{jobs},\
         \"cold_time_s\":{cold_time:.4},\"warm_time_s\":{warm_time:.4},\
         \"cold_refine_rounds\":{cold_refine},\"warm_refine_rounds\":{warm_refine},\
         \"preds_seeded\":{},\"refine_rounds_saved\":{},\
         \"essence_match\":{essence_match}}}",
        inputs.len(),
        warm.totals.pipeline.preds_seeded,
        warm.totals.pipeline.refine_rounds_saved,
    );
    let table1_path = "BENCH_table1.json";
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(table1_path)
        .expect("open BENCH_table1.json");
    writeln!(f, "{pred_line}").expect("append BENCH_table1.json");
    println!("{pred_line}");
    println!("appended to {table1_path}");

    if !essence_match {
        eprintln!("FAIL: predicate-store seeding changed a row's verdict essence");
        std::process::exit(1);
    }
    if warm_refine >= cold_refine {
        eprintln!(
            "FAIL: warm run refined {warm_refine} rounds, cold {cold_refine} — store not seeding"
        );
        std::process::exit(1);
    }

    // ---- triage differential ------------------------------------------
    // Re-run the cold configuration (fresh caches) with the tiered
    // triage pipeline in front of the engine. The stage counters
    // partition the corpus's race variables, so the full run's CIRC
    // invocation count is their sum and the triaged run's is the
    // fallthrough count alone.
    let triage_dir = std::env::temp_dir().join(format!("circ-bench-triage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&triage_dir);
    let triage_cfg = BatchConfig {
        jobs,
        cache_dir: Some(triage_dir.clone()),
        triage: true,
        ..BatchConfig::default()
    };
    let t3 = Instant::now();
    let triaged = run_batch(&inputs, &triage_cfg);
    let triage_time = t3.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&triage_dir);
    for w in &triaged.warnings {
        eprintln!("warning: {w}");
    }

    let stage0 = triaged.totals.pipeline.triage_stage0_decided;
    let stage1 = triaged.totals.pipeline.triage_stage1_decided;
    let fallthrough = triaged.totals.pipeline.triage_fallthrough;
    let race_vars = stage0 + stage1 + fallthrough;
    let verdicts_match = verdicts(&cold) == verdicts(&triaged);
    let triage_line = format!(
        "{{\"bench\":\"triage\",\"files\":{},\"jobs\":{jobs},\
         \"full_time_s\":{cold_time:.4},\"triage_time_s\":{triage_time:.4},\
         \"race_vars\":{race_vars},\"full_circ_invocations\":{race_vars},\
         \"triage_circ_invocations\":{fallthrough},\
         \"stage0_decided\":{stage0},\"stage1_decided\":{stage1},\
         \"fallthrough\":{fallthrough},\"verdicts_match\":{verdicts_match}}}",
        inputs.len(),
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(table1_path)
        .expect("open BENCH_table1.json");
    writeln!(f, "{triage_line}").expect("append BENCH_table1.json");
    println!("{triage_line}");
    println!("appended to {table1_path}");

    if !verdicts_match {
        eprintln!("FAIL: triage changed a verdict");
        std::process::exit(1);
    }
    if fallthrough >= race_vars {
        eprintln!(
            "FAIL: triage fell through on all {race_vars} race variables — \
             the cheap stages decided nothing"
        );
        std::process::exit(1);
    }
}
