//! Regenerates **Figure 5** of the paper: the refinement artifacts of
//! an interleaving-infeasible abstract counterexample — the abstract
//! trace's concrete interleaving, the trace formula whose
//! unsatisfiability proves it spurious, and the predicates mined from
//! the proof.
//!
//! ```text
//! cargo run --release -p circ-bench --bin fig5
//! ```

use circ_core::{circ, CircConfig, CircEvent};
use circ_ir::{figure1_cfa, MtProgram};

fn main() {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa.clone(), x);
    let outcome = circ(&program, &CircConfig::default());

    // Pick the refinement round whose interleaving involves at least
    // two threads — the analog of the paper's iteration 4, where the
    // per-thread paths are feasible but their composition is not.
    let mut shown = false;
    for e in &outcome.log().events {
        if let CircEvent::Refined { verdict, detail } = e {
            let threads: std::collections::BTreeSet<usize> =
                detail.interleaving.iter().map(|(t, _)| *t).collect();
            if threads.len() < 2 || detail.mined_preds.is_empty() {
                continue;
            }
            println!("=== Figure 5: refining an interleaving-infeasible trace ===\n");
            println!("Refine verdict: {verdict}\n");
            println!("-- concrete interleaving (thread: CFA operation) --");
            for (tag, eid) in &detail.interleaving {
                let edge = cfa.edge(*eid);
                let mut op = format!("{}", edge.op);
                for (ix, vi) in cfa.vars().iter().enumerate() {
                    op = op.replace(&format!("v{ix}"), &vi.name);
                }
                let who = if *tag == 0 { "T0 (main)".to_string() } else { format!("T{tag}") };
                println!("  {who:10}  {op}");
            }
            println!("\n-- trace formula (conjunction of SSA clauses) --");
            for c in &detail.trace_formula {
                if c != "true" {
                    println!("  {c}");
                }
            }
            println!("\n-- unsatisfiable ⇒ spurious; predicates mined from the proof --");
            for p in &detail.mined_preds {
                let mut s = format!("{p}");
                for (ix, vi) in cfa.vars().iter().enumerate() {
                    s = s.replace(&format!("v{ix}"), &vi.name);
                }
                println!("  {s}");
            }
            shown = true;
            break;
        }
    }
    if !shown {
        // Fall back to the first refinement with mined predicates.
        for e in &outcome.log().events {
            if let CircEvent::Refined { verdict, detail } = e {
                if detail.mined_preds.is_empty() {
                    continue;
                }
                println!("=== Figure 5 (path-infeasibility round) ===");
                println!("Refine verdict: {verdict}");
                println!("interleaving: {:?}", detail.interleaving);
                println!("trace formula: {:?}", detail.trace_formula);
                println!("mined: {:?}", detail.mined_preds);
                shown = true;
                break;
            }
        }
    }
    if !shown {
        eprintln!("no refinement round found (unexpected)");
        std::process::exit(1);
    }
    assert!(outcome.is_safe(), "figure 1 must verify");
}
