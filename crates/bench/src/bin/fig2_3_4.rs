//! Regenerates **Figures 2–4** of the paper: the iteration-by-
//! iteration abstract reachability graphs (`G1`, `G3`, `G5`) and
//! their bisimulation-minimized context ACFAs (`A1`, `A3`, `A5`)
//! produced while CIRC runs on the Figure 1 example.
//!
//! ```text
//! cargo run --release -p circ-bench --bin fig2_3_4
//! ```

use circ_core::{circ, CircConfig, CircEvent, CircOutcome};
use circ_ir::{figure1_cfa, MtProgram};

fn main() {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::default());

    let mut outer = 0usize;
    let mut reach_in_outer = 0usize;
    for e in &outcome.log().events {
        match e {
            CircEvent::OuterStart { preds, k } => {
                outer += 1;
                reach_in_outer = 0;
                println!("================================================================");
                println!("Iteration {outer}:  P = {{{}}},  k = {k}", preds.join(", "));
                println!("================================================================");
            }
            CircEvent::ReachDone { arg, arg_locs } => {
                reach_in_outer += 1;
                println!(
                    "\n--- ARG G (outer {outer}, inner round {reach_in_outer}; {arg_locs} locations) ---"
                );
                println!("{arg}");
            }
            CircEvent::SimChecked { holds } => {
                println!(
                    "guarantee check G ⪯ A: {}",
                    if *holds {
                        "HOLDS — context model is sound"
                    } else {
                        "fails — weaken the context"
                    }
                );
            }
            CircEvent::Collapsed { acfa, size } => {
                println!("\n--- Collapse: minimized ACFA A ({size} locations) ---");
                println!("{acfa}");
            }
            CircEvent::AbstractRace { trace_len } => {
                println!("\n!! abstract race reached ({trace_len}-step abstract trace)");
            }
            CircEvent::Refined { verdict, .. } => {
                println!("   Refine: {verdict}");
            }
            CircEvent::OmegaCheck { good } => {
                println!("   ω-goodness check: {good}");
            }
        }
    }
    match outcome {
        CircOutcome::Safe(r) => println!(
            "\nFinal verdict: SAFE with {} predicates, ACFA of {} locations, k = {}.",
            r.preds.len(),
            r.acfa.num_locs(),
            r.k
        ),
        other => {
            eprintln!("unexpected outcome: {other:?}");
            std::process::exit(1);
        }
    }
}
