//! Demonstrates **Appendix A**: counter-guided parameterized
//! verification of finite-state threads (Algorithm 6) — termination
//! and completeness on a family of lock/barrier models, with the
//! counter parameter growing exactly as far as the counterexamples
//! force it.
//!
//! ```text
//! cargo run --release -p circ-bench --bin appendix_a
//! ```

use circ_explicit::{race_error, verify, CounterState, FiniteThread, Transition, Verdict};
use std::time::Instant;

/// Test-and-set lock with an `n`-step critical section.
fn tas_lock(n: u32) -> FiniteThread {
    let mut t = FiniteThread::new(n + 2, vec![2, 2]);
    t.add(Transition::new(0, 1).guard(0, 0).update(0, 1));
    for i in 1..=n {
        t.add(Transition::new(i, i + 1).update(1, 1));
    }
    t.add(Transition::new(n + 1, 0).update(0, 0));
    t
}

/// The same lock without the acquire guard: racy.
fn broken_lock(n: u32) -> FiniteThread {
    let mut t = FiniteThread::new(n + 2, vec![2, 2]);
    t.add(Transition::new(0, 1).update(0, 1));
    for i in 1..=n {
        t.add(Transition::new(i, i + 1).update(1, 1));
    }
    t.add(Transition::new(n + 1, 0).update(0, 0));
    t
}

/// A gathering protocol: the error needs `m` threads to arrive.
fn gather(m: u32) -> (FiniteThread, impl Fn(&CounterState) -> bool) {
    let mut t = FiniteThread::new(2, vec![m + 1]);
    for i in 0..m {
        t.add(Transition::new(0, 1).guard(0, i).update(0, i + 1));
    }
    (t, move |s: &CounterState| s.globals[0] == m)
}

fn main() {
    println!("Appendix A — Algorithm 6 (counter-guided parameterized verification)\n");
    println!("{:<26} {:>9} {:>8} {:>9} {:>12}", "model", "verdict", "final k", "states", "time");
    println!("{:-<26} {:-<9} {:-<8} {:-<9} {:-<12}", "", "", "", "", "");

    for n in [1u32, 2, 4, 8] {
        let t = tas_lock(n);
        let t0 = Instant::now();
        let v = verify(&t, &race_error(&t, 1), 64, 5_000_000);
        print_row(&format!("tas_lock(cs={n})"), &v, t0.elapsed());
    }
    for n in [1u32, 2, 4] {
        let t = broken_lock(n);
        let t0 = Instant::now();
        let v = verify(&t, &race_error(&t, 1), 64, 5_000_000);
        print_row(&format!("broken_lock(cs={n})"), &v, t0.elapsed());
    }
    // k must grow linearly with the gathering size: the completeness
    // loop in action (Lemma 2: a length-m counterexample is genuine
    // once k ≥ m).
    for m in [2u32, 4, 8, 16] {
        let (t, err) = gather(m);
        let t0 = Instant::now();
        let v = verify(&t, &err, 64, 5_000_000);
        print_row(&format!("gather(m={m})"), &v, t0.elapsed());
        if let Verdict::Unsafe { k, trace } = &v {
            assert_eq!(trace.len() as u32 - 1, m, "trace gathers exactly m threads");
            assert!(*k >= m, "counter grew to cover the trace");
        }
    }
}

fn print_row(name: &str, v: &Verdict, dt: std::time::Duration) {
    match v {
        Verdict::Safe { k, states } => println!(
            "{:<26} {:>9} {:>8} {:>9} {:>12}",
            name,
            "SAFE",
            k,
            states,
            format!("{dt:.2?}")
        ),
        Verdict::Unsafe { k, trace } => println!(
            "{:<26} {:>9} {:>8} {:>9} {:>12}",
            name,
            "UNSAFE",
            k,
            format!("|t|={}", trace.len() - 1),
            format!("{dt:.2?}")
        ),
        Verdict::Exhausted { k } => {
            println!("{:<26} {:>9} {:>8}", name, "EXHAUSTED", k)
        }
    }
}
