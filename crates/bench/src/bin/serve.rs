//! Daemon-vs-spawn differential: checks the `examples/` corpus N
//! times as N×files separate `circ check` process spawns (every one a
//! cold start) and as N requests against one resident `circ serve`
//! daemon (whose master caches stay warm across requests), and
//! appends one `{"bench":"serve",...}` JSON line to `BENCH_batch.json`
//! with both wall times and entailment-cache miss counts.
//!
//! ```text
//! cargo run --release -p circ-bench --bin serve [-- --passes N]
//! ```
//!
//! The process exits 1 unless the daemon route is *strictly* cheaper
//! on re-checks — less total wall time and fewer entailment-cache
//! misses than the spawn route — and every daemon verdict agrees with
//! the spawned checker's exit code. Needs the `circ` binary next to
//! this one (`cargo build --release -p circ-cli`) or named by the
//! `CIRC_BIN` environment variable.

#[cfg(unix)]
fn main() {
    unix::main()
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the serve bench drives a unix-domain socket; this platform has none");
}

#[cfg(unix)]
mod unix {
    use circ_batch::mjson::{self, Value};
    use std::io::{BufRead, BufReader, Write as _};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    fn circ_bin() -> PathBuf {
        if let Ok(p) = std::env::var("CIRC_BIN") {
            return PathBuf::from(p);
        }
        let exe = std::env::current_exe().expect("current exe");
        let sibling = exe.parent().expect("exe dir").join("circ");
        if sibling.exists() {
            return sibling;
        }
        eprintln!(
            "cannot find the `circ` binary next to this one \
             (build circ-cli in the same profile, or set CIRC_BIN)"
        );
        std::process::exit(74);
    }

    /// One request → one response on a fresh connection.
    fn roundtrip(socket: &std::path::Path, request: &str) -> Value {
        let mut conn = UnixStream::connect(socket).expect("connect to daemon");
        writeln!(conn, "{request}").expect("send request");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("read response");
        mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    pub fn main() {
        let mut passes = 3usize;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--passes" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 2 => passes = n,
                    _ => {
                        eprintln!("--passes expects a number >= 2 (usage: serve [--passes N])");
                        std::process::exit(64);
                    }
                },
                other => {
                    eprintln!("unknown flag `{other}` (usage: serve [--passes N])");
                    std::process::exit(64);
                }
            }
        }

        let bin = circ_bin();
        let examples = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
        let inputs = circ_batch::collect_inputs(&examples).expect("examples corpus");

        // ---- spawn route: passes × files cold processes ---------------
        // Every spawn starts with empty caches, so its `--json` stats
        // line reports the full cold miss count each time.
        let mut spawn_verdicts: Vec<(String, &'static str)> = Vec::new();
        let mut spawn_misses = 0u64;
        let t0 = Instant::now();
        for pass in 0..passes {
            for input in &inputs {
                let out = Command::new(&bin)
                    .args(["check", input.to_str().expect("utf-8 path"), "--json"])
                    .output()
                    .expect("spawn circ check");
                let code = out.status.code().unwrap_or(-1);
                let verdict = match code {
                    0 => "safe",
                    1 => "race",
                    other => {
                        eprintln!(
                            "FAIL: `circ check {}` exited {other}: {}",
                            input.display(),
                            String::from_utf8_lossy(&out.stderr)
                        );
                        std::process::exit(1);
                    }
                };
                if pass == 0 {
                    spawn_verdicts.push((input.display().to_string(), verdict));
                }
                for line in String::from_utf8_lossy(&out.stdout).lines() {
                    if let Ok(v) = mjson::parse(line.trim()) {
                        if let Some(m) = v.get("abs_cache_misses").and_then(Value::as_u64) {
                            spawn_misses += m;
                        }
                    }
                }
            }
        }
        let spawn_time = t0.elapsed().as_secs_f64();

        // ---- daemon route: one resident server, passes requests -------
        let socket =
            std::env::temp_dir().join(format!("circ-bench-serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let mut daemon = Command::new(&bin)
            .args(["serve", "--socket", socket.to_str().expect("utf-8 socket path")])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn circ serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(&socket).is_err() {
            if Instant::now() >= deadline {
                let _ = daemon.kill();
                eprintln!("FAIL: daemon never came up on {}", socket.display());
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let request = format!(
            "{{\"op\":\"check\",\"path\":\"{}\"}}",
            circ_batch::json_escape(examples.to_str().expect("utf-8 examples path"))
        );
        let t1 = Instant::now();
        let mut daemon_verdicts: Vec<(String, String)> = Vec::new();
        for pass in 0..passes {
            let response = roundtrip(&socket, &request);
            let Some(Value::Arr(rows)) = response.get("rows") else {
                eprintln!("FAIL: daemon response has no rows: {response:?}");
                std::process::exit(1);
            };
            let verdicts: Vec<(String, String)> = rows
                .iter()
                .map(|r| {
                    (
                        r.get("file").and_then(Value::as_str).expect("file").to_string(),
                        r.get("verdict").and_then(Value::as_str).expect("verdict").to_string(),
                    )
                })
                .collect();
            if pass == 0 {
                daemon_verdicts = verdicts;
            } else if daemon_verdicts != verdicts {
                eprintln!("FAIL: daemon verdicts changed between passes");
                std::process::exit(1);
            }
        }
        let daemon_time = t1.elapsed().as_secs_f64();
        let stats = roundtrip(&socket, "{\"op\":\"stats\"}");
        let daemon_misses = stats
            .get("stats")
            .and_then(|s| s.get("service"))
            .and_then(|s| s.get("totals"))
            .and_then(|t| t.get("pipeline"))
            .and_then(|p| p.get("abs_cache_misses"))
            .and_then(Value::as_u64)
            .expect("abs_cache_misses in stats payload");
        let term = Command::new("kill").args(["-TERM", &daemon.id().to_string()]).status().unwrap();
        assert!(term.success());
        let status = daemon.wait().expect("daemon exit");
        if status.code() != Some(3) {
            eprintln!("FAIL: daemon drain exited {:?}, want 3", status.code());
            std::process::exit(1);
        }

        // The two routes must agree on every verdict.
        let verdicts_match = spawn_verdicts.len() == daemon_verdicts.len()
            && spawn_verdicts
                .iter()
                .zip(&daemon_verdicts)
                .all(|((sf, sv), (df, dv))| sf == df && sv == dv);

        let daemon_cheaper = daemon_time < spawn_time && daemon_misses < spawn_misses;
        let line = format!(
            "{{\"bench\":\"serve\",\"files\":{},\"passes\":{passes},\
             \"spawn_time_s\":{spawn_time:.4},\"daemon_time_s\":{daemon_time:.4},\
             \"spawn_abs_misses\":{spawn_misses},\"daemon_abs_misses\":{daemon_misses},\
             \"verdicts_match\":{verdicts_match},\"daemon_cheaper\":{daemon_cheaper}}}",
            inputs.len(),
        );
        let out_path = "BENCH_batch.json";
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(out_path)
            .expect("open BENCH_batch.json");
        writeln!(f, "{line}").expect("append BENCH_batch.json");
        println!("{line}");
        println!("appended to {out_path}");

        if !verdicts_match {
            eprintln!(
                "FAIL: daemon verdicts differ from spawned checks: \
                 {daemon_verdicts:?} vs {spawn_verdicts:?}"
            );
            std::process::exit(1);
        }
        if !daemon_cheaper {
            eprintln!(
                "FAIL: daemon must be strictly cheaper on re-checks — \
                 time {daemon_time:.4}s vs {spawn_time:.4}s, \
                 misses {daemon_misses} vs {spawn_misses}"
            );
            std::process::exit(1);
        }
    }
}
