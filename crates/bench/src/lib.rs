//! Shared helpers for the CIRC benchmark harness (see the `bin/` targets and `benches/`).
