//! Counter-guided parameterized verification of finite-state threads
//! — Appendix A of *"Race Checking by Context Inference"* (PLDI 2004).
//!
//! For *finite-state* threads the paper shows that counter-abstraction
//! CEGAR is complete (Lemmas 1–2, Theorem 3): iterate `k = 0, 1, 2, …`
//! and model-check the counter abstraction `(T, k)`; a counterexample
//! of length at most `k` is guaranteed real, a longer one means the
//! abstraction was too coarse and `k` must grow; if `(T, k)` is safe,
//! so is the unbounded program `T^∞`.
//!
//! This crate implements the whole pipeline from scratch:
//!
//! * [`FiniteThread`] — finite-state threads as guarded commands over
//!   finitely-valued shared variables plus a program counter,
//! * [`CounterState`] / [`model_check`] — the abstraction `(T, k)`
//!   (`α_k` counters with `k + 1 = ω`, `ω ± 1 = ω`) and its explicit
//!   BFS model checker ([`ModelCheck`] of Algorithm 6),
//! * [`verify`] — **Algorithm 6**, the counter-guided refinement
//!   loop, with the race-state error condition of §4.1 available via
//!   [`race_error`].
//!
//! # Example
//!
//! ```
//! use circ_explicit::{FiniteThread, Transition, race_error, verify, Verdict};
//!
//! // A test-and-set lock over one bit, guarding writes to `x`
//! // (variable 1): pc0 --[lock=0] lock:=1--> pc1 --x:=1--> pc2
//! // --lock:=0--> pc0.
//! let mut t = FiniteThread::new(3, vec![2, 2]);
//! t.add(Transition::new(0, 1).guard(0, 0).update(0, 1).atomic_src(false));
//! t.add(Transition::new(1, 2).update(1, 1));
//! t.add(Transition::new(2, 0).update(0, 0));
//! let verdict = verify(&t, &race_error(&t, 1), 64, 100_000);
//! assert!(matches!(verdict, Verdict::Safe { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A counter value in `{0, …, k, ω}` (Appendix A's `α_k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Count {
    /// An exact count.
    Fin(u32),
    /// Arbitrarily many.
    Omega,
}

impl Count {
    /// `self + 1` saturating at `k + 1 = ω`.
    pub fn inc(self, k: u32) -> Count {
        match self {
            Count::Fin(j) if j < k => Count::Fin(j + 1),
            _ => Count::Omega,
        }
    }

    /// `self − 1`, with `ω − 1 = ω`.
    ///
    /// # Panics
    ///
    /// Panics on `Fin(0)`.
    pub fn dec(self) -> Count {
        match self {
            Count::Fin(0) => panic!("decrement of zero counter"),
            Count::Fin(j) => Count::Fin(j - 1),
            Count::Omega => Count::Omega,
        }
    }

    /// Is the count at least `n`?
    pub fn at_least(self, n: u32) -> bool {
        match self {
            Count::Fin(j) => j >= n,
            Count::Omega => true,
        }
    }
}

impl fmt::Display for Count {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Count::Fin(j) => write!(f, "{j}"),
            Count::Omega => write!(f, "ω"),
        }
    }
}

/// One guarded command of a finite-state thread:
/// `pc = src ∧ ⋀ guards  →  updates; pc := dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source program counter.
    pub src: u32,
    /// Target program counter.
    pub dst: u32,
    /// `guards[g] = Some(v)` requires global `g` to equal `v`.
    pub guards: Vec<(usize, u32)>,
    /// `updates[g] = Some(v)` sets global `g` to `v`.
    pub updates: Vec<(usize, u32)>,
}

impl Transition {
    /// A guardless, updateless move `src → dst`.
    pub fn new(src: u32, dst: u32) -> Transition {
        Transition { src, dst, guards: Vec::new(), updates: Vec::new() }
    }

    /// Adds a guard `global[g] == v` (builder style).
    pub fn guard(mut self, g: usize, v: u32) -> Transition {
        self.guards.push((g, v));
        self
    }

    /// Adds an update `global[g] := v` (builder style).
    pub fn update(mut self, g: usize, v: u32) -> Transition {
        self.updates.push((g, v));
        self
    }

    /// No-op marker kept for doc-example readability.
    pub fn atomic_src(self, _yes: bool) -> Transition {
        self
    }
}

/// A finite-state thread: program counters `0..n_locs` (0 initial),
/// shared variables with the given domain sizes (all initially 0),
/// guarded-command transitions, and optionally atomic locations.
#[derive(Debug, Clone)]
pub struct FiniteThread {
    n_locs: u32,
    domains: Vec<u32>,
    transitions: Vec<Transition>,
    atomic: BTreeSet<u32>,
}

impl FiniteThread {
    /// A thread with `n_locs` program counters and shared variables of
    /// the given domain sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n_locs` is 0 or any domain is 0.
    pub fn new(n_locs: u32, domains: Vec<u32>) -> FiniteThread {
        assert!(n_locs > 0, "need at least the initial location");
        assert!(domains.iter().all(|&d| d > 0), "domains must be nonempty");
        FiniteThread { n_locs, domains, transitions: Vec::new(), atomic: BTreeSet::new() }
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if the transition references unknown locations,
    /// variables, or out-of-domain values.
    pub fn add(&mut self, t: Transition) {
        assert!(t.src < self.n_locs && t.dst < self.n_locs, "pc out of range");
        for &(g, v) in t.guards.iter().chain(&t.updates) {
            assert!(g < self.domains.len(), "variable out of range");
            assert!(v < self.domains[g], "value outside domain");
        }
        self.transitions.push(t);
    }

    /// Marks a location atomic (only a thread there may be scheduled).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is 0 (the initial location must stay
    /// non-atomic) or out of range.
    pub fn mark_atomic(&mut self, pc: u32) {
        assert!(pc != 0, "initial location must not be atomic");
        assert!(pc < self.n_locs, "pc out of range");
        self.atomic.insert(pc);
    }

    /// Number of program counters.
    pub fn n_locs(&self) -> u32 {
        self.n_locs
    }

    /// Shared-variable domain sizes.
    pub fn domains(&self) -> &[u32] {
        &self.domains
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether `pc` is atomic.
    pub fn is_atomic(&self, pc: u32) -> bool {
        self.atomic.contains(&pc)
    }

    /// Does some transition from `pc`, enabled under `globals`, write
    /// variable `g`?
    pub fn writes_at(&self, pc: u32, globals: &[u32], g: usize) -> bool {
        self.transitions.iter().any(|t| {
            t.src == pc
                && t.guards.iter().all(|&(gg, v)| globals[gg] == v)
                && t.updates.iter().any(|&(gg, _)| gg == g)
        })
    }

    /// Does some transition from `pc`, enabled under `globals`, read
    /// (guard on) variable `g`?
    pub fn reads_at(&self, pc: u32, globals: &[u32], g: usize) -> bool {
        self.transitions.iter().any(|t| {
            t.src == pc
                && t.guards.iter().all(|&(gg, v)| globals[gg] == v)
                && t.guards.iter().any(|&(gg, _)| gg == g)
        })
    }
}

/// A state of the counter abstraction `(T, k)`: shared-variable
/// valuation plus per-location thread counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterState {
    /// Shared variable values.
    pub globals: Vec<u32>,
    /// Thread count per program counter.
    pub counts: Vec<Count>,
}

impl CounterState {
    /// The initial state: variables 0, ω threads at location 0.
    pub fn initial(t: &FiniteThread) -> CounterState {
        let mut counts = vec![Count::Fin(0); t.n_locs as usize];
        counts[0] = Count::Omega;
        CounterState { globals: vec![0; t.domains.len()], counts }
    }
}

impl fmt::Display for CounterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "globals=[")?;
        for (i, g) in self.globals.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "] counts=[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Result of [`model_check`].
#[derive(Debug, Clone)]
pub enum ModelCheck {
    /// No reachable error state; the number of states explored.
    Safe(usize),
    /// A shortest trace (initial state first) ending in an error
    /// state.
    Cex(Vec<CounterState>),
    /// State budget exhausted.
    Exhausted(usize),
}

/// Explicit BFS model checking of `(T, k)` against an error predicate
/// (the `ModelCheck` oracle of Algorithm 6). Scheduling honors atomic
/// locations: while any atomic location is occupied, only its threads
/// move.
pub fn model_check(
    t: &FiniteThread,
    k: u32,
    error: &dyn Fn(&CounterState) -> bool,
    max_states: usize,
) -> ModelCheck {
    let init = CounterState::initial(t);
    let mut seen: HashSet<CounterState> = HashSet::new();
    let mut parent: HashMap<CounterState, CounterState> = HashMap::new();
    let mut queue: VecDeque<CounterState> = VecDeque::new();
    seen.insert(init.clone());
    queue.push_back(init.clone());
    while let Some(s) = queue.pop_front() {
        if error(&s) {
            // rebuild trace
            let mut trace = vec![s.clone()];
            let mut cur = s;
            while let Some(p) = parent.get(&cur) {
                trace.push(p.clone());
                cur = p.clone();
            }
            trace.reverse();
            return ModelCheck::Cex(trace);
        }
        if seen.len() >= max_states {
            return ModelCheck::Exhausted(seen.len());
        }
        let atomic_occupied: Vec<u32> = (0..t.n_locs)
            .filter(|&pc| t.is_atomic(pc) && s.counts[pc as usize].at_least(1))
            .collect();
        let movable: Vec<u32> = match atomic_occupied.len() {
            0 => (0..t.n_locs).filter(|&pc| s.counts[pc as usize].at_least(1)).collect(),
            1 => atomic_occupied,
            _ => Vec::new(),
        };
        for pc in movable {
            for tr in t.transitions.iter().filter(|tr| tr.src == pc) {
                if !tr.guards.iter().all(|&(g, v)| s.globals[g] == v) {
                    continue;
                }
                let mut next = s.clone();
                for &(g, v) in &tr.updates {
                    next.globals[g] = v;
                }
                if tr.src != tr.dst {
                    next.counts[tr.src as usize] = next.counts[tr.src as usize].dec();
                    next.counts[tr.dst as usize] = next.counts[tr.dst as usize].inc(k);
                }
                if seen.insert(next.clone()) {
                    parent.insert(next.clone(), s.clone());
                    queue.push_back(next);
                }
            }
        }
    }
    ModelCheck::Safe(seen.len())
}

/// The race-state error predicate of §4.1 for variable `g`: no atomic
/// location occupied, and either two distinct threads have enabled
/// writes to `g`, or one has an enabled write and another an enabled
/// access.
pub fn race_error(t: &FiniteThread, g: usize) -> impl Fn(&CounterState) -> bool + '_ {
    move |s: &CounterState| {
        if (0..t.n_locs).any(|pc| t.is_atomic(pc) && s.counts[pc as usize].at_least(1)) {
            return false;
        }
        let occupied: Vec<u32> =
            (0..t.n_locs).filter(|&pc| s.counts[pc as usize].at_least(1)).collect();
        for &w in &occupied {
            if !t.writes_at(w, &s.globals, g) {
                continue;
            }
            for &o in &occupied {
                let conflict = t.writes_at(o, &s.globals, g) || t.reads_at(o, &s.globals, g);
                if !conflict {
                    continue;
                }
                if o != w || s.counts[w as usize].at_least(2) {
                    return true;
                }
            }
        }
        false
    }
}

/// Verdict of [`verify`].
#[derive(Debug, Clone)]
pub enum Verdict {
    /// `T^∞` is safe; the counter parameter that proved it and the
    /// states explored at that parameter.
    Safe {
        /// The concluding counter parameter.
        k: u32,
        /// States explored in the final model check.
        states: usize,
    },
    /// `T^∞` is unsafe: a genuine counterexample (length ≤ final `k`).
    Unsafe {
        /// The concluding counter parameter.
        k: u32,
        /// The counterexample trace.
        trace: Vec<CounterState>,
    },
    /// Budget exhausted (state or `k` limit).
    Exhausted {
        /// The parameter reached.
        k: u32,
    },
}

/// **Algorithm 6**: counter-guided parameterized verification. Starts
/// at `k = 0`; a counterexample longer than `k` only enlarges `k`, one
/// of length ≤ `k` is sound (Lemma 2), and `Safe` at any `k` implies
/// `T^∞` safe (Lemma 1). Terminates for every finite-state thread
/// (Theorem 3) — the `max_k`/`max_states` budgets are defensive only.
pub fn verify(
    t: &FiniteThread,
    error: &dyn Fn(&CounterState) -> bool,
    max_k: u32,
    max_states: usize,
) -> Verdict {
    let mut k = 0;
    loop {
        match model_check(t, k, error, max_states) {
            ModelCheck::Safe(states) => return Verdict::Safe { k, states },
            ModelCheck::Cex(trace) => {
                // Steps in the trace = trace.len() - 1.
                if trace.len() as u32 - 1 <= k {
                    return Verdict::Unsafe { k, trace };
                }
                k += 1;
                if k > max_k {
                    return Verdict::Exhausted { k };
                }
            }
            ModelCheck::Exhausted(_) => return Verdict::Exhausted { k },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-and-set lock protecting writes to variable 1.
    fn tas_lock() -> FiniteThread {
        let mut t = FiniteThread::new(3, vec![2, 2]);
        // 0 --[lock=0] lock:=1--> 1   (atomic acquire)
        t.add(Transition::new(0, 1).guard(0, 0).update(0, 1));
        // 1 --x:=1--> 2                (critical section write)
        t.add(Transition::new(1, 2).update(1, 1));
        // 2 --lock:=0--> 0             (release)
        t.add(Transition::new(2, 0).update(0, 0));
        t
    }

    /// The same lock with a broken acquire (no guard): racy.
    fn broken_lock() -> FiniteThread {
        let mut t = FiniteThread::new(3, vec![2, 2]);
        t.add(Transition::new(0, 1).update(0, 1)); // acquires unconditionally
        t.add(Transition::new(1, 2).update(1, 1));
        t.add(Transition::new(2, 0).update(0, 0));
        t
    }

    #[test]
    fn count_arithmetic() {
        assert_eq!(Count::Fin(1).inc(2), Count::Fin(2));
        assert_eq!(Count::Fin(2).inc(2), Count::Omega);
        assert_eq!(Count::Omega.dec(), Count::Omega);
        assert!(Count::Omega.at_least(7));
    }

    #[test]
    fn tas_lock_safe() {
        let t = tas_lock();
        let verdict = verify(&t, &race_error(&t, 1), 16, 100_000);
        match verdict {
            Verdict::Safe { k, .. } => assert!(k <= 3, "small k suffices, got {k}"),
            other => panic!("expected Safe, got {other:?}"),
        }
    }

    #[test]
    fn broken_lock_unsafe_with_short_trace() {
        let t = broken_lock();
        let verdict = verify(&t, &race_error(&t, 1), 16, 100_000);
        match verdict {
            Verdict::Unsafe { k, trace } => {
                assert!(trace.len() as u32 - 1 <= k);
                // the last state is really a race
                assert!(race_error(&t, 1)(trace.last().unwrap()));
                // the first is the initial state
                assert_eq!(trace[0], CounterState::initial(&t));
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn atomic_critical_section_safe_without_lock() {
        // Writes happen from an atomic location: no race even without
        // a lock variable.
        let mut t = FiniteThread::new(3, vec![2]);
        t.add(Transition::new(0, 1));
        t.mark_atomic(1);
        t.add(Transition::new(1, 2).update(0, 1));
        t.add(Transition::new(2, 0));
        let verdict = verify(&t, &race_error(&t, 0), 16, 100_000);
        assert!(matches!(verdict, Verdict::Safe { .. }), "got {verdict:?}");
    }

    #[test]
    fn reader_writer_race_detected() {
        // One location writes, another guards on (reads) the same
        // variable: write/read race.
        let mut t = FiniteThread::new(3, vec![2]);
        t.add(Transition::new(0, 1).update(0, 1)); // write enabled at 0
        t.add(Transition::new(0, 2).guard(0, 0)); // read enabled at 0
        let verdict = verify(&t, &race_error(&t, 0), 8, 100_000);
        assert!(matches!(verdict, Verdict::Unsafe { .. }), "got {verdict:?}");
    }

    #[test]
    fn model_check_counts_saturate() {
        // a simple pipeline 0 -> 1; with k = 1, location 1's count
        // reaches ω after two arrivals.
        let mut t = FiniteThread::new(2, vec![1]);
        t.add(Transition::new(0, 1));
        let mc = model_check(&t, 1, &|s| s.counts[1] == Count::Omega, 10_000);
        match mc {
            ModelCheck::Cex(trace) => assert_eq!(trace.len(), 3), // init, Fin(1), ω
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn guards_block_transitions() {
        // 0 --[g=1]--> 1 can never fire (g stays 0).
        let mut t = FiniteThread::new(2, vec![2]);
        t.add(Transition::new(0, 1).guard(0, 1));
        let mc = model_check(&t, 2, &|s| s.counts[1].at_least(1), 10_000);
        assert!(matches!(mc, ModelCheck::Safe(_)));
    }

    #[test]
    fn mutual_exclusion_invariant() {
        // In the TAS lock, at most one thread occupies the critical
        // section (pc 1) in any reachable state.
        let t = tas_lock();
        let mc = model_check(&t, 4, &|s| s.counts[1].at_least(2), 100_000);
        assert!(matches!(mc, ModelCheck::Safe(_)), "two threads in CS: {mc:?}");
    }

    #[test]
    fn verify_grows_k_when_needed() {
        // Error requires three threads to gather at location 1 (each
        // arrival increments g mod 4): k must grow past the spurious
        // ω-fueled counterexamples.
        let mut t = FiniteThread::new(2, vec![4]);
        t.add(Transition::new(0, 1).guard(0, 0).update(0, 1));
        t.add(Transition::new(0, 1).guard(0, 1).update(0, 2));
        t.add(Transition::new(0, 1).guard(0, 2).update(0, 3));
        let err = |s: &CounterState| s.globals[0] == 3;
        let verdict = verify(&t, &err, 16, 100_000);
        match verdict {
            Verdict::Unsafe { k, trace } => {
                assert_eq!(trace.len() - 1, 3, "three steps to gather");
                assert!(k >= 3, "k grew to cover the trace, got {k}");
            }
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_reported_on_tiny_budget() {
        let t = tas_lock();
        let verdict = verify(&t, &race_error(&t, 1), 16, 2);
        assert!(matches!(verdict, Verdict::Exhausted { .. }));
    }

    #[test]
    #[should_panic(expected = "value outside domain")]
    fn domain_validation() {
        let mut t = FiniteThread::new(2, vec![2]);
        t.add(Transition::new(0, 1).update(0, 5));
    }
}
