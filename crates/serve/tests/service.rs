//! In-process end-to-end tests for the serve loop: a real listener,
//! real client connections, the full request lifecycle including
//! overload shedding and graceful drain.
#![cfg(unix)]

use circ_batch::mjson::{self, Value};
use circ_governor::{CancelToken, Envelope};
use circ_serve::{serve, BindTo, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SAFE_READER: &str = "global int config;\n#race config;\n\
    thread reader { local int s; loop { s = config; if (s > 0) { skip; } } }\n";

const RACY: &str = "global int data;\n#race data;\n\
    thread writer { loop { data = data + 1; } }\n";

fn short_socket_path(tag: &str) -> PathBuf {
    // Unix socket paths are limited to ~108 bytes; CARGO_TARGET_TMPDIR
    // can exceed that, so fall back to /tmp with a pid-unique name.
    let dir = std::env::temp_dir();
    dir.join(format!("circ-serve-{}-{tag}.sock", std::process::id()))
}

struct RunningServer {
    socket: PathBuf,
    cancel: CancelToken,
    thread: Option<std::thread::JoinHandle<Result<u8, circ_serve::ServeError>>>,
}

impl RunningServer {
    fn start(mut config: ServeConfig, tag: &str) -> RunningServer {
        // No pre-cleanup: a leftover socket file from a crashed prior
        // run is exactly what the server's stale-socket reclaim is for.
        let socket = short_socket_path(tag);
        config.bind = BindTo::Socket(socket.clone());
        let cancel = config.cancel.clone();
        let thread = std::thread::spawn(move || serve(config));
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&socket).is_err() {
            assert!(Instant::now() < deadline, "server never came up on {}", socket.display());
            std::thread::sleep(Duration::from_millis(5));
        }
        RunningServer { socket, cancel, thread: Some(thread) }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).expect("connect")
    }

    /// One request, one response, on a fresh connection.
    fn roundtrip(&self, request: &str) -> Value {
        let mut conn = self.connect();
        writeln!(conn, "{request}").expect("write request");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("read response");
        mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    fn shutdown(mut self) -> u8 {
        self.cancel.cancel();
        let exit = self
            .thread
            .take()
            .expect("running")
            .join()
            .expect("serve thread")
            .expect("clean drain");
        assert!(!self.socket.exists(), "drain must remove the socket file");
        exit
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.cancel.cancel();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn row_verdicts(response: &Value) -> Vec<(String, String)> {
    let Some(Value::Arr(rows)) = response.get("rows") else {
        panic!("no rows in {response:?}");
    };
    rows.iter()
        .map(|r| {
            (
                r.get("file").and_then(Value::as_str).expect("file").to_string(),
                r.get("verdict").and_then(Value::as_str).expect("verdict").to_string(),
            )
        })
        .collect()
}

#[test]
fn inline_checks_round_trip_with_batch_identical_verdicts() {
    let server = RunningServer::start(ServeConfig::default(), "inline");

    let safe = server.roundtrip(&format!(
        "{{\"op\":\"check\",\"id\":1,\"name\":\"reader.nesl\",\"source\":\"{}\"}}",
        circ_batch::json_escape(SAFE_READER)
    ));
    assert_eq!(safe.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(safe.get("id").and_then(Value::as_u64), Some(1));
    assert_eq!(safe.get("exit").and_then(Value::as_u64), Some(0));
    assert_eq!(row_verdicts(&safe), vec![("reader.nesl".to_string(), "safe".to_string())]);

    let racy = server.roundtrip(&format!(
        "{{\"op\":\"check\",\"id\":2,\"source\":\"{}\"}}",
        circ_batch::json_escape(RACY)
    ));
    assert_eq!(racy.get("exit").and_then(Value::as_u64), Some(1));
    assert_eq!(row_verdicts(&racy), vec![("<inline>".to_string(), "race".to_string())]);

    // The same sources through the batch code path directly.
    for (src, expect) in [(SAFE_READER, "safe"), (RACY, "race")] {
        let config = circ_batch::BatchConfig::default();
        let cache = circ_core::AbsCache::new();
        let persist = circ_core::SolverPersist::inert();
        let faults = circ_governor::FaultPlan::inert();
        let ctx = circ_batch::CheckCtx {
            config: &config,
            file_timeout: None,
            file_mem: None,
            cache: &cache,
            persist: &persist,
            pred_seed: None,
            faults: &faults,
        };
        let (row, _) = circ_batch::check_source("x.nesl", src, &ctx);
        assert_eq!(row.verdict.name(), expect, "batch verdict for {expect}");
    }

    // Health and stats answer without admission.
    let health = server.roundtrip("{\"op\":\"health\"}");
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
    let stats = server.roundtrip("{\"op\":\"stats\",\"id\":\"s\"}");
    let service = stats.get("stats").and_then(|s| s.get("service")).expect("service block");
    assert_eq!(service.get("checks").and_then(Value::as_u64), Some(2));
    assert!(
        stats.get("stats").and_then(|s| s.get("abs_entries")).and_then(Value::as_u64).unwrap() > 0,
        "warm master cache must retain entries across requests"
    );

    assert_eq!(server.shutdown(), 3);
}

#[test]
fn malformed_lines_degrade_to_bad_request_and_server_survives() {
    let server = RunningServer::start(ServeConfig::default(), "bad");
    for (bad, why) in [
        ("not json", "unparseable"),
        ("{\"op\":\"nope\"}", "unknown op"),
        ("{\"op\":\"check\"}", "no input"),
    ] {
        let resp = server.roundtrip(bad);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)), "{why}");
        assert_eq!(resp.get("error").and_then(Value::as_str), Some("bad-request"), "{why}");
    }
    // A nonexistent path degrades to a compile-error row, not a dead server.
    let resp = server.roundtrip("{\"op\":\"check\",\"path\":\"/nonexistent/x.nesl\"}");
    assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(resp.get("exit").and_then(Value::as_u64), Some(65));
    // And the server still answers real work afterwards.
    let ok = server.roundtrip(&format!(
        "{{\"op\":\"check\",\"source\":\"{}\"}}",
        circ_batch::json_escape(SAFE_READER)
    ));
    assert_eq!(ok.get("exit").and_then(Value::as_u64), Some(0));
    let exit = server.shutdown();
    assert_eq!(exit, 3);
}

#[test]
fn oversized_request_lines_are_rejected_with_the_connection_closed() {
    let config = ServeConfig { max_request_bytes: 128, ..ServeConfig::default() };
    let server = RunningServer::start(config, "oversize");
    let mut conn = server.connect();
    let huge = format!("{{\"op\":\"check\",\"source\":\"{}\"}}", "x".repeat(4096));
    writeln!(conn, "{huge}").expect("write");
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let resp = mjson::parse(line.trim()).expect("parse");
    assert_eq!(resp.get("error").and_then(Value::as_str), Some("bad-request"));
    // The connection is closed after an oversized line.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
    // But the server is fine.
    let ok = server.roundtrip("{\"op\":\"health\"}");
    assert_eq!(ok.get("ok"), Some(&Value::Bool(true)));
    server.shutdown();
}

#[test]
fn stale_socket_is_reclaimed_and_live_socket_is_refused() {
    use std::os::unix::net::UnixListener;
    // A socket file with no listener behind it (a crash leftover):
    // binding and dropping the listener leaves the file on disk.
    let path = short_socket_path("stale");
    let _ = std::fs::remove_file(&path);
    drop(UnixListener::bind(&path).expect("plant stale socket"));
    assert!(path.exists(), "stale socket file must exist");
    let server = RunningServer::start(ServeConfig::default(), "stale");
    let ok = server.roundtrip("{\"op\":\"health\"}");
    assert_eq!(ok.get("ok"), Some(&Value::Bool(true)));

    // A second server against the *live* socket must refuse to steal it.
    let second = serve(ServeConfig {
        bind: BindTo::Socket(server.socket.clone()),
        ..ServeConfig::default()
    });
    match second {
        Err(circ_serve::ServeError::InUse(msg)) => {
            assert!(msg.contains("in use"), "{msg}");
        }
        other => panic!("expected InUse, got {other:?}"),
    }
    // The refusal must not have unlinked the live server's socket.
    let ok = server.roundtrip("{\"op\":\"health\"}");
    assert_eq!(ok.get("ok"), Some(&Value::Bool(true)));
    server.shutdown();
}

#[test]
fn overload_sheds_and_drain_finishes_inflight_work() {
    // One slot, no queue: while a slow request holds the slot, the
    // next is shed with `overloaded`.
    let config = ServeConfig {
        max_inflight: 1,
        queue_depth: 0,
        envelope: Envelope { timeout: Some(Duration::from_secs(60)), mem_limit_bytes: None },
        ..ServeConfig::default()
    };
    let server = RunningServer::start(config, "overload");

    // A request with enough units to stay in flight while we probe:
    // a directory of 60 copies of the test-and-set example. The warm
    // master cache makes later copies cheap, but each still runs, so
    // the request holds its permit long enough to observe.
    let slow_src = "global int buf;\nglobal int busy;\n#race buf;\n\
        thread sender { local int won; loop { atomic { won = busy; \
        if (busy == 0) { busy = 1; } } if (won == 0) { buf = buf + 1; busy = 0; } } }\n";
    let corpus = std::env::temp_dir().join(format!("circ-serve-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&corpus);
    std::fs::create_dir_all(&corpus).expect("corpus dir");
    for i in 0..60 {
        std::fs::write(corpus.join(format!("tas_{i:02}.nesl")), slow_src).expect("write corpus");
    }
    let mut slow_conn = server.connect();
    writeln!(
        slow_conn,
        "{{\"op\":\"check\",\"id\":\"slow\",\"path\":\"{}\"}}",
        circ_batch::json_escape(&corpus.display().to_string())
    )
    .expect("write slow");

    // Wait until the slow request actually holds the slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = server.roundtrip("{\"op\":\"health\"}");
        let inflight = health.get("health").and_then(|h| h.get("inflight")).and_then(Value::as_u64);
        if inflight == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "slow request never admitted");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Queue depth 0: the next check is shed immediately.
    let shed = server.roundtrip(&format!(
        "{{\"op\":\"check\",\"source\":\"{}\"}}",
        circ_batch::json_escape(SAFE_READER)
    ));
    assert_eq!(shed.get("error").and_then(Value::as_str), Some("overloaded"));
    assert!(shed.get("detail").and_then(Value::as_str).unwrap().contains("queue full"), "{shed:?}");

    // Drain: the in-flight request still gets its response.
    server.cancel.cancel();
    let mut line = String::new();
    BufReader::new(&mut slow_conn).read_line(&mut line).expect("slow response");
    let slow_resp = mjson::parse(line.trim()).expect("parse slow response");
    assert_eq!(slow_resp.get("ok"), Some(&Value::Bool(true)), "in-flight must complete: {line}");
    assert_eq!(slow_resp.get("id").and_then(Value::as_str), Some("slow"));
    let exit = server.shutdown();
    assert_eq!(exit, 3, "drained service exits 3");
    let _ = std::fs::remove_dir_all(&corpus);
}
