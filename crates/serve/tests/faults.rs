//! Serve-loop containment under seeded fault injection (`--features
//! inject`): an injected worker panic only ever degrades the affected
//! response to `internal-error` — it never flips a verdict and never
//! kills the server — and a transient fault that clears on the retry
//! lands back on the clean verdict, visible as `totals.retries` in
//! the stats payload.
#![cfg(all(unix, feature = "inject"))]

use circ_batch::mjson::{self, Value};
use circ_governor::{FaultPlan, RetryPolicy};
use circ_serve::{serve, BindTo, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SAFE_READER: &str = "global int config;\n#race config;\n\
    thread reader { local int s; loop { s = config; if (s > 0) { skip; } } }\n";

const RACY: &str = "global int data;\n#race data;\n\
    thread writer { loop { data = data + 1; } }\n";

fn short_socket_path(tag: &str) -> PathBuf {
    // Unix socket paths are limited to ~108 bytes; CARGO_TARGET_TMPDIR
    // can exceed that, so fall back to /tmp with a pid-unique name.
    std::env::temp_dir().join(format!("circ-serve-inj-{}-{tag}.sock", std::process::id()))
}

struct Server {
    socket: PathBuf,
    cancel: circ_governor::CancelToken,
    thread: Option<std::thread::JoinHandle<Result<u8, circ_serve::ServeError>>>,
}

impl Server {
    fn start(mut config: ServeConfig, tag: &str) -> Server {
        let socket = short_socket_path(tag);
        let _ = std::fs::remove_file(&socket);
        config.bind = BindTo::Socket(socket.clone());
        let cancel = config.cancel.clone();
        let thread = std::thread::spawn(move || serve(config));
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&socket).is_err() {
            assert!(Instant::now() < deadline, "server never came up on {}", socket.display());
            std::thread::sleep(Duration::from_millis(5));
        }
        Server { socket, cancel, thread: Some(thread) }
    }

    fn roundtrip(&self, request: &str) -> Value {
        let mut conn = UnixStream::connect(&self.socket).expect("connect");
        writeln!(conn, "{request}").expect("write request");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("read response");
        mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    fn stop(mut self) -> u8 {
        self.cancel.cancel();
        self.thread.take().expect("running").join().expect("serve thread").expect("clean drain")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.cancel.cancel();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn sole_verdict(resp: &Value) -> String {
    let Some(Value::Arr(rows)) = resp.get("rows") else {
        panic!("no rows in {resp:?}");
    };
    assert_eq!(rows.len(), 1, "{resp:?}");
    rows[0].get("verdict").and_then(Value::as_str).expect("verdict").to_string()
}

/// Scans injection seeds until both containment shapes have been
/// observed through the live service: (a) a contained panic (counted
/// in `panics_contained`, the server still answering afterwards) and
/// (b) a transient fault recovered by the retry loop (`totals.retries`
/// > 0 with every verdict still clean). At every seed, every response
/// is clean-or-degraded — never a flipped verdict — and the drain
/// still exits 3.
#[test]
fn injected_panics_only_degrade_and_retries_recover_the_clean_verdict() {
    let mut contained = false;
    let mut recovered = false;
    for seed in 0..64u64 {
        let config = ServeConfig {
            faults: FaultPlan::seeded(seed).with_task_panic(60),
            retry: RetryPolicy::with_retries(3, seed),
            ..ServeConfig::default()
        };
        let server = Server::start(config, &format!("s{seed}"));
        let mut all_clean = true;
        for (src, clean) in [(SAFE_READER, "safe"), (RACY, "race")] {
            let resp = server.roundtrip(&format!(
                "{{\"op\":\"check\",\"source\":\"{}\"}}",
                circ_batch::json_escape(src)
            ));
            assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "seed {seed}: {resp:?}");
            let v = sole_verdict(&resp);
            assert!(
                v == clean || v == "internal-error",
                "seed {seed}: verdict flipped {clean} -> {v}"
            );
            all_clean &= v == clean;
        }
        // The server survives whatever the injection did to the
        // workers, and its counters say what happened.
        let stats = server.roundtrip("{\"op\":\"stats\"}");
        let service = stats.get("stats").and_then(|s| s.get("service")).expect("service block");
        let panics = service.get("panics_contained").and_then(Value::as_u64).unwrap();
        let retries =
            service.get("totals").and_then(|t| t.get("retries")).and_then(Value::as_u64).unwrap();
        contained |= panics > 0;
        recovered |= retries > 0 && all_clean;
        assert_eq!(server.stop(), 3, "seed {seed}: drain must still exit 3");
        if contained && recovered {
            return;
        }
    }
    assert!(contained, "no seed in 0..64 injected a contained panic");
    assert!(recovered, "no seed in 0..64 produced a retry-recoverable transient fault");
}
