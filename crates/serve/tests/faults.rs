//! Serve-loop containment under seeded fault injection (`--features
//! inject`): an injected worker panic only ever degrades the affected
//! response to `internal-error` — it never flips a verdict and never
//! kills the server — and a transient fault that clears on the retry
//! lands back on the clean verdict, visible as `totals.retries` in
//! the stats payload.
#![cfg(all(unix, feature = "inject"))]

use circ_batch::mjson::{self, Value};
use circ_governor::{FaultPlan, RetryPolicy};
use circ_serve::{serve, BindTo, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SAFE_READER: &str = "global int config;\n#race config;\n\
    thread reader { local int s; loop { s = config; if (s > 0) { skip; } } }\n";

const RACY: &str = "global int data;\n#race data;\n\
    thread writer { loop { data = data + 1; } }\n";

fn short_socket_path(tag: &str) -> PathBuf {
    // Unix socket paths are limited to ~108 bytes; CARGO_TARGET_TMPDIR
    // can exceed that, so fall back to /tmp with a pid-unique name.
    std::env::temp_dir().join(format!("circ-serve-inj-{}-{tag}.sock", std::process::id()))
}

struct Server {
    socket: PathBuf,
    cancel: circ_governor::CancelToken,
    thread: Option<std::thread::JoinHandle<Result<u8, circ_serve::ServeError>>>,
}

impl Server {
    fn start(mut config: ServeConfig, tag: &str) -> Server {
        let socket = short_socket_path(tag);
        let _ = std::fs::remove_file(&socket);
        config.bind = BindTo::Socket(socket.clone());
        let cancel = config.cancel.clone();
        let thread = std::thread::spawn(move || serve(config));
        let deadline = Instant::now() + Duration::from_secs(10);
        while UnixStream::connect(&socket).is_err() {
            assert!(Instant::now() < deadline, "server never came up on {}", socket.display());
            std::thread::sleep(Duration::from_millis(5));
        }
        Server { socket, cancel, thread: Some(thread) }
    }

    fn roundtrip(&self, request: &str) -> Value {
        let mut conn = UnixStream::connect(&self.socket).expect("connect");
        writeln!(conn, "{request}").expect("write request");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("read response");
        mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    fn stop(mut self) -> u8 {
        self.cancel.cancel();
        self.thread.take().expect("running").join().expect("serve thread").expect("clean drain")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.cancel.cancel();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn sole_verdict(resp: &Value) -> String {
    let Some(Value::Arr(rows)) = resp.get("rows") else {
        panic!("no rows in {resp:?}");
    };
    assert_eq!(rows.len(), 1, "{resp:?}");
    rows[0].get("verdict").and_then(Value::as_str).expect("verdict").to_string()
}

/// Scans injection seeds until both containment shapes have been
/// observed through the live service: (a) a contained panic (counted
/// in `panics_contained`, the server still answering afterwards) and
/// (b) a transient fault recovered by the retry loop (nonzero
/// `totals.retries` with every verdict still clean); every response
/// is clean-or-degraded — never a flipped verdict — and the drain
/// still exits 3.
#[test]
fn injected_panics_only_degrade_and_retries_recover_the_clean_verdict() {
    let mut contained = false;
    let mut recovered = false;
    for seed in 0..64u64 {
        let config = ServeConfig {
            faults: FaultPlan::seeded(seed).with_task_panic(60),
            retry: RetryPolicy::with_retries(3, seed),
            ..ServeConfig::default()
        };
        let server = Server::start(config, &format!("s{seed}"));
        let mut all_clean = true;
        for (src, clean) in [(SAFE_READER, "safe"), (RACY, "race")] {
            let resp = server.roundtrip(&format!(
                "{{\"op\":\"check\",\"source\":\"{}\"}}",
                circ_batch::json_escape(src)
            ));
            assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "seed {seed}: {resp:?}");
            let v = sole_verdict(&resp);
            assert!(
                v == clean || v == "internal-error",
                "seed {seed}: verdict flipped {clean} -> {v}"
            );
            all_clean &= v == clean;
        }
        // The server survives whatever the injection did to the
        // workers, and its counters say what happened.
        let stats = server.roundtrip("{\"op\":\"stats\"}");
        let service = stats.get("stats").and_then(|s| s.get("service")).expect("service block");
        let panics = service.get("panics_contained").and_then(Value::as_u64).unwrap();
        let retries =
            service.get("totals").and_then(|t| t.get("retries")).and_then(Value::as_u64).unwrap();
        contained |= panics > 0;
        recovered |= retries > 0 && all_clean;
        assert_eq!(server.stop(), 3, "seed {seed}: drain must still exit 3");
        if contained && recovered {
            return;
        }
    }
    assert!(contained, "no seed in 0..64 injected a contained panic");
    assert!(recovered, "no seed in 0..64 produced a retry-recoverable transient fault");
}

/// A storage failure during the graceful drain's cache flush must not
/// change the exit code (3, "drained") and must not cost any client a
/// response — responses are written before the flush, and a failed
/// flush degrades to a logged no-persist. Exercised at both flush
/// crash points the drain can hit: the advisory lock and the artifact
/// writes (sticky disk-full).
#[test]
fn drain_flush_failure_keeps_exit_code_and_drops_no_responses() {
    use circ_governor::IoFaultPoint;
    // (armed point, occurrence): the startup sweep takes the lock
    // once (event 0), so the drain flush's lock is event 1; no write
    // happens before the drain flush, so `NoSpace` fires from its
    // first write event onward.
    let cases = [(IoFaultPoint::NoSpace, 0, "enospc"), (IoFaultPoint::LockAcquire, 1, "lock")];
    for (point, nth, tag) in cases {
        let cache_dir = std::env::temp_dir()
            .join(format!("circ-serve-drainflush-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        std::fs::create_dir_all(&cache_dir).unwrap();
        let config = ServeConfig {
            cache_dir: Some(cache_dir.clone()),
            faults: FaultPlan::seeded(17).with_io_fault(point, nth),
            ..ServeConfig::default()
        };
        let server = Server::start(config, &format!("drainflush-{tag}"));

        // A completed request before the drain...
        let resp = server.roundtrip(&format!(
            "{{\"op\":\"check\",\"source\":\"{}\"}}",
            circ_batch::json_escape(SAFE_READER)
        ));
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "{tag}: {resp:?}");
        assert_eq!(sole_verdict(&resp), "safe", "{tag}");

        // ...and one in flight when the cancel lands. The drain must
        // answer it — completed, or shed with a `shutting-down`
        // error if the cancel won the admission race — but never
        // leave the client hanging on a dead socket.
        let socket = server.socket.clone();
        let inflight = std::thread::spawn(move || {
            let mut conn = UnixStream::connect(&socket).expect("connect");
            writeln!(conn, "{{\"op\":\"check\",\"source\":\"{}\"}}", circ_batch::json_escape(RACY))
                .expect("write request");
            let mut line = String::new();
            BufReader::new(conn).read_line(&mut line).expect("read response");
            line
        });
        // Wait until the server has *parsed* the in-flight request
        // (it counts into `requests` before admission), so the drain
        // owes it a response. Each stats poll is itself a request:
        // after `polls` polls the counter reads 1 (the earlier
        // check) + polls + 1 once the in-flight line is in.
        let mut polls = 0u64;
        loop {
            polls += 1;
            let stats = server.roundtrip("{\"op\":\"stats\"}");
            let requests = stats
                .get("stats")
                .and_then(|s| s.get("service"))
                .and_then(|s| s.get("requests"))
                .and_then(Value::as_u64)
                .expect("requests counter");
            if requests >= polls + 2 {
                break;
            }
            assert!(polls < 2000, "{tag}: in-flight request never reached the server");
            std::thread::sleep(Duration::from_millis(2));
        }
        let exit = server.stop();
        assert_eq!(exit, 3, "{tag}: a failed drain flush must not change the exit code");
        let line = inflight.join().expect("in-flight request thread");
        let resp =
            mjson::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"));
        if resp.get("ok") == Some(&Value::Bool(true)) {
            assert_eq!(sole_verdict(&resp), "race", "{tag}: in-flight verdict degraded");
        } else {
            let err = resp.get("error").and_then(Value::as_str).unwrap_or_default();
            assert_eq!(err, "shutting-down", "{tag}: unexpected error shape {resp:?}");
        }

        // The failed flush persisted nothing — and in particular left
        // no torn artifact for the next process to trip over.
        assert!(
            !cache_dir.join("abs.cache").exists(),
            "{tag}: a failed flush must not leave a (possibly torn) artifact"
        );
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}
