//! A long-running checking service for the CIRC race checker.
//!
//! `circ serve --socket PATH | --port N` keeps one process resident
//! with warm caches — the sharded entailment cache, the solver answer
//! store, and the predicate store all live across requests — and
//! turns the batch supervision loop into a request lifecycle over a
//! line-delimited JSON protocol ([`protocol`]). The design goal is
//! *robust degradation*, inherited from the batch layer and enforced
//! per request:
//!
//! * **admission control** ([`admission`]): at most `max_inflight`
//!   requests check concurrently, at most `queue_depth` wait; the
//!   rest are shed with a structured `overloaded` response. Each
//!   admitted request gets a budget carved from the service-wide
//!   [`Envelope`] — the full per-request deadline (wall clocks are
//!   per-request) and `1/max_inflight` of the memory ceiling (memory
//!   slices coexist) — so the service's total charge stays bounded
//!   no matter what mix of requests is in flight.
//! * **graceful drain**: tripping the configured [`CancelToken`]
//!   (the CLI wires SIGINT/SIGTERM to it) stops the accept loop,
//!   rejects queued and new requests with `shutting-down`, lets
//!   in-flight checks finish or degrade to cancelled
//!   `budget-exhausted` rows at their next budget poll, flushes the
//!   caches and predicate store to `--cache-dir`, removes the unix
//!   socket, and exits 3 — the same "drained" code a cancelled batch
//!   uses.
//! * **per-request fault containment**: a panic anywhere in a
//!   request's handling degrades that one response (an
//!   `internal-error` row or response); transient failures retry
//!   under the same deterministic [`RetryPolicy`] and per-content
//!   fault reseeding the batch supervisor uses; the server and
//!   sibling requests keep running.
//!
//! Verdict soundness is inherited by construction: every check runs
//! through [`circ_batch::check_source`] — the exact code path behind
//! `circ batch` rows — with the same per-file budget carving, so a
//! serve row can only differ from the batch row for the same content
//! in its wall-time fields, or by degrading to an Unknown-family
//! verdict under cancellation or overload. Verdicts never flip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod protocol;

use crate::admission::{Admission, Rejected};
use crate::protocol::{parse_request, CheckInput, Request};
use circ_batch::journal::digest_bytes;
use circ_batch::{
    check_source, collect_inputs, flush_caches_in, load_caches_in, worst_exit, BatchConfig,
    CheckCtx, FileRow, Verdict, PRED_STORE_FILE,
};
use circ_core::{pred_store, AbsCache, PredStore, SolverPersist};
use circ_governor::{
    carve_mem_limit, carve_timeout, panic_message, CancelToken, Envelope, FaultPlan, RetryPolicy,
};
use circ_par::Pool;
use circ_stats::ServiceStats;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A resettable latch for "flush caches now" requests (the CLI wires
/// SIGHUP to it). Cloning shares the latch; the accept loop takes it
/// between accepts.
#[derive(Debug, Clone, Default)]
pub struct FlushTrigger {
    flag: Arc<std::sync::atomic::AtomicBool>,
}

impl FlushTrigger {
    /// A fresh, unset trigger.
    pub fn new() -> FlushTrigger {
        FlushTrigger::default()
    }

    /// Request a flush. Idempotent until taken.
    pub fn set(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Consume a pending request, if any.
    pub fn take(&self) -> bool {
        self.flag.swap(false, std::sync::atomic::Ordering::Relaxed)
    }
}

/// Where the service listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindTo {
    /// A unix-domain socket at this path (unix targets only).
    Socket(PathBuf),
    /// TCP on `127.0.0.1:port`. The service trusts its peers (it
    /// checks whatever paths they name), so it never binds a
    /// non-loopback address.
    Port(u16),
}

/// Configuration for one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: BindTo,
    /// Worker threads for each request's file fan-out (0 = all
    /// cores), exactly like `circ batch --jobs`.
    pub jobs: usize,
    /// Concurrent check requests admitted (floored at 1).
    pub max_inflight: usize,
    /// Check requests allowed to wait for a slot before the service
    /// sheds load with `overloaded`.
    pub queue_depth: usize,
    /// Service-wide resource envelope requests are carved from.
    pub envelope: Envelope,
    /// Run ω-CIRC (the default, matching `circ check`).
    pub omega: bool,
    /// Initial counter parameter for every check.
    pub initial_k: u32,
    /// Memoize entailment and solver queries across requests — the
    /// reason a daemon beats cold process spawns. Disabling also
    /// disables persistence.
    pub use_cache: bool,
    /// Seed refinement from the predicate store and record what each
    /// check discovers back into it (in memory; flushed to
    /// `cache_dir` when set).
    pub pred_store: bool,
    /// Run the tiered triage pipeline in front of the engine.
    pub triage: bool,
    /// Directory to warm-start the caches from at startup and flush
    /// them to on drain (and on [`FlushTrigger`]).
    pub cache_dir: Option<PathBuf>,
    /// Retry policy for transient `internal-error` rows, applied per
    /// request unit exactly like the batch supervisor.
    pub retry: RetryPolicy,
    /// Base fault-injection plan (testing only; inert by default),
    /// reseeded per unit and per attempt from the content digest.
    pub faults: FaultPlan,
    /// Tripping this token starts the graceful drain.
    pub cancel: CancelToken,
    /// Taking this latch flushes the caches without draining.
    pub flush: FlushTrigger,
    /// Longest accepted request line in bytes; longer lines get a
    /// `bad-request` response and the connection is closed.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: BindTo::Port(0),
            jobs: 1,
            max_inflight: 2,
            queue_depth: 16,
            envelope: Envelope::default(),
            omega: true,
            initial_k: 1,
            use_cache: true,
            pred_store: true,
            triage: false,
            cache_dir: None,
            retry: RetryPolicy::none(),
            faults: FaultPlan::inert(),
            cancel: CancelToken::new(),
            flush: FlushTrigger::new(),
            max_request_bytes: 4 << 20,
        }
    }
}

/// Why the service could not start. Everything here maps to exit 74
/// (EX_IOERR) in the CLI — a deployment problem, not a checking
/// verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The socket/port is held by a live server (a connect probe
    /// succeeded).
    InUse(String),
    /// Any other bind or listen failure.
    Bind(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InUse(msg) | ServeError::Bind(msg) => write!(f, "{msg}"),
        }
    }
}

/// One accepted connection, unix or TCP.
enum Stream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Accepted streams can inherit the listener's non-blocking mode
    /// on some platforms; request handling wants plain blocking I/O.
    fn set_blocking(&self) {
        let _ = match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(false),
            Stream::Tcp(s) => s.set_nonblocking(false),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The bound listener plus what binding it took (for the startup
/// line and socket cleanup).
enum Listener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    fn describe(&self) -> String {
        match self {
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix socket `{}`", path.display()),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => format!("tcp `{addr}`"),
                Err(_) => "tcp".to_string(),
            },
        }
    }
}

/// Binds the listener. A unix socket whose path exists gets a connect
/// probe: a live server answers the probe and the bind fails with
/// [`ServeError::InUse`]; a stale socket file from an unclean
/// shutdown refuses the probe and is reclaimed (unlinked and rebound).
/// Returns the listener and whether a stale socket was reclaimed.
fn bind(to: &BindTo) -> Result<(Listener, bool), ServeError> {
    match to {
        #[cfg(unix)]
        BindTo::Socket(path) => {
            use std::os::unix::net::{UnixListener, UnixStream};
            match UnixListener::bind(path) {
                Ok(l) => Ok((Listener::Unix(l, path.clone()), false)),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    if UnixStream::connect(path).is_ok() {
                        return Err(ServeError::InUse(format!(
                            "socket `{}` is in use by a live server \
                             (connect probe succeeded); refusing to steal it",
                            path.display()
                        )));
                    }
                    // Nobody answers: a stale socket left by a crash.
                    std::fs::remove_file(path).map_err(|e| {
                        ServeError::Bind(format!(
                            "cannot reclaim stale socket `{}`: {e}",
                            path.display()
                        ))
                    })?;
                    let l = UnixListener::bind(path).map_err(|e| {
                        ServeError::Bind(format!(
                            "cannot bind reclaimed socket `{}`: {e}",
                            path.display()
                        ))
                    })?;
                    Ok((Listener::Unix(l, path.clone()), true))
                }
                Err(e) => {
                    Err(ServeError::Bind(format!("cannot bind socket `{}`: {e}", path.display())))
                }
            }
        }
        #[cfg(not(unix))]
        BindTo::Socket(path) => Err(ServeError::Bind(format!(
            "unix sockets are not supported on this platform (`{}`); use --port",
            path.display()
        ))),
        BindTo::Port(port) => match TcpListener::bind(("127.0.0.1", *port)) {
            Ok(l) => Ok((Listener::Tcp(l), false)),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => Err(ServeError::InUse(format!(
                "port {port} is in use by another process; pick a different --port"
            ))),
            Err(e) => Err(ServeError::Bind(format!("cannot bind 127.0.0.1:{port}: {e}"))),
        },
    }
}

/// Everything the connection threads share.
struct ServerState {
    config: ServeConfig,
    admission: Admission,
    stats: ServiceStats,
    /// Warm master entailment cache, shared directly by every request
    /// (it is sharded and thread-safe; per-request counters are
    /// deltas, so sharing does not distort statistics).
    cache: AbsCache,
    /// Warm solver-answer store, likewise shared.
    persist: SolverPersist,
    /// Warm predicate store: requests seed from a clone taken under
    /// this lock and their learned entries are absorbed back under
    /// it, in unit order. `None` when the store is disabled.
    preds: Mutex<Option<PredStore>>,
    /// Storage handle every cache load and flush goes through
    /// (fault-injecting under the `inject` feature).
    io: circ_store::Store,
    started: Instant,
}

/// One unit of request work (the serve analogue of a batch file).
enum Unit {
    Path(PathBuf),
    Inline { name: String, source: String },
}

impl Unit {
    fn name(&self) -> String {
        match self {
            Unit::Path(p) => p.display().to_string(),
            Unit::Inline { name, .. } => name.clone(),
        }
    }
}

/// The per-request [`BatchConfig`] — the same knobs a `circ batch`
/// run with this service's flags would use, so rows agree by
/// construction. Journaling, resume, and isolation stay off: the
/// request/response cycle is the supervision loop here.
fn request_batch_config(
    config: &ServeConfig,
    req_timeout: Option<Duration>,
    req_mem: Option<u64>,
) -> BatchConfig {
    BatchConfig {
        omega: config.omega,
        initial_k: config.initial_k,
        use_cache: config.use_cache,
        jobs: 1,
        timeout: req_timeout,
        mem_limit_bytes: req_mem,
        cache_dir: None,
        pred_store: config.pred_store,
        retry: config.retry.clone(),
        cancel: config.cancel.clone(),
        faults: config.faults.clone(),
        triage: config.triage,
        ..BatchConfig::default()
    }
}

/// Checks one unit under the batch supervisor's retry/containment
/// discipline: fault plans reseeded from `content digest ⊕ attempt`,
/// transient `internal-error` rows retried with seeded backoff
/// bounded by the unit's remaining budget, panics contained to an
/// `internal-error` row. Mirrors `circ-batch`'s `Supervisor` minus
/// journaling and process isolation.
fn check_unit(
    state: &ServerState,
    unit: &Unit,
    batch_cfg: &BatchConfig,
    file_timeout: Option<Duration>,
    file_mem: Option<u64>,
    pred_seed: Option<&PredStore>,
) -> (FileRow, PredStore) {
    let start = Instant::now();
    let name = unit.name();
    if batch_cfg.cancel.is_cancelled() {
        let mut row =
            FileRow::new(name, Verdict::BudgetExhausted, "cancelled before start".to_string());
        row.cancelled = true;
        return (row, PredStore::new());
    }
    let source = match unit {
        Unit::Inline { source, .. } => source.clone(),
        Unit::Path(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                let mut row =
                    FileRow::new(name, Verdict::CompileError, format!("cannot read: {e}"));
                row.time_s = start.elapsed().as_secs_f64();
                return (row, PredStore::new());
            }
        },
    };
    let key = digest_bytes(source.as_bytes());
    let mut retries: u64 = 0;
    let mut attempt: u32 = 1;
    loop {
        let remaining = file_timeout.map(|t| t.saturating_sub(start.elapsed()));
        let faults = batch_cfg.faults.reseeded(key ^ u64::from(attempt));
        let ctx = CheckCtx {
            config: batch_cfg,
            file_timeout: remaining,
            file_mem,
            cache: &state.cache,
            persist: &state.persist,
            pred_seed,
            faults: &faults,
        };
        let (mut row, learned) = match catch_unwind(AssertUnwindSafe(|| {
            // Same injection point the worker pool has (compiles
            // to `false` without the `inject` feature): a panic
            // here exercises the containment arm below under the
            // per-attempt reseeded schedule.
            if faults.task_panic() {
                panic!("injected task panic");
            }
            check_source(&name, &source, &ctx)
        })) {
            Ok(result) => result,
            Err(payload) => {
                state.stats.apply(|s| s.panics_contained += 1);
                let row = FileRow::new(
                    name.clone(),
                    Verdict::InternalError,
                    format!("contained worker panic: {}", panic_message(payload.as_ref())),
                );
                (row, PredStore::new())
            }
        };
        let out_of_budget = remaining.is_some_and(|r| r.is_zero());
        if row.verdict == Verdict::InternalError
            && batch_cfg.retry.should_retry(attempt)
            && !batch_cfg.cancel.is_cancelled()
            && !out_of_budget
        {
            retries += 1;
            let left = file_timeout.map(|t| t.saturating_sub(start.elapsed()));
            std::thread::sleep(batch_cfg.retry.backoff(key, attempt, left));
            attempt += 1;
            continue;
        }
        row.retries = retries;
        row.time_s = start.elapsed().as_secs_f64();
        return (row, learned);
    }
}

/// Runs one admitted check request: resolve the work list, carve the
/// request budget across its units, fan out on a pool, merge learned
/// predicate-store entries back in unit order, aggregate worst-wins.
fn run_check(state: &ServerState, input: &CheckInput) -> (Vec<FileRow>, u8) {
    let (req_timeout, req_mem) = state.config.envelope.carve(state.config.max_inflight);
    let units: Vec<Unit> = match input {
        CheckInput::Source { name, source } => {
            vec![Unit::Inline { name: name.clone(), source: source.clone() }]
        }
        CheckInput::Path(p) => match collect_inputs(Path::new(p)) {
            Ok(paths) => paths.into_iter().map(Unit::Path).collect(),
            Err(e) => {
                let row = FileRow::new(p.clone(), Verdict::CompileError, e);
                let exit = worst_exit(std::slice::from_ref(&row));
                return (vec![row], exit);
            }
        },
    };
    let batch_cfg = request_batch_config(&state.config, req_timeout, req_mem);
    let file_timeout = carve_timeout(req_timeout, units.len());
    let file_mem = carve_mem_limit(req_mem, units.len());
    let pred_seed: Option<PredStore> =
        state.preds.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let pool = Pool::new(state.config.jobs);
    let results = pool.try_map(&units, |unit| {
        check_unit(state, unit, &batch_cfg, file_timeout, file_mem, pred_seed.as_ref())
    });
    let mut rows = Vec::with_capacity(units.len());
    let mut learned_stores = Vec::with_capacity(units.len());
    for (unit, result) in units.iter().zip(results) {
        match result {
            Ok((row, learned)) => {
                rows.push(row);
                learned_stores.push(learned);
            }
            Err(e) => {
                // Last-resort containment: a panic that escaped the
                // unit supervisor itself.
                rows.push(FileRow::new(unit.name(), Verdict::InternalError, e.message));
                learned_stores.push(PredStore::new());
            }
        }
    }
    {
        let mut guard = state.preds.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(master) = guard.as_mut() {
            for learned in learned_stores {
                master.absorb(learned);
            }
        }
    }
    let exit = worst_exit(&rows);
    (rows, exit)
}

/// The `stats` response payload: uptime, queue depths, cache sizes,
/// and the single-lock [`ServiceStats`] snapshot.
fn stats_payload(state: &ServerState) -> String {
    let (inflight, queued, draining) = state.admission.depths();
    let snapshot = state.stats.snapshot();
    format!(
        "{{\"uptime_s\":{:.6},\"inflight\":{inflight},\"queued\":{queued},\
         \"draining\":{draining},\"abs_entries\":{},\"solver_entries\":{},\
         \"service\":{}}}",
        state.started.elapsed().as_secs_f64(),
        state.cache.len(),
        state.persist.merged_entries().len(),
        snapshot.to_json(),
    )
}

/// The `health` response payload — cheap enough to answer under full
/// load (neither it nor `stats` passes through admission).
fn health_payload(state: &ServerState) -> String {
    let (inflight, queued, draining) = state.admission.depths();
    format!(
        "{{\"uptime_s\":{:.6},\"inflight\":{inflight},\"queued\":{queued},\
         \"draining\":{draining}}}",
        state.started.elapsed().as_secs_f64(),
    )
}

/// Handles one request line to one response line.
fn handle_request(state: &ServerState, line: &str) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            state.stats.apply(|s| {
                s.requests += 1;
                s.bad_requests += 1;
            });
            return protocol::render_error(None, "bad-request", &e);
        }
    };
    match request {
        Request::Health { id } => {
            state.stats.apply(|s| s.requests += 1);
            protocol::render_payload_response(id.as_deref(), "health", &health_payload(state))
        }
        Request::Stats { id } => {
            state.stats.apply(|s| s.requests += 1);
            protocol::render_payload_response(id.as_deref(), "stats", &stats_payload(state))
        }
        Request::Check { id, input } => {
            state.stats.apply(|s| s.requests += 1);
            match state.admission.admit() {
                Err(Rejected::Overloaded { inflight, queued }) => {
                    state.stats.apply(|s| s.overloaded += 1);
                    protocol::render_error(
                        id.as_deref(),
                        "overloaded",
                        &format!("queue full ({inflight} in flight, {queued} queued); retry later"),
                    )
                }
                Err(Rejected::ShuttingDown) => {
                    state.stats.apply(|s| s.shed_shutting_down += 1);
                    protocol::render_error(
                        id.as_deref(),
                        "shutting-down",
                        "service is draining; no new work admitted",
                    )
                }
                Ok(permit) => {
                    // A queued waiter can win a freed slot in the gap
                    // between the shutdown signal and the accept
                    // loop's drain() call (cancelled checks release
                    // permits quickly). Work that had not *started*
                    // before the signal is shed, not admitted.
                    if state.config.cancel.is_cancelled() {
                        drop(permit);
                        state.stats.apply(|s| s.shed_shutting_down += 1);
                        return protocol::render_error(
                            id.as_deref(),
                            "shutting-down",
                            "service is draining; no new work admitted",
                        );
                    }
                    let start = Instant::now();
                    let (rows, exit) = run_check(state, &input);
                    drop(permit);
                    state.stats.apply(|s| {
                        s.checks += 1;
                        for row in &rows {
                            s.totals.files += 1;
                            match row.verdict {
                                Verdict::Safe => s.totals.safe += 1,
                                Verdict::Race => s.totals.races += 1,
                                Verdict::Inconclusive | Verdict::InternalError => {
                                    s.totals.inconclusive += 1
                                }
                                Verdict::BudgetExhausted => s.totals.budget_exhausted += 1,
                                Verdict::CompileError => s.totals.compile_errors += 1,
                            }
                            s.totals.retries += row.retries;
                            s.totals.cancelled += u64::from(row.cancelled);
                            s.totals.pipeline.add(&row.pipeline);
                        }
                    });
                    protocol::render_check_response(
                        id.as_deref(),
                        &rows,
                        exit,
                        start.elapsed().as_secs_f64(),
                    )
                }
            }
        }
    }
}

/// What one bounded line read produced.
enum LineRead {
    Eof,
    Line(String),
    TooLong,
}

/// Reads one `\n`-terminated line of at most `cap` bytes. Invalid
/// UTF-8 is replaced rather than rejected — the JSON parser will
/// produce the real diagnostic.
fn read_line_bounded(reader: &mut impl BufRead, cap: usize) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(LineRead::Eof)
            } else {
                Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(ix) => {
                buf.extend_from_slice(&chunk[..ix]);
                reader.consume(ix + 1);
                if buf.len() > cap {
                    return Ok(LineRead::TooLong);
                }
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let n = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(n);
                if buf.len() > cap {
                    return Ok(LineRead::TooLong);
                }
            }
        }
    }
}

/// Serves one connection: read request lines, write response lines,
/// until EOF or an I/O error. Every response — including the panic
/// fallback — is written while a response guard is held, so a
/// graceful drain never exits under a half-written line.
fn handle_conn(state: Arc<ServerState>, stream: Stream) {
    stream.set_blocking();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_line_bounded(&mut reader, state.config.max_request_bytes) {
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::TooLong) => {
                let guard = state.admission.begin_response();
                state.stats.apply(|s| {
                    s.requests += 1;
                    s.bad_requests += 1;
                });
                let msg = format!(
                    "request line exceeds {} bytes; closing connection",
                    state.config.max_request_bytes
                );
                let response = protocol::render_error(None, "bad-request", &msg);
                let _ = writeln!(writer, "{response}").and_then(|()| writer.flush());
                drop(guard);
                return;
            }
            Ok(LineRead::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let guard = state.admission.begin_response();
        // The request boundary is the containment boundary: a panic
        // anywhere below degrades this one response, never the server.
        let response = catch_unwind(AssertUnwindSafe(|| handle_request(&state, &line)))
            .unwrap_or_else(|payload| {
                state.stats.apply(|s| s.panics_contained += 1);
                protocol::render_error(
                    None,
                    "internal-error",
                    &format!("contained request panic: {}", panic_message(payload.as_ref())),
                )
            });
        let write_result = writeln!(writer, "{response}").and_then(|()| writer.flush());
        drop(guard);
        if write_result.is_err() {
            return;
        }
    }
}

/// Flushes the warm caches and predicate store to `cache_dir` with
/// one locked merge-flush (see [`circ_batch::flush_caches_in`]): a
/// batch run or second server sharing the directory composes with us
/// instead of being clobbered. Returns warnings (never fails the
/// service — a failed flush leaves the previous on-disk snapshot
/// intact and counts into the `flush_errors` stat).
fn flush_caches(state: &ServerState) -> Vec<String> {
    if !state.config.use_cache {
        return Vec::new();
    }
    let Some(dir) = &state.config.cache_dir else {
        return Vec::new();
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        state.stats.apply(|s| s.totals.pipeline.flush_errors += 1);
        return vec![format!("cannot create cache dir `{}`: {e}", dir.display())];
    }
    // Hold the preds guard across the flush so the store we persist
    // is consistent with the moment of the snapshot.
    let guard = state.preds.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let outcome =
        flush_caches_in(&state.io, dir, &state.cache.snapshot(), &state.persist, guard.as_ref());
    drop(guard);
    if outcome.flush_errors > 0 {
        state.stats.apply(|s| s.totals.pipeline.flush_errors += outcome.flush_errors);
    }
    outcome.warnings
}

/// Builds the shared server state, warm-starting from `cache_dir`
/// when one is configured. Load warnings are returned for stderr.
fn build_state(config: ServeConfig) -> (Arc<ServerState>, Vec<String>) {
    let io = circ_store::Store::with_faults(&config.faults);
    let mut warnings = Vec::new();
    let mut recovered = 0u64;
    let cache_dir = if config.use_cache { config.cache_dir.as_deref() } else { None };
    if let Some(dir) = cache_dir {
        let (swept, sweep_warnings) = io.sweep_stale_tmps(dir);
        recovered += swept;
        warnings.extend(sweep_warnings);
    }
    let (cache, persist) = if config.use_cache {
        match cache_dir {
            Some(dir) => {
                let loaded = load_caches_in(&io, dir);
                warnings.extend(loaded.warnings);
                recovered += loaded.recovered;
                (
                    AbsCache::with_seed(&loaded.abs_seed),
                    SolverPersist::with_seed(loaded.solver_seed),
                )
            }
            None => (AbsCache::with_seed(&circ_core::AbsSeed::empty()), {
                SolverPersist::with_seed(Vec::new())
            }),
        }
    } else {
        (AbsCache::disabled(), SolverPersist::inert())
    };
    let preds = if config.pred_store && config.use_cache {
        let seed = match cache_dir {
            Some(dir) => {
                let path = dir.join(PRED_STORE_FILE);
                match pred_store::load_pred_store_in(&io, &path) {
                    Ok(Some(store)) => store,
                    Ok(None) => PredStore::new(),
                    Err(e) => {
                        warnings
                            .push(format!("ignoring predicate store `{}`: {e}", path.display()));
                        recovered += 1;
                        PredStore::new()
                    }
                }
            }
            None => PredStore::new(),
        };
        Some(seed)
    } else {
        None
    };
    let admission = Admission::new(config.max_inflight, config.queue_depth);
    let state = Arc::new(ServerState {
        admission,
        stats: ServiceStats::new(),
        cache,
        persist,
        preds: Mutex::new(preds),
        io,
        started: Instant::now(),
        config,
    });
    if recovered > 0 {
        state.stats.apply(|s| s.totals.pipeline.store_recoveries += recovered);
    }
    (state, warnings)
}

/// Runs the service until its [`CancelToken`] trips, then drains
/// gracefully. Returns the process exit code (3, "drained" — the
/// same code a cancelled batch run uses) or a [`ServeError`] the CLI
/// maps to exit 74. Progress and warnings go to stderr.
pub fn serve(config: ServeConfig) -> Result<u8, ServeError> {
    let (listener, reclaimed) = bind(&config.bind)?;
    if reclaimed {
        eprintln!("circ serve: reclaimed stale socket left by an unclean shutdown");
    }
    if listener.set_nonblocking().is_err() {
        return Err(ServeError::Bind("cannot set the listener non-blocking".into()));
    }
    let cancel = config.cancel.clone();
    let flush = config.flush.clone();
    let (state, warnings) = build_state(config);
    for w in &warnings {
        eprintln!("circ serve: warning: {w}");
    }
    eprintln!(
        "circ serve: listening on {} ({} in-flight, queue {})",
        listener.describe(),
        state.config.max_inflight.max(1),
        state.config.queue_depth
    );
    while !cancel.is_cancelled() {
        if flush.take() {
            let flush_warnings = flush_caches(&state);
            for w in &flush_warnings {
                eprintln!("circ serve: warning: {w}");
            }
            eprintln!("circ serve: flushed caches ({} abs entries)", state.cache.len());
        }
        match listener.accept() {
            Ok(stream) => {
                let state = Arc::clone(&state);
                // Detached on purpose: connection threads block on
                // client reads; drain must not wait for clients to
                // hang up, only for in-flight *requests* to settle.
                std::thread::spawn(move || handle_conn(state, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("circ serve: accept failed: {e}; continuing");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    let (inflight, queued, _) = state.admission.depths();
    eprintln!("circ serve: draining ({inflight} in flight, {queued} queued)");
    state.admission.drain();
    state.admission.await_idle();
    let flush_warnings = flush_caches(&state);
    for w in &flush_warnings {
        eprintln!("circ serve: warning: {w}");
    }
    #[cfg(unix)]
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    let snapshot = state.stats.snapshot();
    eprintln!(
        "circ serve: drained cleanly ({} requests, {} checks, {} overloaded, {} rejected while shutting down)",
        snapshot.requests, snapshot.checks, snapshot.overloaded, snapshot.shed_shutting_down
    );
    Ok(3)
}
