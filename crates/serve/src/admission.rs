//! The admission controller: a bounded concurrency gate with a
//! bounded wait queue in front of it.
//!
//! Every check request must acquire a [`Permit`] before it may touch
//! the checking pipeline. At most `max_inflight` permits exist at
//! once; up to `queue_depth` further requests may *wait* for one
//! (backpressure); anything beyond that is rejected immediately with
//! [`Rejected::Overloaded`] — the service sheds load rather than
//! queueing unboundedly or letting concurrent requests blow through
//! the memory envelope. A graceful drain ([`Admission::drain`]) wakes
//! every queued waiter with [`Rejected::ShuttingDown`] and refuses
//! new admissions while in-flight permits run to completion.
//!
//! The whole controller is one mutex plus one condvar: admission
//! decisions are request-granularity, so contention is irrelevant,
//! and a single lock makes the `(inflight, queued)` pair the queue
//!-depth reports can never be torn.

use std::sync::{Condvar, Mutex};

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The concurrency gate and the wait queue are both full.
    Overloaded {
        /// Requests holding permits when the rejection was decided.
        inflight: usize,
        /// Requests waiting for a permit at that moment.
        queued: usize,
    },
    /// The service is draining; no new work is admitted.
    ShuttingDown,
}

#[derive(Debug, Default)]
struct State {
    /// Permits currently held.
    inflight: usize,
    /// Threads blocked in [`Admission::admit`] waiting for a permit.
    queued: usize,
    /// Connection threads busy handling any request (admitted or
    /// not), including writing its response. Graceful drain waits on
    /// this too, so the process never exits under a half-written
    /// response line.
    responding: usize,
    /// Set once by [`Admission::drain`]; never cleared.
    draining: bool,
}

/// The admission controller. See the module docs.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<State>,
    wake: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

/// An admitted request's slot; releasing it (drop) wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.lock();
        st.inflight -= 1;
        self.admission.wake.notify_all();
    }
}

/// A connection thread's "busy with a request" marker, held from
/// parse to response flush. Only [`Admission::await_idle`] looks at
/// it.
#[derive(Debug)]
pub struct ResponseGuard<'a> {
    admission: &'a Admission,
}

impl Drop for ResponseGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.lock();
        st.responding -= 1;
        self.admission.wake.notify_all();
    }
}

impl Admission {
    /// A controller admitting up to `max_inflight` concurrent
    /// requests (floored at 1) with up to `queue_depth` waiters.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The concurrency ceiling this controller enforces.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Acquire a permit: immediately if a slot is free, after a
    /// bounded wait if the queue has room, otherwise `Err`. Blocks
    /// only in the queued case; a drain wakes every waiter with
    /// [`Rejected::ShuttingDown`].
    pub fn admit(&self) -> Result<Permit<'_>, Rejected> {
        let mut st = self.lock();
        if st.draining {
            return Err(Rejected::ShuttingDown);
        }
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Ok(Permit { admission: self });
        }
        if st.queued >= self.queue_depth {
            return Err(Rejected::Overloaded { inflight: st.inflight, queued: st.queued });
        }
        st.queued += 1;
        loop {
            st = self.wake.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.draining {
                st.queued -= 1;
                self.wake.notify_all();
                return Err(Rejected::ShuttingDown);
            }
            if st.inflight < self.max_inflight {
                st.queued -= 1;
                st.inflight += 1;
                return Ok(Permit { admission: self });
            }
        }
    }

    /// Mark a connection thread busy with one request (through its
    /// response write).
    pub fn begin_response(&self) -> ResponseGuard<'_> {
        let mut st = self.lock();
        st.responding += 1;
        ResponseGuard { admission: self }
    }

    /// Stop admitting, wake every queued waiter into a
    /// `ShuttingDown` rejection. Idempotent.
    pub fn drain(&self) {
        let mut st = self.lock();
        st.draining = true;
        self.wake.notify_all();
    }

    /// `(inflight, queued, draining)` — read together under the one
    /// lock, so the pair is never torn.
    pub fn depths(&self) -> (usize, usize, bool) {
        let st = self.lock();
        (st.inflight, st.queued, st.draining)
    }

    /// Block until no permit is held, no waiter is queued, and no
    /// connection thread is mid-response. Call after [`drain`]
    /// (new admissions are refused, so the wait is monotone).
    ///
    /// [`drain`]: Admission::drain
    pub fn await_idle(&self) {
        let mut st = self.lock();
        while st.inflight > 0 || st.queued > 0 || st.responding > 0 {
            st = self.wake.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity_then_rejects_overloaded() {
        let adm = Admission::new(2, 0);
        let p1 = adm.admit().expect("slot 1");
        let p2 = adm.admit().expect("slot 2");
        match adm.admit() {
            Err(Rejected::Overloaded { inflight, queued }) => {
                assert_eq!((inflight, queued), (2, 0));
            }
            other => panic!("expected overload, got {other:?}"),
        }
        drop(p1);
        let _p3 = adm.admit().expect("released slot is reusable");
        drop(p2);
    }

    #[test]
    fn queued_waiter_gets_the_released_slot() {
        let adm = Arc::new(Admission::new(1, 1));
        let p = adm.admit().expect("slot");
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit().map(|_| ()));
        // Wait until the waiter is actually queued, then release.
        while adm.depths().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue is now full: the next request is shed, not queued.
        assert!(matches!(adm.admit(), Err(Rejected::Overloaded { queued: 1, .. })));
        drop(p);
        assert_eq!(waiter.join().unwrap(), Ok(()), "waiter must get the freed slot");
    }

    #[test]
    fn drain_wakes_waiters_and_refuses_new_work() {
        let adm = Arc::new(Admission::new(1, 4));
        let p = adm.admit().expect("slot");
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit().map(|_| ()));
        while adm.depths().1 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        adm.drain();
        assert_eq!(waiter.join().unwrap(), Err(Rejected::ShuttingDown));
        assert_eq!(adm.admit().unwrap_err(), Rejected::ShuttingDown);
        // In-flight work still finishes; await_idle returns once the
        // last permit drops.
        let adm3 = Arc::clone(&adm);
        let idle = std::thread::spawn(move || adm3.await_idle());
        drop(p);
        idle.join().unwrap();
        assert_eq!(adm.depths(), (0, 0, true));
    }

    #[test]
    fn await_idle_waits_for_response_writers_too() {
        let adm = Arc::new(Admission::new(1, 0));
        let guard = adm.begin_response();
        adm.drain();
        let adm2 = Arc::clone(&adm);
        let idle = std::thread::spawn(move || adm2.await_idle());
        std::thread::sleep(Duration::from_millis(20));
        assert!(!idle.is_finished(), "idle must wait for the response writer");
        drop(guard);
        idle.join().unwrap();
    }
}
