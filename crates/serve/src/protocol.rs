//! The serve wire protocol: line-delimited JSON, one request object
//! per line in, one response object per line out, over a unix-domain
//! socket or a localhost TCP connection.
//!
//! Requests (`op` selects the operation; `id`, if present, is echoed
//! verbatim in the response so clients can pipeline):
//!
//! ```text
//! {"op":"check","source":"<NesL text>","name":"<label>","id":7}
//! {"op":"check","path":"<file.nesl | dir | manifest.json>"}
//! {"op":"stats"}
//! {"op":"health"}
//! ```
//!
//! Responses:
//!
//! ```text
//! {"ok":true,"id":7,"rows":[<batch row>...],"exit":N,"time_s":...}
//! {"ok":true,"stats":{...}}   {"ok":true,"health":{...}}
//! {"ok":false,"error":"overloaded"|"shutting-down"|"bad-request","detail":"..."}
//! ```
//!
//! The `rows` array elements are byte-identical to `circ batch`'s
//! report rows ([`circ_batch::render_row_json`]) — the soundness gate
//! diffing serve verdicts against batch verdicts depends on the two
//! sharing one renderer. Everything here parses with the same
//! damage-rejecting [`circ_batch::mjson`] reader the supervision
//! layer trusts across crash boundaries.

use circ_batch::mjson::{self, Value};
use circ_batch::{json_escape, render_row_json, FileRow};

/// What a `check` request asks the service to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckInput {
    /// Inline NesL source with a display label.
    Source {
        /// Label used as the row's `file` field (`"<inline>"` when
        /// the request carried none).
        name: String,
        /// The program text.
        source: String,
    },
    /// A server-side path: a `.nesl` file, a directory of them, or a
    /// `.json` manifest — the same work-list semantics as
    /// `circ batch`.
    Path(String),
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a check and respond with batch rows.
    Check {
        /// The client's `id`, rendered back verbatim (JSON literal).
        id: Option<String>,
        /// What to check.
        input: CheckInput,
    },
    /// Service counters, queue depths, cache sizes, uptime.
    Stats {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Cheap liveness probe.
    Health {
        /// Echoed request id.
        id: Option<String>,
    },
}

/// Re-renders a parsed `id` value as the JSON literal to echo.
/// Strings and numbers are accepted; anything else is a bad request
/// (an object id would make response framing ambiguous).
fn id_literal(v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(format!("\"{}\"", json_escape(s))),
        Value::Num(raw) => Ok(raw.clone()),
        _ => Err("`id` must be a string or number".into()),
    }
}

/// Parses one request line. Every defect — unparseable JSON, a
/// missing or unknown `op`, a `check` without exactly one input —
/// is an `Err` the server answers with a `bad-request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = mjson::parse(line.trim()).map_err(|e| format!("unparseable request: {e}"))?;
    let id = match v.get("id") {
        None => None,
        Some(idv) => Some(id_literal(idv)?),
    };
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string `op` (expected check|stats|health)".to_string())?;
    match op {
        "stats" => Ok(Request::Stats { id }),
        "health" => Ok(Request::Health { id }),
        "check" => {
            let source = v.get("source").map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "`source` must be a string".to_string())
            });
            let path = v.get("path").map(|p| {
                p.as_str().map(str::to_string).ok_or_else(|| "`path` must be a string".to_string())
            });
            match (source, path) {
                (Some(source), None) => {
                    let name = match v.get("name") {
                        None => "<inline>".to_string(),
                        Some(n) => n
                            .as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "`name` must be a string".to_string())?,
                    };
                    Ok(Request::Check { id, input: CheckInput::Source { name, source: source? } })
                }
                (None, Some(path)) => Ok(Request::Check { id, input: CheckInput::Path(path?) }),
                (None, None) => Err("check needs `source` or `path`".into()),
                (Some(_), Some(_)) => Err("check takes `source` or `path`, not both".into()),
            }
        }
        other => Err(format!("unknown op `{other}` (expected check|stats|health)")),
    }
}

/// The `"id":<literal>,` fragment, or nothing when the request had no
/// id.
fn id_fragment(id: Option<&str>) -> String {
    match id {
        Some(lit) => format!("\"id\":{lit},"),
        None => String::new(),
    }
}

/// Renders a successful check response: batch rows, the worst-wins
/// exit code the same corpus would produce under `circ batch`, and
/// the request's wall time.
pub fn render_check_response(id: Option<&str>, rows: &[FileRow], exit: u8, time_s: f64) -> String {
    let mut s = format!("{{\"ok\":true,{}\"rows\":[", id_fragment(id));
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&render_row_json(row));
    }
    s.push_str(&format!("],\"exit\":{exit},\"time_s\":{time_s:.6}}}"));
    s
}

/// Renders a successful non-check response with one payload object
/// under `key` (`stats` or `health`). `payload_json` must already be
/// a JSON object.
pub fn render_payload_response(id: Option<&str>, key: &str, payload_json: &str) -> String {
    format!("{{\"ok\":true,{}\"{key}\":{payload_json}}}", id_fragment(id))
}

/// A structured error response: `kind` is one of the stable strings
/// `overloaded`, `shutting-down`, `bad-request`, `internal-error`.
pub fn render_error(id: Option<&str>, kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,{}\"error\":\"{kind}\",\"detail\":\"{}\"}}",
        id_fragment(id),
        json_escape(detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_ops_and_echoes_ids() {
        assert_eq!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats { id: None }));
        assert_eq!(
            parse_request("{\"op\":\"health\",\"id\":7}"),
            Ok(Request::Health { id: Some("7".into()) })
        );
        assert_eq!(
            parse_request("{\"op\":\"check\",\"source\":\"global int x;\",\"id\":\"a\"}"),
            Ok(Request::Check {
                id: Some("\"a\"".into()),
                input: CheckInput::Source {
                    name: "<inline>".into(),
                    source: "global int x;".into()
                }
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"check\",\"path\":\"examples/\"}"),
            Ok(Request::Check { id: None, input: CheckInput::Path("examples/".into()) })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "{\"op\":\"launch-missiles\"}",
            "{\"source\":\"x\"}",
            "{\"op\":\"check\"}",
            "{\"op\":\"check\",\"source\":\"a\",\"path\":\"b\"}",
            "{\"op\":\"check\",\"source\":1}",
            "{\"op\":\"check\",\"path\":{}}",
            "{\"op\":\"check\",\"source\":\"x\",\"name\":3}",
            "{\"op\":\"stats\",\"id\":[1]}",
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn responses_render_as_single_parseable_lines() {
        use circ_batch::Verdict;
        let row = FileRow::new("a.nesl".into(), Verdict::Safe, "1 race variable(s)".into());
        for line in [
            render_check_response(Some("42"), &[row], 0, 0.25),
            render_payload_response(None, "health", "{\"uptime_s\":1.000000}"),
            render_error(Some("\"x\""), "overloaded", "queue full (2 in flight, 4 queued)"),
        ] {
            assert!(!line.contains('\n'), "{line}");
            let v = mjson::parse(&line).expect(&line);
            assert!(v.get("ok").is_some(), "{line}");
        }
        let err = render_error(None, "bad-request", "why \"quoted\"");
        let v = mjson::parse(&err).unwrap();
        assert_eq!(v.get("error").and_then(Value::as_str), Some("bad-request"));
        assert_eq!(v.get("detail").and_then(Value::as_str), Some("why \"quoted\""));
    }
}
