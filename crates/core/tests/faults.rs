//! Fault-injection soundness tests (`--features inject`).
//!
//! The injection schedules are deterministic (pure functions of their
//! seed), so every failing schedule replays exactly. The invariant
//! under test: injected faults — solver Unknowns, worker panics,
//! stalls — may only *degrade* a verdict to Unknown. A run that still
//! answers Safe or Unsafe under injection answered identically to the
//! clean run, and every run terminates.

#![cfg(feature = "inject")]

use circ_core::{circ, CircConfig, CircOutcome, FaultPlan, UnknownReason};
use circ_ir::{figure1_cfa, BoolExpr, CfaBuilder, Expr, MtProgram, Op};
use std::time::{Duration, Instant};

fn fig1_program() -> MtProgram {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Figure 1 with the atomic marks removed: the test-and-set is racy.
fn broken_fig1() -> MtProgram {
    let mut b = CfaBuilder::new("broken");
    let x = b.global("x");
    let state = b.global("state");
    let old = b.local("old");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    let l5 = b.fresh_loc();
    let l6 = b.fresh_loc();
    let l7 = b.fresh_loc();
    b.edge(l1, Op::assign(old, Expr::var(state)), l2);
    b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
    b.edge(l3, Op::assign(state, Expr::int(1)), l5);
    b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
    b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
    b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
    b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
    b.edge(l7, Op::assign(state, Expr::int(0)), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Run with a deadline backstop so an injection schedule that sends
/// the loop in circles still terminates the test promptly.
fn cfg_with(faults: FaultPlan) -> CircConfig {
    CircConfig { faults, timeout: Some(Duration::from_secs(20)), ..CircConfig::default() }
}

#[test]
fn injected_solver_unknowns_never_flip_verdicts() {
    for seed in 0..6u64 {
        let faults = FaultPlan::seeded(seed).with_solver_unknown(100);
        let t = Instant::now();
        let outcome = circ(&fig1_program(), &cfg_with(faults));
        assert!(
            !outcome.is_unsafe(),
            "seed {seed}: solver Unknowns flipped a safe model to Unsafe: {outcome:?}"
        );
        assert!(t.elapsed() < Duration::from_secs(60), "seed {seed} did not terminate promptly");

        let faults = FaultPlan::seeded(seed).with_solver_unknown(100);
        let outcome = circ(&broken_fig1(), &cfg_with(faults));
        assert!(
            !outcome.is_safe(),
            "seed {seed}: solver Unknowns flipped a racy model to Safe: {outcome:?}"
        );
    }
}

#[test]
fn injection_is_deterministic_per_seed() {
    let run = || {
        let faults = FaultPlan::seeded(42).with_solver_unknown(250);
        match circ(&fig1_program(), &cfg_with(faults)) {
            CircOutcome::Safe(r) => format!("safe preds={}", r.preds.len()),
            CircOutcome::Unsafe(r) => format!("unsafe k={}", r.k),
            CircOutcome::Unknown(r) => format!("unknown {:?}", r.reason),
        }
    };
    assert_eq!(run(), run(), "same seed, same schedule, different outcome");
}

#[test]
fn injected_worker_panic_becomes_internal_error() {
    // Every task panics: the first parallel phase blows up, the pool
    // contains it per task, `Pool::map` re-raises, and the `circ`
    // boundary converts the unwind into a reported verdict instead of
    // crossing into the caller.
    let faults = FaultPlan::seeded(7).with_task_panic(1000);
    let cfg = CircConfig { jobs: 4, ..cfg_with(faults.clone()) };
    let outcome = circ(&fig1_program(), &cfg);
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(InternalError), got {outcome:?}");
    };
    let UnknownReason::InternalError(msg) = &report.reason else {
        panic!("expected InternalError, got {:?}", report.reason);
    };
    assert!(msg.contains("injected task panic"), "unexpected panic message: {msg}");
    assert!(!report.reason.is_budget_exhausted());
    assert!(faults.injected() > 0, "no fault recorded as fired");
    assert!(report.stats.pipeline.faults_injected > 0, "stats missed the injection");
}

#[test]
fn one_poisoned_row_leaves_sibling_rows_intact() {
    // The acceptance shape of the bench harness, in miniature: a batch
    // of runs where one row's schedule is poisoned. The poisoned row
    // degrades to InternalError; the clean rows answer exactly as an
    // injection-free baseline.
    let rows: Vec<(&str, MtProgram)> =
        vec![("fig1", fig1_program()), ("broken", broken_fig1()), ("fig1-again", fig1_program())];
    let baseline: Vec<String> =
        rows.iter().map(|(_, p)| verdict(&circ(p, &cfg_with(FaultPlan::inert())))).collect();

    let mut poisoned_verdicts = Vec::new();
    for (i, (_, p)) in rows.iter().enumerate() {
        let faults =
            if i == 1 { FaultPlan::seeded(9).with_task_panic(1000) } else { FaultPlan::inert() };
        let cfg = CircConfig { jobs: 4, ..cfg_with(faults) };
        poisoned_verdicts.push(circ(p, &cfg));
    }

    assert!(
        matches!(
            &poisoned_verdicts[1],
            CircOutcome::Unknown(r) if matches!(r.reason, UnknownReason::InternalError(_))
        ),
        "poisoned row should degrade to InternalError: {:?}",
        poisoned_verdicts[1]
    );
    assert_eq!(verdict(&poisoned_verdicts[0]), baseline[0], "clean sibling row diverged");
    assert_eq!(verdict(&poisoned_verdicts[2]), baseline[2], "clean sibling row diverged");
}

#[test]
fn stall_between_polls_still_honors_the_deadline() {
    // A one-shot two-second stall with a one-second deadline: the run
    // cannot observe the deadline during the stall, but the very next
    // poll must trip it.
    let faults = FaultPlan::seeded(3).with_stall(Duration::from_secs(2));
    let cfg = CircConfig { faults, timeout: Some(Duration::from_secs(1)), ..CircConfig::default() };
    let t = Instant::now();
    let outcome = circ(&fig1_program(), &cfg);
    let elapsed = t.elapsed();
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(Deadline), got {outcome:?}");
    };
    assert!(
        matches!(report.reason, UnknownReason::Deadline(_)),
        "expected Deadline, got {:?}",
        report.reason
    );
    assert!(elapsed >= Duration::from_secs(2), "stall did not happen: {elapsed:?}");
    assert!(elapsed < Duration::from_secs(10), "deadline ignored after the stall: {elapsed:?}");
}

fn verdict(outcome: &CircOutcome) -> String {
    match outcome {
        CircOutcome::Safe(r) => format!("safe preds={} k={}", r.preds.len(), r.k),
        CircOutcome::Unsafe(r) => format!("unsafe k={} threads={}", r.k, r.cex.n_threads),
        CircOutcome::Unknown(r) => format!("unknown {:?}", r.reason),
    }
}
