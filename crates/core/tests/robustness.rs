//! Resource-governance tests: deadlines, memory ceilings,
//! cancellation, and coverage for every `UnknownReason` the driver can
//! emit. The soundness claim under test throughout: exhaustion and
//! analysis limits only ever *degrade* a verdict to `Unknown` — a run
//! that answers Safe or Unsafe did so with full evidence, and a run
//! that gives up still reports its partial statistics and log.

use circ_core::{
    circ, refine, AbsCtx, AbsState, AbstractCex, AbstractError, AbstractRace, Budget, CancelToken,
    CircConfig, CircOutcome, PredSet, Property, RefineOutcome, TraceOp, UnknownReason,
    UnknownReport,
};
use circ_ir::{figure1_cfa, BoolExpr, CfaBuilder, Expr, MtProgram, Op, Pred};
use std::time::{Duration, Instant};

/// A safe model built to make the analysis expensive: `n` globals are
/// each bumped in a chain, so the inferred context havocs all of them
/// and reachability splits cubes over the `n` seeded predicates —
/// state growth is exponential in `n`, and the collapsed context grows
/// large enough that the ω-goodness counter enumeration explodes too.
fn expander(n: usize) -> (MtProgram, Vec<Pred>) {
    let mut b = CfaBuilder::new("expander");
    let x = b.global("x");
    let gs: Vec<_> = (0..n).map(|i| b.global(format!("g{i}"))).collect();
    let mut cur = b.entry();
    for &g in &gs {
        let next = b.fresh_loc();
        b.edge(cur, Op::assign(g, Expr::var(g) + Expr::int(1)), next);
        cur = next;
    }
    let atomic = b.fresh_loc();
    b.mark_atomic(atomic);
    b.edge(cur, Op::skip(), atomic);
    let after = b.fresh_loc();
    b.edge(atomic, Op::assign(x, Expr::var(x) + Expr::int(1)), after);
    b.edge(after, Op::skip(), b.entry());
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let preds = gs.iter().map(|&g| Pred::eq(Expr::var(g), Expr::int(0))).collect();
    (MtProgram::new(cfa, x), preds)
}

fn fig1_program() -> MtProgram {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Every give-up path must leave evidence behind: the partial run's
/// counters and its event log up to the point of exhaustion.
fn assert_partial_evidence(report: &UnknownReport) {
    assert!(report.stats.pipeline.budget_polls > 0, "no budget polls recorded");
    assert!(report.stats.reach_runs > 0, "no reachability attempt recorded");
    assert!(!report.log.events.is_empty(), "empty event log");
}

#[test]
fn deadline_degrades_unbounded_run_to_unknown() {
    // Without a budget this model runs for minutes (the probe that
    // motivated the governed counter enumeration); with a one-second
    // deadline it must give up promptly and honestly.
    let (program, preds) = expander(8);
    let cfg = CircConfig {
        initial_preds: preds,
        max_states: 50_000_000,
        timeout: Some(Duration::from_secs(1)),
        ..CircConfig::omega()
    };
    let t = Instant::now();
    let outcome = circ(&program, &cfg);
    let elapsed = t.elapsed();
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(Deadline), got {outcome:?}");
    };
    assert!(
        matches!(report.reason, UnknownReason::Deadline(_)),
        "expected Deadline, got {:?}",
        report.reason
    );
    assert!(report.reason.is_budget_exhausted());
    // The poll spacing bounds the overshoot: well under the multi-
    // minute unbounded runtime. Generous to absorb slow CI machines.
    assert!(elapsed < Duration::from_secs(10), "deadline overshot: {elapsed:?}");
    assert!(elapsed >= Duration::from_secs(1), "gave up before the deadline: {elapsed:?}");
    assert_partial_evidence(&report);
}

#[test]
fn memory_ceiling_degrades_to_unknown() {
    let (program, preds) = expander(8);
    let cfg = CircConfig {
        initial_preds: preds,
        max_states: 50_000_000,
        mem_limit_bytes: Some(256 * 1024),
        ..CircConfig::omega()
    };
    let outcome = circ(&program, &cfg);
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(MemoryLimit), got {outcome:?}");
    };
    let UnknownReason::MemoryLimit { limit_bytes, charged_bytes } = report.reason else {
        panic!("expected MemoryLimit, got {:?}", report.reason);
    };
    assert_eq!(limit_bytes, 256 * 1024);
    assert!(charged_bytes > limit_bytes, "overdraft not reported: {charged_bytes}");
    assert!(report.stats.pipeline.mem_charged_bytes > limit_bytes);
    assert_partial_evidence(&report);
}

#[test]
fn pre_cancelled_token_aborts_at_first_poll() {
    let token = CancelToken::new();
    token.cancel();
    let cfg = CircConfig { cancel: token, ..CircConfig::default() };
    let outcome = circ(&fig1_program(), &cfg);
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(Cancelled), got {outcome:?}");
    };
    assert!(matches!(report.reason, UnknownReason::Cancelled), "{:?}", report.reason);
    assert!(report.reason.is_budget_exhausted());
    assert!(report.stats.pipeline.budget_polls > 0);
}

#[test]
fn cross_thread_cancellation_stops_a_long_run() {
    let (program, preds) = expander(8);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            token.cancel();
        })
    };
    let cfg = CircConfig {
        initial_preds: preds,
        max_states: 50_000_000,
        cancel: token,
        ..CircConfig::omega()
    };
    let t = Instant::now();
    let outcome = circ(&program, &cfg);
    let elapsed = t.elapsed();
    canceller.join().unwrap();
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(Cancelled), got {outcome:?}");
    };
    assert!(matches!(report.reason, UnknownReason::Cancelled), "{:?}", report.reason);
    assert!(elapsed < Duration::from_secs(30), "cancellation ignored for {elapsed:?}");
    assert_partial_evidence(&report);
}

#[test]
fn generous_budget_does_not_change_the_verdict() {
    // Soundness of the governance layer itself: a budget that never
    // trips must leave the verdict exactly as the unbudgeted run's.
    let cfg = CircConfig {
        timeout: Some(Duration::from_secs(600)),
        mem_limit_bytes: Some(1 << 30),
        ..CircConfig::default()
    };
    let outcome = circ(&fig1_program(), &cfg);
    assert!(outcome.is_safe(), "budget plumbing flipped a Safe verdict: {outcome:?}");
}

#[test]
fn state_limit_reports_partial_evidence() {
    let cfg = CircConfig { max_states: 2, ..CircConfig::default() };
    let outcome = circ(&fig1_program(), &cfg);
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(StateLimit), got {outcome:?}");
    };
    assert!(matches!(report.reason, UnknownReason::StateLimit(2)), "{:?}", report.reason);
    assert!(!report.reason.is_budget_exhausted(), "StateLimit is an analysis bound, not a budget");
    assert_partial_evidence(&report);
}

#[test]
fn iteration_limit_reports_partial_evidence() {
    // Figure 1 needs several refinement rounds; one outer round is not
    // enough, so the driver must give up with IterationLimit.
    let cfg = CircConfig { max_outer: 1, ..CircConfig::default() };
    let outcome = circ(&fig1_program(), &cfg);
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(IterationLimit), got {outcome:?}");
    };
    assert!(matches!(report.reason, UnknownReason::IterationLimit), "{:?}", report.reason);
    assert!(!report.reason.is_budget_exhausted());
    assert_eq!(report.stats.outer_iterations, 1);
    assert_partial_evidence(&report);
}

#[test]
fn nonlinear_guard_surfaces_as_refine_failed() {
    // A racy increment loop guarded by a non-linear assume: the
    // abstraction passes through it (soundly, via Unknown-as-sat), the
    // race is found, and refinement then fails to encode the trace
    // formula — which must surface as RefineFailed, not a panic.
    let mut b = CfaBuilder::new("nonlinear");
    let x = b.global("x");
    let y = b.global("y");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    b.edge(l1, Op::assume(BoolExpr::ge(Expr::var(y) * Expr::var(y), Expr::int(0))), l2);
    b.edge(l2, Op::assign(x, Expr::var(x) + Expr::int(1)), l3);
    b.edge(l3, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::default());
    let CircOutcome::Unknown(report) = outcome else {
        panic!("expected Unknown(RefineFailed), got {outcome:?}");
    };
    assert!(
        matches!(report.reason, UnknownReason::RefineFailed(_)),
        "expected RefineFailed, got {:?}",
        report.reason
    );
    assert!(!report.reason.is_budget_exhausted());
    assert_partial_evidence(&report);
}

/// The two `Stuck` exits of refinement, driven directly: both fire
/// when a counterexample needs context threads but no concretizer
/// exists (an empty context model), and both must return gracefully
/// rather than panic. The driver maps them to `UnknownReason::Stuck`.
#[test]
fn refine_without_concretizer_is_stuck_not_panicking() {
    let program = fig1_program();
    let cfa = program.cfa_arc();
    let preds = PredSet::from_preds(&cfa, std::iter::empty());
    let acfa = circ_acfa::Acfa::empty(0);
    let abs = AbsCtx::new(cfa.clone(), preds.clone());
    let state = AbsState {
        pc: cfa.entry(),
        cube: abs.initial_cube(),
        ctx: circ_acfa::ContextState::initial(&acfa, circ_acfa::CVal::Fin(1)),
    };
    let budget = Budget::unlimited();

    // A race that blames a context thread, with no context to blame.
    let cex = AbstractCex {
        steps: Vec::new(),
        final_state: state.clone(),
        error: AbstractError::Race(AbstractRace::MainAndContext {
            main_writes: true,
            ctx_loc: acfa.entry(),
        }),
    };
    let (outcome, _) = refine(&program, &acfa, &cex, None, &preds, Property::Race, &budget);
    let RefineOutcome::Stuck(msg) = outcome else {
        panic!("expected Stuck, got {outcome:?}");
    };
    assert!(msg.contains("empty context"), "{msg}");

    // A trace that moves a context thread, with no concretizer.
    let cex = AbstractCex {
        steps: vec![(state.clone(), TraceOp::Ctx { src: acfa.entry(), edge_ix: 0 })],
        final_state: state,
        error: AbstractError::Assertion,
    };
    let (outcome, _) = refine(&program, &acfa, &cex, None, &preds, Property::Race, &budget);
    let RefineOutcome::Stuck(msg) = outcome else {
        panic!("expected Stuck, got {outcome:?}");
    };
    assert!(msg.contains("concretizer"), "{msg}");
}
