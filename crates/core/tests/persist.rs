//! End-to-end cache persistence: a full CIRC run saved to disk must
//! warm a second process-like run (strictly fewer entailment misses,
//! identical verdict), and a damaged file must degrade to a cold
//! start — never a wrong verdict, never a crash. This is the
//! integration-level counterpart of the wire-format unit tests in
//! `circ_core::persist` / `circ_smt::persist`.

use circ_core::persist::{load_abs_cache, save_abs_cache};
use circ_core::{circ_with_caches, AbsCache, CircConfig, CircOutcome, SolverPersist};
use circ_ir::{figure1_cfa, MtProgram};
use circ_smt::persist::{load_solver_cache, save_solver_cache};
use std::fs;
use std::path::PathBuf;

fn figure1_program() -> MtProgram {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("persist-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs Figure 1 against the given seeds and returns the outcome plus
/// the run's cache and store (for saving).
fn run(
    abs_seed: &circ_core::AbsSeed,
    solver_seed: Vec<(circ_smt::Formula, circ_smt::SatResult)>,
) -> (CircOutcome, AbsCache, SolverPersist) {
    let program = figure1_program();
    let cache = AbsCache::with_seed(abs_seed);
    let persist = SolverPersist::with_seed(solver_seed);
    let outcome = circ_with_caches(&program, &CircConfig::default(), &cache, &persist);
    (outcome, cache, persist)
}

#[test]
fn save_then_load_warms_a_second_run() {
    let dir = tmp("roundtrip");
    let abs_path = dir.join("abs.cache");
    let solver_path = dir.join("solver.cache");

    let (cold, cache, persist) = run(&circ_core::AbsSeed::empty(), Vec::new());
    assert!(cold.is_safe(), "figure 1 must verify");
    let cold_misses = cold.stats().pipeline.abs.cache_misses;
    assert!(cold_misses > 0, "a cold run must miss");
    save_abs_cache(&abs_path, &cache.snapshot()).unwrap();
    save_solver_cache(&solver_path, &persist).unwrap();

    let abs_seed = load_abs_cache(&abs_path).unwrap().expect("file just written");
    let solver_seed = load_solver_cache(&solver_path).unwrap().expect("file just written");
    assert!(!abs_seed.is_empty());
    assert!(!solver_seed.is_empty());

    let (warm, warm_cache, _) = run(&abs_seed, solver_seed);
    assert!(warm.is_safe(), "warm verdict must match cold");
    let warm_misses = warm.stats().pipeline.abs.cache_misses;
    assert!(
        warm_misses < cold_misses,
        "warm run must miss strictly less ({warm_misses} vs {cold_misses})"
    );
    // Verdict essence is identical, not just the Safe/Unsafe bit.
    let (CircOutcome::Safe(c), CircOutcome::Safe(w)) = (&cold, &warm) else { unreachable!() };
    assert_eq!(format!("{:?}", c.preds), format!("{:?}", w.preds));
    assert_eq!(c.k, w.k);

    // Fixpoint: the warm run learned nothing the seed did not have.
    assert_eq!(warm_cache.snapshot().len(), abs_seed.len());
}

#[test]
fn every_single_bit_flip_is_detected() {
    let dir = tmp("bitflip");
    let abs_path = dir.join("abs.cache");
    let (cold, cache, persist) = run(&circ_core::AbsSeed::empty(), Vec::new());
    assert!(cold.is_safe());
    save_abs_cache(&abs_path, &cache.snapshot()).unwrap();
    let solver_path = dir.join("solver.cache");
    save_solver_cache(&solver_path, &persist).unwrap();

    let abs_bytes = fs::read(&abs_path).unwrap();
    // Exhaustive over bytes would be slow for the solver file; stride
    // through both at a prime step so every region gets hit.
    for (path, bytes, stride) in
        [(&abs_path, &abs_bytes, 7usize), (&solver_path, &fs::read(&solver_path).unwrap(), 13)]
    {
        for ix in (0..bytes.len()).step_by(stride) {
            let mut damaged = bytes.clone();
            damaged[ix] ^= 0x04;
            fs::write(path, &damaged).unwrap();
            let abs_ok = load_abs_cache(&abs_path);
            let solver_ok = load_solver_cache(&solver_path);
            assert!(
                abs_ok.is_err() || solver_ok.is_err(),
                "flip at byte {ix} of {} went undetected",
                path.display()
            );
        }
        fs::write(path, bytes).unwrap(); // restore for the other loop
    }
}

#[test]
fn truncation_and_version_bumps_degrade_to_cold_start() {
    let dir = tmp("truncate");
    let abs_path = dir.join("abs.cache");
    let (_, cache, _) = run(&circ_core::AbsSeed::empty(), Vec::new());
    save_abs_cache(&abs_path, &cache.snapshot()).unwrap();
    let text = fs::read_to_string(&abs_path).unwrap();

    for cut in [0, 1, text.len() / 2, text.len() - 1] {
        fs::write(&abs_path, &text[..cut]).unwrap();
        assert!(load_abs_cache(&abs_path).is_err(), "truncation at {cut} accepted");
    }
    fs::write(&abs_path, text.replace("format=1", "format=2")).unwrap();
    assert!(load_abs_cache(&abs_path).is_err(), "future format version accepted");
    fs::write(&abs_path, text.replace("atoms=1", "atoms=9")).unwrap();
    assert!(load_abs_cache(&abs_path).is_err(), "future atom encoding accepted");

    // The batch/CLI policy on any of those errors is an empty seed —
    // and an empty seed provably cannot change the verdict.
    let (after, _, _) = run(&circ_core::AbsSeed::empty(), Vec::new());
    assert!(after.is_safe());
}
