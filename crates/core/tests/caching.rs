//! Integration tests for the shared entailment cache: hit counts grow
//! when a cache is reused across runs, and caching never changes a
//! verdict — for every program exercised by the end-to-end driver
//! tests, under both plain CIRC and ω-CIRC.

use circ_core::{circ, circ_with_cache, AbsCache, CircConfig, CircOutcome};
use circ_ir::{figure1_cfa, BoolExpr, CfaBuilder, Expr, MtProgram, Op};

fn fig1_program() -> MtProgram {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Figure 1 with the atomic marks removed: the test-and-set is racy.
fn broken_fig1() -> MtProgram {
    let mut b = CfaBuilder::new("broken");
    let x = b.global("x");
    let state = b.global("state");
    let old = b.local("old");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    let l5 = b.fresh_loc();
    let l6 = b.fresh_loc();
    let l7 = b.fresh_loc();
    b.edge(l1, Op::assign(old, Expr::var(state)), l2);
    b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
    b.edge(l3, Op::assign(state, Expr::int(1)), l5);
    b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
    b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
    b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
    b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
    b.edge(l7, Op::assign(state, Expr::int(0)), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// x only ever written inside atomic blocks: safe with zero predicates.
fn atomic_only() -> MtProgram {
    let mut b = CfaBuilder::new("atomic_only");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    b.edge(l1, Op::skip(), l2);
    b.mark_atomic(l2);
    b.edge(l2, Op::assign(x, Expr::var(x) + Expr::int(1)), l3);
    b.edge(l3, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Unprotected concurrent increments: racy.
fn unprotected_counter() -> MtProgram {
    let mut b = CfaBuilder::new("counter");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    b.edge(l1, Op::assign(x, Expr::var(x) + Expr::int(1)), l2);
    b.edge(l2, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

fn programs() -> Vec<(&'static str, MtProgram)> {
    vec![
        ("figure1", fig1_program()),
        ("broken_fig1", broken_fig1()),
        ("atomic_only", atomic_only()),
        ("unprotected_counter", unprotected_counter()),
    ]
}

/// Everything verdict-relevant in an outcome; deliberately excludes
/// statistics and timings, which differ between cached and uncached
/// runs by design.
fn essence(outcome: &CircOutcome) -> String {
    match outcome {
        CircOutcome::Safe(r) => {
            format!("Safe preds={:?} k={} acfa={:?}", r.preds, r.k, r.acfa)
        }
        CircOutcome::Unsafe(r) => format!("Unsafe cex={:?} k={}", r.cex, r.k),
        CircOutcome::Unknown(r) => format!("Unknown reason={:?}", r.reason),
    }
}

#[test]
fn cache_hits_strictly_increase_across_identical_runs() {
    let cache = AbsCache::new();
    let program = fig1_program();
    let cfg = CircConfig::omega();

    let first = circ_with_cache(&program, &cfg, &cache);
    let after_first = cache.counters();
    assert!(after_first.cache_misses > 0, "first run must populate the cache");

    let second = circ_with_cache(&program, &cfg, &cache);
    let after_second = cache.counters();

    // The second run re-asks questions the first already answered, so
    // hits strictly increase while no (or almost no) new entries are
    // needed — here: exactly none, since the run is identical.
    assert!(
        after_second.cache_hits > after_first.cache_hits,
        "second run must hit the shared cache: {after_first:?} -> {after_second:?}"
    );
    assert_eq!(
        after_second.cache_misses, after_first.cache_misses,
        "an identical run should add no new cache entries"
    );
    assert_eq!(essence(&first), essence(&second), "shared cache must not change the verdict");
}

#[test]
fn cached_and_uncached_outcomes_are_identical() {
    for omega in [false, true] {
        for (name, program) in programs() {
            let base = if omega { CircConfig::omega() } else { CircConfig::default() };
            let cached = circ(&program, &CircConfig { use_cache: true, ..base.clone() });
            let uncached = circ(&program, &CircConfig { use_cache: false, ..base });
            assert_eq!(
                essence(&cached),
                essence(&uncached),
                "caching changed the outcome for {name} (omega={omega})"
            );
        }
    }
}

#[test]
fn uncached_config_reports_no_cache_traffic() {
    let outcome = circ(&fig1_program(), &CircConfig { use_cache: false, ..CircConfig::default() });
    let abs = &outcome.stats().pipeline.abs;
    assert!(abs.queries > 0, "entailment questions are still asked");
    assert_eq!(abs.cache_hits, 0, "a disabled cache never hits");
    let solver = &outcome.stats().pipeline.solver;
    assert_eq!(solver.cache_hits, 0, "the solver cache is disabled too");
}

#[test]
fn cached_run_reports_nonzero_hit_rate() {
    let outcome = circ(&fig1_program(), &CircConfig::default());
    let abs = &outcome.stats().pipeline.abs;
    assert!(
        abs.cache_hits > 0,
        "figure 1 re-asks entailments across rounds; expected hits, got {abs:?}"
    );
}
