//! End-to-end tests of the CIRC driver on the paper's running example
//! and on buggy variants — the assume/guarantee loop, refinement, and
//! the ω-CIRC optimization all exercised through the public API.

use circ_core::{circ, CircConfig, CircEvent, CircOutcome};
use circ_ir::{figure1_cfa, BoolExpr, CfaBuilder, Expr, Interp, MtProgram, Op};

fn fig1_program() -> MtProgram {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Figure 1 with the atomic marks removed: the test-and-set is racy.
fn broken_fig1() -> MtProgram {
    let mut b = CfaBuilder::new("broken");
    let x = b.global("x");
    let state = b.global("state");
    let old = b.local("old");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    let l5 = b.fresh_loc();
    let l6 = b.fresh_loc();
    let l7 = b.fresh_loc();
    b.edge(l1, Op::assign(old, Expr::var(state)), l2);
    b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
    b.edge(l3, Op::assign(state, Expr::int(1)), l5);
    b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
    b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
    b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
    b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
    b.edge(l7, Op::assign(state, Expr::int(0)), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

#[test]
fn circ_proves_figure1_safe() {
    let outcome = circ(&fig1_program(), &CircConfig::default());
    let CircOutcome::Safe(report) = outcome else {
        panic!("expected Safe, got {outcome:?}");
    };
    // The paper's run discovers old=state, old=0, state=0, state=1.
    assert!(report.preds.len() >= 2, "needs discovered predicates: {:?}", report.preds);
    assert!(report.preds.len() <= 10, "predicate count stays small");
    assert_eq!(report.k, 1, "counter parameter 1 suffices (Table 1)");
    // the final context model is small
    assert!(report.acfa.num_locs() <= 16);
}

#[test]
fn omega_circ_proves_figure1_safe() {
    let outcome = circ(&fig1_program(), &CircConfig::omega());
    let CircOutcome::Safe(report) = outcome else {
        panic!("expected Safe, got {outcome:?}");
    };
    assert!(report.log.events.iter().any(|e| matches!(e, CircEvent::OmegaCheck { good: true })));
}

#[test]
fn circ_finds_race_in_broken_variant() {
    let outcome = circ(&broken_fig1(), &CircConfig::default());
    let CircOutcome::Unsafe(report) = outcome else {
        panic!("expected Unsafe, got {outcome:?}");
    };
    assert!(report.cex.replay_ok, "counterexample must replay concretely");
    assert!(report.cex.n_threads >= 2);
    // replay it here too, independently
    let program = broken_fig1();
    let interp = Interp::new(program, report.cex.n_threads);
    let mut s = interp.initial();
    for &(tag, eid, nd) in &report.cex.steps {
        s = interp.step(
            &s,
            circ_ir::SchedChoice { thread: circ_ir::ThreadId(tag as u32), edge: eid, nondet: nd },
        );
    }
    assert!(interp.race(&s).is_some(), "schedule must end in a race state");
}

#[test]
fn omega_circ_finds_race_in_broken_variant() {
    let outcome = circ(&broken_fig1(), &CircConfig::omega());
    assert!(outcome.is_unsafe(), "ω-CIRC must also find the race: {outcome:?}");
}

/// A trivially safe program: x only ever written inside atomic blocks.
#[test]
fn atomic_protected_variable_is_safe_without_predicates() {
    let mut b = CfaBuilder::new("atomic_only");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    b.edge(l1, Op::skip(), l2);
    b.mark_atomic(l2);
    b.edge(l2, Op::assign(x, Expr::var(x) + Expr::int(1)), l3);
    b.edge(l3, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::default());
    let CircOutcome::Safe(report) = outcome else {
        panic!("expected Safe, got {outcome:?}");
    };
    assert!(report.preds.is_empty(), "no predicates needed: {:?}", report.preds);
}

/// Unprotected concurrent increments: racy, found quickly.
#[test]
fn unprotected_counter_is_unsafe() {
    let mut b = CfaBuilder::new("counter");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    b.edge(l1, Op::assign(x, Expr::var(x) + Expr::int(1)), l2);
    b.edge(l2, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::default());
    let CircOutcome::Unsafe(report) = outcome else {
        panic!("expected Unsafe, got {outcome:?}");
    };
    assert!(report.cex.replay_ok);
}

#[test]
fn log_records_iterations() {
    let outcome = circ(&fig1_program(), &CircConfig::default());
    let log = outcome.log();
    let outer_starts =
        log.events.iter().filter(|e| matches!(e, CircEvent::OuterStart { .. })).count();
    assert!(outer_starts >= 2, "figure 1 needs refinement rounds");
    assert!(log.events.iter().any(|e| matches!(e, CircEvent::Refined { .. })));
    assert!(log.events.iter().any(|e| matches!(e, CircEvent::SimChecked { holds: true })));
}

#[test]
fn no_minimize_ablation_still_verifies() {
    // Disabling Collapse keeps the checker sound (the raw ARG is used
    // as the context); contexts are larger but figure 1 still proves.
    let cfg = CircConfig { minimize: false, ..CircConfig::default() };
    let outcome = circ(&fig1_program(), &cfg);
    let CircOutcome::Safe(report) = outcome else {
        panic!("expected Safe without minimization, got {outcome:?}");
    };
    // and the context is larger than the minimized one
    let minimized = match circ(&fig1_program(), &CircConfig::default()) {
        CircOutcome::Safe(r) => r.acfa.num_locs(),
        other => panic!("{other:?}"),
    };
    assert!(
        report.acfa.num_locs() >= minimized,
        "raw ARG context ({}) should not be smaller than the quotient ({minimized})",
        report.acfa.num_locs()
    );

    // the racy variant is still caught
    let outcome = circ(&broken_fig1(), &cfg);
    assert!(outcome.is_unsafe(), "{outcome:?}");
}
