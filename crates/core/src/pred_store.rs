//! The persistent predicate store behind incremental re-checking.
//!
//! CIRC's dominant cost on fresh input is CEGAR warm-up: the refine
//! loop re-discovers the same predicate set run after run. Following
//! the "abstractions from proofs" observation, the discovered set *is*
//! the reusable artifact — so this module persists, per check, the
//! final predicate set and counter parameter `k` into a versioned,
//! checksummed file under the cache directory, and seeds
//! [`CircConfig::initial_preds`]/[`CircConfig::initial_k`] from it on
//! re-check. Verdicts are never stored and never replayed: a seeded
//! run executes the full algorithm and falls back to ordinary
//! refinement whenever the seeds no longer suffice, so staleness costs
//! time, never soundness.
//!
//! # Keying
//!
//! Entries are keyed by the pair
//!
//! * **structural digest** of the lowered CFA
//!   ([`circ_ir::structural_digest`]): alpha-renamed (variables enter
//!   as table indices plus global/local kind, never as names) and
//!   location-order-canonical — *not* a hash of the input bytes, so a
//!   re-saved or reformatted file that lowers to the same automaton
//!   still hits; and
//! * **config fingerprint** ([`config_fingerprint`]): `initial_k`,
//!   `omega_mode`, `minimize`, any externally supplied seed
//!   predicates, and the checked property — everything that steers
//!   which predicates a run would discover.
//!
//! # Wire format
//!
//! The file reuses the checksummed envelope of [`circ_smt::persist`]
//! (kind `circ-pred-store`, `format=1`; any incompatible change bumps
//! the kind's format and old files degrade to a logged cold start).
//! One line per entry:
//!
//! ```text
//! P <cfa-digest> <config-fp> <k> <rounds> <n> <pred>*n
//! ```
//!
//! with predicates in a prefix token encoding over variable indices
//! (`I n` literal, `V i` variable, `N` nondet, `+ - *` binary nodes;
//! a predicate is `<cmp> <lhs> <rhs>`).

use crate::circ::{CircConfig, CircOutcome};
use circ_ir::{BinOp, CmpOp, Expr, Pred, Var};
use circ_smt::persist::{fnv1a64, parse_cache_file, render_cache_file, Tokens};
use circ_smt::PersistError;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const STORE_KIND: &str = "circ-pred-store";

/// Hostile-input guards: real entries are tiny.
const MAX_PREDS: usize = 100_000;
const MAX_EXPR_DEPTH: u32 = 64;

/// One stored check result: the discovered predicate set, the final
/// counter parameter, and the refinement rounds it cost to discover
/// from a cold start (the baseline for `refine_rounds_saved`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredPreds {
    /// The discovered predicates, in discovery order.
    pub preds: Vec<Pred>,
    /// The final counter parameter `k`.
    pub k: u32,
    /// Cumulative cold-start discovery cost in refinement rounds.
    pub rounds: u64,
}

/// The in-memory predicate store: `(cfa digest, config fingerprint)`
/// → stored entry. Deterministically ordered, so its rendering is
/// byte-stable.
#[derive(Debug, Clone, Default)]
pub struct PredStore {
    entries: BTreeMap<(u64, u64), StoredPreds>,
}

impl PredStore {
    /// An empty store.
    pub fn new() -> PredStore {
        PredStore::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a `(cfa digest, config fingerprint)` key, if any.
    pub fn lookup(&self, cfa_digest: u64, config_fp: u64) -> Option<&StoredPreds> {
        self.entries.get(&(cfa_digest, config_fp))
    }

    /// Inserts or replaces the entry for a key.
    pub fn record(&mut self, cfa_digest: u64, config_fp: u64, entry: StoredPreds) {
        self.entries.insert((cfa_digest, config_fp), entry);
    }

    /// Merges another store into this one (later wins), used by the
    /// batch supervisor's deterministic input-order merge.
    pub fn absorb(&mut self, other: PredStore) {
        self.entries.extend(other.entries);
    }
}

/// Fingerprint of everything besides the program that steers predicate
/// discovery: the base `initial_k`, the ω mode, minimization, any
/// externally supplied seed predicates, and a tag naming the checked
/// property (e.g. `race v0`). Compute it from the configuration
/// *before* store seeding is applied, so warm runs rebuild the same
/// key they were recorded under.
pub fn config_fingerprint(
    initial_k: u32,
    omega_mode: bool,
    minimize: bool,
    seed_preds: &[Pred],
    property: &str,
) -> u64 {
    let mut s = format!(
        "k={initial_k} omega={} minimize={} property={property} seeds={}",
        omega_mode as u8,
        minimize as u8,
        seed_preds.len()
    );
    for p in seed_preds {
        s.push(' ');
        push_pred(&mut s, p);
    }
    fnv1a64(s.as_bytes())
}

/// Applies the store entry for `key` (if any) to `config`, seeding
/// `initial_preds` and `initial_k`. Returns the entry's recorded
/// discovery cost when seeded; `None` on a store miss. Seeds are
/// *appended* to any preds the config already carries (the fingerprint
/// covered those, so the key still matches).
pub fn seed_config(
    store: &PredStore,
    cfa_digest: u64,
    config_fp: u64,
    config: &mut CircConfig,
) -> Option<u64> {
    let entry = store.lookup(cfa_digest, config_fp)?;
    config.initial_preds.extend(entry.preds.iter().cloned());
    config.initial_k = config.initial_k.max(entry.k);
    Some(entry.rounds)
}

/// Records a completed check into the store. Safe and unsafe outcomes
/// both carry their discovered predicate set and final `k`; unknown
/// outcomes record nothing (there is no converged set to reuse).
/// `prior_rounds` is the seeded entry's recorded cost (0 on a cold
/// run), so the stored cost stays the cumulative cold-start cost.
pub fn record_outcome(
    store: &mut PredStore,
    cfa_digest: u64,
    config_fp: u64,
    outcome: &CircOutcome,
    prior_rounds: u64,
) {
    let (preds, k, run_rounds) = match outcome {
        CircOutcome::Safe(r) => (&r.preds, r.k, r.stats.pipeline.refine_rounds),
        CircOutcome::Unsafe(r) => (&r.preds, r.k, r.stats.pipeline.refine_rounds),
        CircOutcome::Unknown(_) => return,
    };
    store.record(
        cfa_digest,
        config_fp,
        StoredPreds { preds: preds.clone(), k, rounds: prior_rounds + run_rounds },
    );
}

fn push_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Int(n) => {
            out.push_str("I ");
            out.push_str(&n.to_string());
        }
        Expr::Var(v) => {
            out.push_str("V ");
            out.push_str(&v.index().to_string());
        }
        Expr::Nondet => out.push('N'),
        Expr::Bin(op, a, b) => {
            out.push(match op {
                BinOp::Add => '+',
                BinOp::Sub => '-',
                BinOp::Mul => '*',
            });
            out.push(' ');
            push_expr(out, a);
            out.push(' ');
            push_expr(out, b);
        }
    }
}

fn parse_expr(toks: &mut Tokens<'_>, depth: u32) -> Result<Expr, PersistError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(PersistError::Format("expression nesting too deep".into()));
    }
    match toks.next()? {
        "I" => Ok(Expr::Int(toks.next_int()?)),
        "V" => Ok(Expr::Var(Var::from_raw(toks.next_int()?))),
        "N" => Ok(Expr::Nondet),
        tag @ ("+" | "-" | "*") => {
            let op = match tag {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                _ => BinOp::Mul,
            };
            let a = parse_expr(toks, depth + 1)?;
            let b = parse_expr(toks, depth + 1)?;
            Ok(Expr::Bin(op, Box::new(a), Box::new(b)))
        }
        other => Err(PersistError::Format(format!("bad expression tag {other:?}"))),
    }
}

fn push_pred(out: &mut String, p: &Pred) {
    out.push_str(match p.op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    });
    out.push(' ');
    push_expr(out, &p.lhs);
    out.push(' ');
    push_expr(out, &p.rhs);
}

fn parse_pred(toks: &mut Tokens<'_>) -> Result<Pred, PersistError> {
    let op = match toks.next()? {
        "=" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(PersistError::Format(format!("bad comparison tag {other:?}"))),
    };
    let lhs = parse_expr(toks, 0)?;
    let rhs = parse_expr(toks, 0)?;
    Ok(Pred::new(lhs, op, rhs))
}

/// Serializes a store to the versioned wire format.
pub fn render_pred_store(store: &PredStore) -> String {
    let mut lines = Vec::with_capacity(store.entries.len());
    for ((digest, config_fp), entry) in &store.entries {
        let mut line = format!(
            "P {digest:016x} {config_fp:016x} {} {} {}",
            entry.k,
            entry.rounds,
            entry.preds.len()
        );
        for p in &entry.preds {
            line.push(' ');
            push_pred(&mut line, p);
        }
        lines.push(line);
    }
    render_cache_file(STORE_KIND, lines)
}

/// Parses a store file rendered by [`render_pred_store`].
pub fn parse_pred_store(text: &str) -> Result<PredStore, PersistError> {
    let lines = parse_cache_file(STORE_KIND, text)?;
    let mut store = PredStore::new();
    for line in lines {
        let mut toks = Tokens::new(line);
        match toks.next()? {
            "P" => {
                let digest = u64::from_str_radix(toks.next()?, 16)
                    .map_err(|_| PersistError::Format("bad digest field".into()))?;
                let config_fp = u64::from_str_radix(toks.next()?, 16)
                    .map_err(|_| PersistError::Format("bad fingerprint field".into()))?;
                let k: u32 = toks.next_int()?;
                let rounds: u64 = toks.next_int()?;
                let n: usize = toks.next_int()?;
                if n > MAX_PREDS {
                    return Err(PersistError::Format("predicate count out of range".into()));
                }
                let mut preds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    preds.push(parse_pred(&mut toks)?);
                }
                store.record(digest, config_fp, StoredPreds { preds, k, rounds });
            }
            other => return Err(PersistError::Format(format!("bad entry tag {other:?}"))),
        }
        toks.finish()?;
    }
    Ok(store)
}

/// Loads a predicate-store file. A missing file is `Ok(None)` (a fresh
/// cache dir is not an anomaly); anything else unreadable or invalid
/// is an error for the caller to log before cold-starting.
pub fn load_pred_store(path: &Path) -> Result<Option<PredStore>, PersistError> {
    load_pred_store_in(&circ_store::Store::real(), path)
}

/// [`load_pred_store`] through an explicit storage handle, so torture
/// runs can fail or truncate the read deterministically.
pub fn load_pred_store_in(
    io: &circ_store::Store,
    path: &Path,
) -> Result<Option<PredStore>, PersistError> {
    let text = match io.read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(e)),
    };
    parse_pred_store(&text).map(Some)
}

/// Saves a store to `path` (durable atomic write, the same crash
/// discipline as the cache snapshots).
pub fn save_pred_store(path: &Path, store: &PredStore) -> io::Result<()> {
    save_pred_store_in(&circ_store::Store::real(), path, store)
}

/// [`save_pred_store`] through an explicit storage handle.
pub fn save_pred_store_in(
    io: &circ_store::Store,
    path: &Path,
    store: &PredStore,
) -> io::Result<()> {
    io.write_atomic(path, &render_pred_store(store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, structural_digest};
    use std::fs;

    fn v(i: u32) -> Expr {
        Expr::var(Var::from_raw(i))
    }

    fn populated_store() -> PredStore {
        let mut store = PredStore::new();
        store.record(
            0xdead_beef_0000_0001,
            0x0123_4567_89ab_cdef,
            StoredPreds {
                preds: vec![
                    Pred::eq(v(0), Expr::int(0)),
                    Pred::new(v(1) + Expr::int(3) * v(2), CmpOp::Le, Expr::int(-7)),
                    Pred::new(v(0) - v(1), CmpOp::Ne, Expr::Nondet),
                ],
                k: 3,
                rounds: 31,
            },
        );
        store.record(
            0xdead_beef_0000_0002,
            0xffff_0000_ffff_0000,
            StoredPreds { preds: Vec::new(), k: 1, rounds: 0 },
        );
        store
    }

    #[test]
    fn wire_round_trip_preserves_every_entry() {
        let store = populated_store();
        let text = render_pred_store(&store);
        let back = parse_pred_store(&text).unwrap();
        assert_eq!(store.entries, back.entries);
        // Canonical rendering: save(load(save(x))) == save(x).
        assert_eq!(render_pred_store(&back), text);
    }

    #[test]
    fn every_bit_flip_and_truncation_is_rejected() {
        let text = render_pred_store(&populated_store());
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            let Ok(s) = String::from_utf8(mutated) else { continue };
            assert!(parse_pred_store(&s).is_err(), "flip at byte {i} accepted");
        }
        for i in 0..text.len() {
            if !text.is_char_boundary(i) {
                continue;
            }
            assert!(parse_pred_store(&text[..i]).is_err(), "prefix of {i} bytes accepted");
        }
        assert!(parse_pred_store(&text.replace("format=1", "format=2")).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let path = std::env::temp_dir().join("circ_pred_store_does_not_exist.store");
        let _ = fs::remove_file(&path);
        assert!(load_pred_store(&path).unwrap().is_none());
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let path = std::env::temp_dir().join("circ_pred_store_unit.store");
        let _ = fs::remove_file(&path);
        let store = populated_store();
        save_pred_store(&path, &store).unwrap();
        let loaded = load_pred_store(&path).unwrap().unwrap();
        assert_eq!(store.entries, loaded.entries);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = config_fingerprint(1, true, true, &[], "race v0");
        assert_ne!(base, config_fingerprint(2, true, true, &[], "race v0"), "k matters");
        assert_ne!(base, config_fingerprint(1, false, true, &[], "race v0"), "omega matters");
        assert_ne!(base, config_fingerprint(1, true, false, &[], "race v0"), "minimize matters");
        assert_ne!(base, config_fingerprint(1, true, true, &[], "race v1"), "property matters");
        let seeded = config_fingerprint(1, true, true, &[Pred::eq(v(0), Expr::int(0))], "race v0");
        assert_ne!(base, seeded, "seed preds matter");
        assert_eq!(base, config_fingerprint(1, true, true, &[], "race v0"), "stable");
    }

    #[test]
    fn seed_config_applies_entry_and_misses_cleanly() {
        let cfa = figure1_cfa();
        let digest = structural_digest(&cfa);
        let mut store = PredStore::new();
        let entry = StoredPreds {
            preds: vec![Pred::eq(v(1), Expr::int(0)), Pred::eq(v(2), Expr::int(0))],
            k: 2,
            rounds: 9,
        };
        store.record(digest, 42, entry.clone());

        let mut config = CircConfig::omega();
        assert_eq!(seed_config(&store, digest, 7, &mut config), None, "wrong fp is a miss");
        assert!(config.initial_preds.is_empty());

        let rounds = seed_config(&store, digest, 42, &mut config);
        assert_eq!(rounds, Some(9));
        assert_eq!(config.initial_preds, entry.preds);
        assert_eq!(config.initial_k, 2);
    }

    #[test]
    fn record_outcome_skips_unknown_and_accumulates_rounds() {
        use crate::circ::{circ, CircConfig, CircOutcome};
        use circ_ir::MtProgram;
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let digest = structural_digest(&cfa);
        let program = MtProgram::new(cfa, x);
        let outcome = circ(&program, &CircConfig::omega());
        assert!(matches!(outcome, CircOutcome::Safe(_)));
        let run_rounds = outcome.stats().pipeline.refine_rounds;
        assert!(run_rounds > 0, "figure 1 needs refinement from cold");

        let mut store = PredStore::new();
        record_outcome(&mut store, digest, 42, &outcome, 0);
        let entry = store.lookup(digest, 42).expect("safe outcome must be recorded").clone();
        assert_eq!(entry.rounds, run_rounds);
        assert!(!entry.preds.is_empty());

        // A warm re-record accumulates on top of the prior cost.
        record_outcome(&mut store, digest, 42, &outcome, entry.rounds);
        assert_eq!(store.lookup(digest, 42).unwrap().rounds, run_rounds * 2);
    }

    #[test]
    fn seeded_rerun_skips_refinement_with_same_essence() {
        use crate::circ::{circ, CircConfig, CircOutcome};
        use circ_ir::MtProgram;
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let digest = structural_digest(&cfa);
        let program = MtProgram::new(cfa, x);

        let cold = circ(&program, &CircConfig::omega());
        let CircOutcome::Safe(cold_report) = &cold else { panic!("figure 1 is safe") };
        let mut store = PredStore::new();
        record_outcome(&mut store, digest, 42, &cold, 0);

        let mut warm_config = CircConfig::omega();
        let prior = seed_config(&store, digest, 42, &mut warm_config).unwrap();
        let warm = circ(&program, &warm_config);
        let CircOutcome::Safe(warm_report) = &warm else { panic!("seeded run stays safe") };
        assert!(
            warm.stats().pipeline.refine_rounds < cold.stats().pipeline.refine_rounds,
            "warm run must refine strictly less (warm {} vs cold {})",
            warm.stats().pipeline.refine_rounds,
            cold.stats().pipeline.refine_rounds,
        );
        assert!(prior >= warm.stats().pipeline.refine_rounds);
        assert_eq!(warm_report.preds, cold_report.preds, "same final predicate set");
        assert_eq!(warm_report.k, cold_report.k, "same final k");
    }

    #[test]
    fn stale_seeds_fall_back_to_refinement() {
        use crate::circ::{circ, CircConfig, CircOutcome};
        use circ_ir::MtProgram;
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let program = MtProgram::new(cfa, x);

        // Useless seeds for this program: refinement must still
        // converge to the same verdict as a cold run.
        let mut config = CircConfig::omega();
        config.initial_preds =
            vec![Pred::eq(v(0), Expr::int(99)), Pred::new(v(1), CmpOp::Ge, Expr::int(5))];
        let seeded = circ(&program, &config);
        let cold = circ(&program, &CircConfig::omega());
        match (&seeded, &cold) {
            (CircOutcome::Safe(_), CircOutcome::Safe(_)) => {}
            other => panic!("verdict must survive stale seeds: {other:?}"),
        }
    }
}
