//! The refinable predicate set `P` of the abstraction.

use circ_acfa::PredIx;
use circ_ir::{Cfa, Pred, Var};
use std::collections::BTreeSet;
use std::fmt;

/// An indexed, duplicate-free set of abstraction predicates over the
/// program variables. Grows monotonically during refinement; indices
/// are stable, so cubes widen rather than re-index.
#[derive(Debug, Clone, Default)]
pub struct PredSet {
    preds: Vec<Pred>,
    vars: Vec<BTreeSet<Var>>,
    global_only: Vec<bool>,
}

impl PredSet {
    /// An empty predicate set.
    pub fn new() -> PredSet {
        PredSet::default()
    }

    /// Builds a set from initial predicates (deduplicated modulo
    /// mirroring).
    pub fn from_preds(cfa: &Cfa, preds: impl IntoIterator<Item = Pred>) -> PredSet {
        let mut s = PredSet::new();
        for p in preds {
            s.insert(cfa, p);
        }
        s
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The predicate at index `i`.
    pub fn pred(&self, i: PredIx) -> &Pred {
        &self.preds[i.index()]
    }

    /// All predicates in index order.
    pub fn preds(&self) -> &[Pred] {
        &self.preds
    }

    /// Iterator over indices.
    pub fn indices(&self) -> impl Iterator<Item = PredIx> {
        (0..self.preds.len() as u32).map(PredIx)
    }

    /// The variables of predicate `i`.
    pub fn pred_vars(&self, i: PredIx) -> &BTreeSet<Var> {
        &self.vars[i.index()]
    }

    /// Whether predicate `i` mentions only global variables (such
    /// predicates survive the projection onto ACFA labels).
    pub fn is_global_only(&self, i: PredIx) -> bool {
        self.global_only[i.index()]
    }

    /// Whether predicate `i` mentions variable `v`.
    pub fn mentions(&self, i: PredIx, v: Var) -> bool {
        self.vars[i.index()].contains(&v)
    }

    /// Inserts a predicate (canonicalized); returns its index and
    /// whether it was new.
    pub fn insert(&mut self, cfa: &Cfa, p: Pred) -> (PredIx, bool) {
        let canon = p.canonical();
        if let Some(pos) = self.preds.iter().position(|q| *q == canon) {
            return (PredIx(pos as u32), false);
        }
        let ix = PredIx(self.preds.len() as u32);
        let vars = canon.vars();
        let global_only = vars.iter().all(|v| cfa.is_global(*v));
        self.preds.push(canon);
        self.vars.push(vars);
        self.global_only.push(global_only);
        (ix, true)
    }

    /// Renders predicate `i` with the CFA's variable names.
    pub fn display_pred(&self, cfa: &Cfa, i: PredIx) -> String {
        let mut s = format!("{}", self.pred(i));
        // longest index first so `v10` is not mangled by `v1`
        for ix in (0..cfa.vars().len()).rev() {
            s = s.replace(&format!("v{ix}"), &cfa.vars()[ix].name);
        }
        s
    }
}

impl fmt::Display for PredSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{CfaBuilder, CmpOp, Expr, Op};

    fn test_cfa() -> Cfa {
        let mut b = CfaBuilder::new("t");
        let g = b.global("g");
        let l = b.local("l");
        let e = b.fresh_loc();
        b.edge(b.entry(), Op::assign(g, Expr::var(l)), e);
        b.build()
    }

    #[test]
    fn insert_dedups_mirrored() {
        let cfa = test_cfa();
        let g = cfa.var_by_name("g").unwrap();
        let l = cfa.var_by_name("l").unwrap();
        let mut s = PredSet::new();
        let (i1, new1) = s.insert(&cfa, Pred::eq(Expr::var(g), Expr::var(l)));
        let (i2, new2) = s.insert(&cfa, Pred::eq(Expr::var(l), Expr::var(g)));
        assert!(new1);
        assert!(!new2);
        assert_eq!(i1, i2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn global_only_classification() {
        let cfa = test_cfa();
        let g = cfa.var_by_name("g").unwrap();
        let l = cfa.var_by_name("l").unwrap();
        let mut s = PredSet::new();
        let (gi, _) = s.insert(&cfa, Pred::eq(Expr::var(g), Expr::int(0)));
        let (li, _) = s.insert(&cfa, Pred::eq(Expr::var(g), Expr::var(l)));
        assert!(s.is_global_only(gi));
        assert!(!s.is_global_only(li));
        assert!(s.mentions(li, l));
        assert!(!s.mentions(gi, l));
    }

    #[test]
    fn display_uses_names() {
        let cfa = test_cfa();
        let g = cfa.var_by_name("g").unwrap();
        let mut s = PredSet::new();
        let (i, _) = s.insert(&cfa, Pred::new(Expr::var(g), CmpOp::Ge, Expr::int(1)));
        // predicates are stored canonically; mirrored forms compare equal
        let shown = s.display_pred(&cfa, i);
        assert!(shown == "g >= 1" || shown == "1 <= g", "got {shown}");
    }
}
