//! The **CIRC** inference algorithm (Algorithm 5) and its **ω-CIRC**
//! optimization (§5).
//!
//! The outer loop owns the abstraction parameters `(P, k)`; the inner
//! loop alternates the circular assume–guarantee obligations:
//!
//! ```text
//! A := empty context
//! repeat
//!     G := ReachAndBuild((C, P), (A, k))      -- assume A, check races
//!     if G ⪯ A: return Safe                    -- guarantee holds
//!     (A, μ) := Collapse(G)                    -- weaken the context
//! until an abstract race is found
//! -- Refine: real race ⇒ Unsafe; spurious ⇒ grow P or k, restart
//! ```
//!
//! ω-CIRC runs reachability with *exactly* `k` context threads
//! (`G₀(q₀) = k` instead of ω) and, once the simulation check
//! succeeds, discharges the unbounded case with the per-transition
//! *goodness* check of §5: every environment transition enabled in
//! some reachable counter configuration must map each ARG region back
//! into itself. If goodness fails, `k` grows and the search restarts.

use crate::abs::AbsCtx;
use crate::cache::AbsCache;
use crate::preds::PredSet;
use crate::reach::{reach_and_build, Property, ReachError};
use crate::refine::{refine, ConcreteCex, Concretizer, RefineDetail, RefineError, RefineOutcome};
use circ_acfa::{
    check_sim_budgeted, collapse, context_reach_budgeted, Acfa, CVal, ContextState, Region,
};
use circ_governor::{panic_message, Budget, CancelToken, Exhausted, FaultPlan};
use circ_ir::{MtProgram, Pred};
use circ_par::Pool;
use circ_stats::{AbsCounters, PipelineStats};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Tuning knobs for [`circ`].
#[derive(Debug, Clone)]
pub struct CircConfig {
    /// Seed predicates (default none — CEGAR discovers the rest).
    pub initial_preds: Vec<Pred>,
    /// Initial counter parameter (the paper's experiments use 1).
    pub initial_k: u32,
    /// Run the ω-CIRC optimization (exactly-k reachability plus the
    /// goodness check) instead of plain CIRC (ω-initialized context).
    pub omega_mode: bool,
    /// Bound on outer (refinement) iterations.
    pub max_outer: usize,
    /// Bound on inner (assume–guarantee) iterations per outer round.
    pub max_inner: usize,
    /// Abstract-state budget per reachability run.
    pub max_states: usize,
    /// Minimize ARGs into weak-bisimilarity quotients before using
    /// them as contexts (`Collapse`). Disabling this uses the raw ARG
    /// as the context model — sound, but contexts stay large; exposed
    /// for the ablation bench.
    pub minimize: bool,
    /// Memoize entailment and solver queries (the atom-level
    /// [`AbsCache`] plus the solver's formula cache). Caching only
    /// replays deterministic answers, so disabling it changes timings
    /// and counters but never the [`CircOutcome`]; exposed for the
    /// cached-vs-uncached differential.
    pub use_cache: bool,
    /// The safety property to check (default: race freedom).
    pub property: Property,
    /// Worker threads for the parallel pipeline phases (frontier
    /// expansion in ReachAndBuild, obligation checking in CheckSim).
    /// `1` (the default) runs fully sequentially on the calling
    /// thread; `0` means one worker per available core. Any value
    /// produces bit-identical verdicts, ARGs, and statistics counters
    /// — see `DESIGN.md` on why.
    pub jobs: usize,
    /// Wall-clock budget for the whole run. `None` (the default)
    /// means unbounded; on expiry the run returns
    /// [`UnknownReason::Deadline`] with the stats gathered so far.
    pub timeout: Option<Duration>,
    /// Accounted-memory ceiling in bytes for the run's growing arenas
    /// (ARG states plus the solver formula cache). `None` means
    /// unbounded; on overdraft the run returns
    /// [`UnknownReason::MemoryLimit`]. Accounting is approximate — see
    /// `circ-governor`'s crate docs.
    pub mem_limit_bytes: Option<u64>,
    /// Cooperative cancellation: an embedder holding a clone of this
    /// token can abort the run from another thread; the run returns
    /// [`UnknownReason::Cancelled`] at its next budget poll.
    pub cancel: CancelToken,
    /// Deterministic fault-injection schedule (testing only). Inert
    /// by default, and every injection point compiles to constant
    /// `false` unless the `inject` cargo feature is enabled.
    pub faults: FaultPlan,
}

impl Default for CircConfig {
    fn default() -> CircConfig {
        CircConfig {
            initial_preds: Vec::new(),
            initial_k: 1,
            omega_mode: false,
            max_outer: 40,
            max_inner: 40,
            max_states: 500_000,
            minimize: true,
            use_cache: true,
            property: Property::Race,
            jobs: 1,
            timeout: None,
            mem_limit_bytes: None,
            cancel: CancelToken::new(),
            faults: FaultPlan::inert(),
        }
    }
}

impl CircConfig {
    /// The ω-CIRC configuration (the paper's faster variant).
    pub fn omega() -> CircConfig {
        CircConfig { omega_mode: true, ..CircConfig::default() }
    }
}

/// One logged event of a CIRC run (the raw material for regenerating
/// the paper's Figures 2–5).
#[derive(Debug, Clone)]
pub enum CircEvent {
    /// An outer round began with these parameters.
    OuterStart {
        /// Current predicates, rendered with variable names.
        preds: Vec<String>,
        /// Current counter parameter.
        k: u32,
    },
    /// A reachability run finished without finding a race.
    ReachDone {
        /// The ARG exported as an ACFA (rendered).
        arg: String,
        /// Number of ARG locations.
        arg_locs: usize,
    },
    /// The guarantee check was attempted.
    SimChecked {
        /// Whether `G ⪯ A` held.
        holds: bool,
    },
    /// The ARG was minimized into a new context ACFA.
    Collapsed {
        /// The quotient (rendered).
        acfa: String,
        /// Its size.
        size: usize,
    },
    /// An abstract race was found.
    AbstractRace {
        /// Length of the abstract trace.
        trace_len: usize,
    },
    /// Refinement analyzed the trace.
    Refined {
        /// What refinement decided, rendered.
        verdict: String,
        /// The concrete interleaving / trace formula / mined preds.
        detail: RefineDetail,
    },
    /// The ω-goodness check ran (ω-CIRC only).
    OmegaCheck {
        /// Whether every enabled environment transition was good.
        good: bool,
    },
}

/// The full log of a run.
#[derive(Debug, Clone, Default)]
pub struct CircLog {
    /// Events in order.
    pub events: Vec<CircEvent>,
}

/// Statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct CircStats {
    /// Outer (refinement) rounds executed.
    pub outer_iterations: usize,
    /// Total reachability runs.
    pub reach_runs: usize,
    /// Total SMT queries across the whole run: formula-level solver
    /// queries of every round plus atom-level entailment/sat queries.
    pub smt_queries: u64,
    /// Wall-clock of the whole run.
    pub elapsed: std::time::Duration,
    /// Per-phase counters, cache statistics, and wall-time spans.
    pub pipeline: PipelineStats,
}

/// A successful safety proof.
#[derive(Debug, Clone)]
pub struct SafeReport {
    /// The final context ACFA (the inferred context model).
    pub acfa: Acfa,
    /// The discovered predicates.
    pub preds: Vec<Pred>,
    /// The final counter parameter.
    pub k: u32,
    /// Run log.
    pub log: CircLog,
    /// Run statistics.
    pub stats: CircStats,
}

/// A genuine race.
#[derive(Debug, Clone)]
pub struct UnsafeReport {
    /// The concrete interleaved error trace.
    pub cex: ConcreteCex,
    /// Predicates discovered before the race was confirmed.
    pub preds: Vec<Pred>,
    /// The counter parameter at the time.
    pub k: u32,
    /// Run log.
    pub log: CircLog,
    /// Run statistics.
    pub stats: CircStats,
}

/// Why a run gave up.
#[derive(Debug, Clone)]
pub enum UnknownReason {
    /// The abstract state budget was exhausted.
    StateLimit(usize),
    /// The iteration bounds were exhausted.
    IterationLimit,
    /// Refinement could not make progress.
    Stuck(String),
    /// Refinement failed outright (e.g. an `assume` guard outside the
    /// encodable fragment) — see [`RefineError`].
    RefineFailed(RefineError),
    /// The wall-clock budget (`--timeout-secs`) expired. Carries the
    /// configured limit; the report's stats are the partial run.
    Deadline(Duration),
    /// The accounted-memory ceiling (`--mem-limit-mb`) was exceeded.
    MemoryLimit {
        /// The configured ceiling in bytes.
        limit_bytes: u64,
        /// Bytes charged when the ceiling tripped.
        charged_bytes: u64,
    },
    /// The embedder cancelled the run via [`CircConfig::cancel`].
    Cancelled,
    /// An internal bug (a panic) was contained at the `circ` boundary
    /// instead of unwinding into the caller. Carries the panic
    /// message. Soundness note: a contained panic yields `Unknown`,
    /// never a verdict, so containment cannot flip Safe/Unsafe.
    InternalError(String),
}

impl UnknownReason {
    /// True when the run gave up because a *resource budget* ran out
    /// (deadline, memory ceiling, or cancellation) — as opposed to the
    /// algorithm's own analysis limits. The CLI maps these to a
    /// distinct exit code.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(
            self,
            UnknownReason::Deadline(_)
                | UnknownReason::MemoryLimit { .. }
                | UnknownReason::Cancelled
        )
    }
}

impl From<Exhausted> for UnknownReason {
    fn from(e: Exhausted) -> UnknownReason {
        match e {
            Exhausted::Deadline { limit } => UnknownReason::Deadline(limit),
            Exhausted::MemoryLimit { limit_bytes, charged_bytes } => {
                UnknownReason::MemoryLimit { limit_bytes, charged_bytes }
            }
            Exhausted::Cancelled => UnknownReason::Cancelled,
        }
    }
}

/// An inconclusive run.
#[derive(Debug, Clone)]
pub struct UnknownReport {
    /// Why.
    pub reason: UnknownReason,
    /// Run log.
    pub log: CircLog,
    /// Run statistics.
    pub stats: CircStats,
}

/// The result of [`circ`].
#[derive(Debug, Clone)]
pub enum CircOutcome {
    /// The program is race-free on the checked variable (Theorem 1/2).
    Safe(SafeReport),
    /// A genuine race with a concrete schedule.
    Unsafe(UnsafeReport),
    /// Gave up within the configured bounds.
    Unknown(UnknownReport),
}

impl CircOutcome {
    /// True for [`CircOutcome::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, CircOutcome::Safe(_))
    }

    /// True for [`CircOutcome::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, CircOutcome::Unsafe(_))
    }

    /// The log of the run, whatever the verdict.
    pub fn log(&self) -> &CircLog {
        match self {
            CircOutcome::Safe(r) => &r.log,
            CircOutcome::Unsafe(r) => &r.log,
            CircOutcome::Unknown(r) => &r.log,
        }
    }

    /// The statistics of the run, whatever the verdict.
    pub fn stats(&self) -> &CircStats {
        match self {
            CircOutcome::Safe(r) => &r.stats,
            CircOutcome::Unsafe(r) => &r.stats,
            CircOutcome::Unknown(r) => &r.stats,
        }
    }
}

/// Checks the symmetric multithreaded program `program.cfa()^∞` for
/// races on `program.race_var()` by context inference.
pub fn circ(program: &MtProgram, config: &CircConfig) -> CircOutcome {
    let cache = if config.use_cache { AbsCache::new() } else { AbsCache::disabled() };
    circ_with_cache(program, config, &cache)
}

/// [`circ`] with a caller-supplied [`AbsCache`], so repeated runs (a
/// benchmark loop, a parameter sweep over the same model) share their
/// memoized entailment answers. The reported `stats.pipeline.abs`
/// counters are this run's delta, not the cache's lifetime totals.
pub fn circ_with_cache(program: &MtProgram, config: &CircConfig, cache: &AbsCache) -> CircOutcome {
    circ_with_caches(program, config, cache, &circ_smt::SolverPersist::inert())
}

/// [`circ_with_cache`] additionally wired to a solver persistence
/// store: every outer round's fresh solver warm-starts from the
/// store's frozen seed, and what each round learns is absorbed back
/// into the store's accumulator when its context retires — the disk
/// half lives in [`crate::persist`] and `circ-batch`. The inert store
/// makes this identical to [`circ_with_cache`].
pub fn circ_with_caches(
    program: &MtProgram,
    config: &CircConfig,
    cache: &AbsCache,
    solver_persist: &circ_smt::SolverPersist,
) -> CircOutcome {
    let start = Instant::now();
    let budget = Budget::new(
        config.timeout,
        config.mem_limit_bytes,
        config.cancel.clone(),
        config.faults.clone(),
    );
    // Contain internal bugs at the pipeline boundary: a panic anywhere
    // below — including one injected into a worker task and re-raised
    // by `Pool::map` — becomes an `Unknown(InternalError)` verdict
    // instead of unwinding into the embedder. The shared caches
    // recover from lock poisoning (see circ-par and circ-smt), so
    // sibling runs on the same `AbsCache` stay usable afterwards.
    match catch_unwind(AssertUnwindSafe(|| {
        circ_inner(program, config, cache, solver_persist, &budget, start)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let mut stats = CircStats::default();
            seal_governor(&mut stats, &budget);
            stats.elapsed = start.elapsed();
            CircOutcome::Unknown(UnknownReport {
                reason: UnknownReason::InternalError(panic_message(payload.as_ref())),
                log: CircLog::default(),
                stats,
            })
        }
    }
}

fn circ_inner(
    program: &MtProgram,
    config: &CircConfig,
    cache: &AbsCache,
    solver_persist: &circ_smt::SolverPersist,
    budget: &Budget,
    start: Instant,
) -> CircOutcome {
    let cfa = program.cfa_arc();
    let mut preds = PredSet::from_preds(&cfa, config.initial_preds.iter().cloned());
    let mut k = config.initial_k;
    let mut log = CircLog::default();
    let mut stats = CircStats::default();
    let pool = Pool::new(config.jobs).with_faults(budget.faults().clone());
    let abs_base = cache.counters();

    let pred_strings =
        |p: &PredSet| -> Vec<String> { p.indices().map(|i| p.display_pred(&cfa, i)).collect() };
    let acfa_render = |a: &Acfa, p: &PredSet| -> String {
        a.display_with(&|i| p.display_pred(&cfa, i), &|v| cfa.var_name(v).to_string())
    };

    for _outer in 0..config.max_outer {
        // One poll between outer rounds so even a model whose phases
        // all finish fast still observes cancellation and deadlines.
        if let Err(e) = budget.check() {
            seal_stats(&mut stats, None, cache, &abs_base, budget, start);
            return CircOutcome::Unknown(UnknownReport { reason: e.into(), log, stats });
        }
        stats.outer_iterations += 1;
        stats.pipeline.outer_rounds += 1;
        log.events.push(CircEvent::OuterStart { preds: pred_strings(&preds), k });
        let abs = AbsCtx::with_parts(
            cfa.clone(),
            preds.clone(),
            cache.clone(),
            budget.clone(),
            solver_persist,
        );
        let mut acfa = Acfa::empty(preds.len());
        let mut concretizer: Option<Concretizer> = None;

        // The inner assume–guarantee loop.
        let mut restart_outer = false;
        for _inner in 0..config.max_inner {
            stats.reach_runs += 1;
            stats.pipeline.reach_runs += 1;
            let init = if config.omega_mode { CVal::Fin(k) } else { CVal::Omega };
            let reach_t = Instant::now();
            let reach_result = reach_and_build(
                &abs,
                program,
                &acfa,
                k,
                init,
                config.max_states,
                config.property,
                &pool,
                budget,
            );
            stats.pipeline.phases.reach += reach_t.elapsed();
            match reach_result {
                Err(ReachError::StateLimit(n)) => {
                    stats.pipeline.arg_nodes += n as u64;
                    seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                    return CircOutcome::Unknown(UnknownReport {
                        reason: UnknownReason::StateLimit(n),
                        log,
                        stats,
                    });
                }
                Err(ReachError::Budget(e)) => {
                    seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                    return CircOutcome::Unknown(UnknownReport { reason: e.into(), log, stats });
                }
                Err(ReachError::Race(cex)) => {
                    stats.pipeline.arg_nodes += cex.steps.len() as u64 + 1;
                    log.events.push(CircEvent::AbstractRace { trace_len: cex.steps.len() });
                    let refine_t = Instant::now();
                    let (outcome, detail) = refine(
                        program,
                        &acfa,
                        &cex,
                        concretizer.as_ref(),
                        abs.preds(),
                        config.property,
                        budget,
                    );
                    stats.pipeline.phases.refine += refine_t.elapsed();
                    stats.pipeline.refine_rounds += 1;
                    let verdict = match &outcome {
                        RefineOutcome::Real(_) => "real race".to_string(),
                        RefineOutcome::NewPreds(ps) => format!("{} new predicate(s)", ps.len()),
                        RefineOutcome::IncrementK => format!("increment k to {}", k + 1),
                        RefineOutcome::Stuck(m) => format!("stuck: {m}"),
                        RefineOutcome::Error(e) => format!("refinement error: {e}"),
                        RefineOutcome::Exhausted(e) => format!("budget exhausted: {e}"),
                    };
                    log.events.push(CircEvent::Refined { verdict, detail });
                    match outcome {
                        RefineOutcome::Real(ccex) => {
                            seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                            return CircOutcome::Unsafe(UnsafeReport {
                                cex: ccex,
                                preds: preds.preds().to_vec(),
                                k,
                                log,
                                stats,
                            });
                        }
                        RefineOutcome::NewPreds(ps) => {
                            for p in ps {
                                preds.insert(&cfa, p);
                            }
                            restart_outer = true;
                            break;
                        }
                        RefineOutcome::IncrementK => {
                            k += 1;
                            stats.pipeline.k_increments += 1;
                            restart_outer = true;
                            break;
                        }
                        RefineOutcome::Stuck(msg) => {
                            seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                            return CircOutcome::Unknown(UnknownReport {
                                reason: UnknownReason::Stuck(msg),
                                log,
                                stats,
                            });
                        }
                        RefineOutcome::Error(e) => {
                            seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                            return CircOutcome::Unknown(UnknownReport {
                                reason: UnknownReason::RefineFailed(e),
                                log,
                                stats,
                            });
                        }
                        RefineOutcome::Exhausted(e) => {
                            seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                            return CircOutcome::Unknown(UnknownReport {
                                reason: e.into(),
                                log,
                                stats,
                            });
                        }
                    }
                }
                Ok(arg) => {
                    stats.pipeline.arg_nodes += arg.num_locs() as u64;
                    let exported = arg.export(&cfa, abs.preds());
                    log.events.push(CircEvent::ReachDone {
                        arg: acfa_render(&exported.acfa, &preds),
                        arg_locs: exported.acfa.num_locs(),
                    });
                    let sim_t = Instant::now();
                    let sim_result = check_sim_budgeted(
                        &exported.acfa,
                        &acfa,
                        &|x, y| abs.region_contained(x, y),
                        &pool,
                        budget,
                    );
                    let (holds, pairs) = match sim_result {
                        Ok(r) => r,
                        Err(e) => {
                            stats.pipeline.phases.sim += sim_t.elapsed();
                            seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                            return CircOutcome::Unknown(UnknownReport {
                                reason: e.into(),
                                log,
                                stats,
                            });
                        }
                    };
                    stats.pipeline.phases.sim += sim_t.elapsed();
                    stats.pipeline.sim_checks += 1;
                    stats.pipeline.sim_edge_pairs += pairs;
                    log.events.push(CircEvent::SimChecked { holds });
                    if holds {
                        // Guarantee discharged. In ω-mode, the
                        // unbounded case needs the goodness check.
                        let collapsed = timed_collapse(&exported.acfa, config.minimize, &mut stats);
                        if config.omega_mode {
                            let omega_t = Instant::now();
                            let good_result =
                                omega_good(&abs, &exported.acfa, &collapsed, k, budget);
                            stats.pipeline.phases.omega += omega_t.elapsed();
                            let good = match good_result {
                                Ok(g) => g,
                                Err(e) => {
                                    seal_stats(
                                        &mut stats,
                                        Some(&abs),
                                        cache,
                                        &abs_base,
                                        budget,
                                        start,
                                    );
                                    return CircOutcome::Unknown(UnknownReport {
                                        reason: e.into(),
                                        log,
                                        stats,
                                    });
                                }
                            };
                            log.events.push(CircEvent::OmegaCheck { good });
                            if !good {
                                k += 1;
                                stats.pipeline.k_increments += 1;
                                restart_outer = true;
                                break;
                            }
                        }
                        seal_stats(&mut stats, Some(&abs), cache, &abs_base, budget, start);
                        return CircOutcome::Safe(SafeReport {
                            acfa,
                            preds: preds.preds().to_vec(),
                            k,
                            log,
                            stats,
                        });
                    }
                    let collapsed = timed_collapse(&exported.acfa, config.minimize, &mut stats);
                    log.events.push(CircEvent::Collapsed {
                        acfa: acfa_render(&collapsed.acfa, &preds),
                        size: collapsed.acfa.num_locs(),
                    });
                    concretizer = Some(Concretizer::new(&arg, &exported, &collapsed));
                    acfa = collapsed.acfa.clone();
                }
            }
        }
        // This round's solver handle dies with its AbsCtx: bank its
        // counters before the next round overwrites `abs`.
        absorb_round(&mut stats, &abs);
        if !restart_outer {
            // Inner loop exhausted without converging.
            seal_stats(&mut stats, None, cache, &abs_base, budget, start);
            return CircOutcome::Unknown(UnknownReport {
                reason: UnknownReason::IterationLimit,
                log,
                stats,
            });
        }
    }
    seal_stats(&mut stats, None, cache, &abs_base, budget, start);
    CircOutcome::Unknown(UnknownReport { reason: UnknownReason::IterationLimit, log, stats })
}

/// Banks one outer round's solver counters into the running totals
/// (each round owns a fresh solver handle inside its [`AbsCtx`]).
fn absorb_round(stats: &mut CircStats, abs: &AbsCtx) {
    let sc = abs.solver_counters();
    stats.pipeline.solver.add(&sc);
    stats.smt_queries += sc.queries;
}

/// Finalizes the run's statistics: banks the live round's solver
/// counters (if any), takes the shared cache's per-run delta, records
/// the governor's accounting, and stamps the wall clock.
fn seal_stats(
    stats: &mut CircStats,
    live_round: Option<&AbsCtx>,
    cache: &AbsCache,
    abs_base: &AbsCounters,
    budget: &Budget,
    start: Instant,
) {
    if let Some(abs) = live_round {
        absorb_round(stats, abs);
    }
    let abs_delta = cache.counters().since(abs_base);
    stats.smt_queries += abs_delta.queries;
    stats.pipeline.abs = abs_delta;
    seal_governor(stats, budget);
    stats.elapsed = start.elapsed();
}

/// Copies the budget's accounting (bytes charged, polls, injected
/// faults) into the pipeline statistics. Split out of [`seal_stats`]
/// because the panic-containment path has no cache baseline to diff
/// but still wants the governor's view of the aborted run.
fn seal_governor(stats: &mut CircStats, budget: &Budget) {
    stats.pipeline.mem_charged_bytes = budget.charged_bytes();
    stats.pipeline.budget_polls = budget.polls();
    stats.pipeline.faults_injected = budget.faults().injected();
}

/// Runs [`maybe_collapse`] with phase timing and counter bookkeeping.
fn timed_collapse(acfa: &Acfa, minimize: bool, stats: &mut CircStats) -> circ_acfa::CollapseResult {
    let t = Instant::now();
    let collapsed = maybe_collapse(acfa, minimize);
    stats.pipeline.phases.collapse += t.elapsed();
    stats.pipeline.collapse_runs += 1;
    stats.pipeline.collapse_iterations += collapsed.iterations as u64;
    collapsed
}

/// Collapses the exported ARG into its weak-bisimilarity quotient, or
/// wraps it identically when minimization is disabled (ablation mode).
fn maybe_collapse(acfa: &Acfa, minimize: bool) -> circ_acfa::CollapseResult {
    if minimize {
        collapse(acfa)
    } else {
        circ_acfa::CollapseResult {
            acfa: acfa.clone(),
            map: (0..acfa.num_locs() as u32).map(circ_acfa::AcfaLocId).collect(),
            iterations: 0,
        }
    }
}

/// The ω-goodness check of §5: with `R` the counter configurations the
/// environment alone can reach, every `A`-transition `q′ -Y→ q″`
/// enabled at some ARG location's class must map that location's
/// region back into itself: `(∃Y. r(n)) ∧ r(q″) ⊆ r(n)`.
///
/// The budget is polled once per enumerated counter configuration
/// (the exponential part) and once per ARG location (each location
/// checks every context edge, with SMT queries behind the containment
/// test).
fn omega_good(
    abs: &AbsCtx,
    g: &Acfa,
    collapsed: &circ_acfa::CollapseResult,
    k: u32,
    budget: &Budget,
) -> Result<bool, Exhausted> {
    let a = &collapsed.acfa;
    // Environment reachability must respect label consistency (the
    // conjunction of the occupied locations' regions), otherwise the
    // enabledness test below over-approximates so coarsely that the
    // goodness check can never conclude (e.g. it would consider two
    // threads simultaneously inside the test-and-set critical region).
    let reach: BTreeSet<ContextState> = context_reach_budgeted(
        a,
        k,
        CVal::Omega,
        &mut |cfg| config_consistent(abs, a, cfg),
        budget,
    )?;
    for n in g.locs() {
        budget.check()?;
        let q = collapsed.map[n.index()];
        if a.is_atomic(q) {
            // The main-thread surrogate occupies an atomic location:
            // scheduling gives it exclusive control, so no environment
            // transition can interleave here.
            continue;
        }
        for e in a.edges() {
            // Enabledness per §5: some reachable configuration has a
            // thread at e.src to fire it *and* a distinct thread at q
            // (the class the main-thread surrogate occupies) — and the
            // atomic-scheduling rule must allow a thread at e.src to
            // move (no atomic class other than e.src is occupied).
            let enabled = reach.iter().any(|cfg| {
                let placed = if q == e.src {
                    cfg.count(e.src).at_least(2)
                } else {
                    cfg.count(e.src).positive() && cfg.count(q).positive()
                };
                placed && cfg.atomic_occupied(a).all(|atomic_loc| atomic_loc == e.src)
            });
            if !enabled {
                continue;
            }
            // goodness: (∃Y. r(n)) ∧ r(e.dst) ⊆ r(n)
            let preds = abs.preds();
            let keep =
                |i: circ_acfa::PredIx| !preds.pred_vars(i).iter().any(|v| e.havoc.contains(v));
            let projected = g.region(n).project(&keep);
            let result = projected.meet(a.region(e.dst));
            // Discard semantically empty cubes before the containment
            // test.
            let mut filtered = circ_acfa::Region::empty();
            for c in result.cubes() {
                if abs.cube_sat(c) {
                    filtered.add(c.clone());
                }
            }
            if !abs.region_contained(&filtered, g.region(n)) {
                if std::env::var_os("CIRC_DEBUG_OMEGA").is_some() {
                    eprintln!(
                        "omega_good fails: n={n} (class {q}, label {}) edge {}(label {})-{:?}->{}(label {}) \
                         r(n)={} result={}",
                        a.region(q),
                        e.src,
                        a.region(e.src),
                        e.havoc,
                        e.dst,
                        a.region(e.dst),
                        g.region(n),
                        filtered
                    );
                    let witness = reach.iter().find(|cfg| {
                        if q == e.src {
                            cfg.count(e.src).at_least(2)
                        } else {
                            cfg.count(e.src).positive() && cfg.count(q).positive()
                        }
                    });
                    eprintln!("  enabling cfg: {witness:?}");
                }
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Is the conjunction of the occupied locations' labels satisfiable?
fn config_consistent(abs: &AbsCtx, a: &Acfa, cfg: &ContextState) -> bool {
    let mut acc: Option<Region> = None;
    for n in cfg.occupied() {
        let r = a.region(n);
        let next = match acc {
            None => r.clone(),
            Some(have) => have.meet(r),
        };
        if next.is_empty() {
            return false;
        }
        acc = Some(next);
    }
    match acc {
        None => true,
        Some(r) => r.cubes().iter().any(|c| abs.cube_sat(c)),
    }
}
